//! The paper's static baseline: whole-pool mix-and-match, one job at a
//! time, FIFO.
//!
//! This is exactly the planning discipline of the source paper lifted to
//! a stream: every job gets the *entire* pool at max knobs, split across
//! types by [`hecmix_core::mix_match::evaluate`]'s rate-proportional
//! matching, and jobs queue FIFO behind each other. Between jobs every
//! node idles (priced with [`hecmix_queueing::idle_gap_energy_j`], same
//! sleep policies as the online scheduler), which is the baseline's
//! structural weakness under diurnal load — the scheduler experiments
//! quantify it.

use hecmix_core::config::{ClusterPoint, NodeConfig};
use hecmix_core::error::Result;
use hecmix_core::mix_match::evaluate;
use hecmix_queueing::idle_gap_energy_j;

use crate::job::JobSpec;
use crate::pool::Pool;
use crate::sched::JobResult;

/// Aggregate outcome of the static FIFO baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineOutcome {
    /// Jobs executed (the baseline admits everything).
    pub completed: usize,
    /// Jobs finishing after their finite deadline.
    pub misses: usize,
    /// Energy charged to job executions (includes the deployed nodes'
    /// idle floors during each run, per the paper's energy model), joules.
    pub active_energy_j: f64,
    /// Idle energy of the whole pool between jobs, joules.
    pub idle_energy_j: f64,
    /// Finish time of the last job (or last arrival), seconds.
    pub makespan_s: f64,
    /// Work units executed per node type (mix-and-match shares summed
    /// over jobs).
    pub per_type_units: Vec<f64>,
    /// Per-job results, in input order.
    pub jobs: Vec<JobResult>,
}

impl BaselineOutcome {
    /// Total energy, joules.
    #[must_use]
    pub fn energy_j(&self) -> f64 {
        self.active_energy_j + self.idle_energy_j
    }

    /// Deadline misses as a fraction of executed jobs.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.misses as f64 / self.completed as f64
        }
    }
}

/// Run the stream through static whole-pool mix-and-match, FIFO.
pub fn run_static_mix_and_match(pool: &Pool, jobs: &[JobSpec]) -> Result<BaselineOutcome> {
    for j in jobs {
        j.validate(pool.classes.len())?;
    }
    // Arrival order with stable ties — the stream may be interleaved.
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    order.sort_by(|&a, &b| {
        jobs[a]
            .arrival_s
            .total_cmp(&jobs[b].arrival_s)
            .then(a.cmp(&b))
    });
    let point = ClusterPoint {
        per_type: pool
            .platforms
            .iter()
            .zip(&pool.counts)
            .map(|(p, &n)| (n > 0).then(|| NodeConfig::maxed(p, n)))
            .collect(),
    };
    let mut out = BaselineOutcome {
        completed: 0,
        misses: 0,
        active_energy_j: 0.0,
        idle_energy_j: 0.0,
        makespan_s: 0.0,
        per_type_units: vec![0.0; pool.counts.len()],
        jobs: jobs
            .iter()
            .map(|j| JobResult {
                id: j.id,
                admitted: true,
                finish_s: None,
                missed: false,
                migrations: 0,
            })
            .collect(),
    };
    let mut free_at = 0.0f64;
    let price_gap = |out: &mut BaselineOutcome, gap: f64| {
        for (t, &count) in pool.counts.iter().enumerate() {
            out.idle_energy_j +=
                f64::from(count) * idle_gap_energy_j(gap, pool.idle_w[t], pool.sleep[t].as_ref());
        }
    };
    for &i in &order {
        let job = &jobs[i];
        let start = free_at.max(job.arrival_s);
        price_gap(&mut out, start - free_at);
        let run = evaluate(&point, &pool.classes[job.workload].models, job.size_units)?;
        let finish = start + run.time_s;
        out.active_energy_j += run.energy_j;
        for (t, share) in run.shares.iter().enumerate() {
            out.per_type_units[t] += share;
        }
        out.completed += 1;
        out.jobs[i].finish_s = Some(finish);
        if finish > job.deadline_s {
            out.misses += 1;
            out.jobs[i].missed = true;
        }
        free_at = finish;
    }
    let makespan = jobs.iter().map(|j| j.arrival_s).fold(free_at, f64::max);
    // Trailing idle until the last arrival, if the pool drained early.
    price_gap(&mut out, makespan - free_at);
    out.makespan_s = makespan;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hecmix_core::profile::WorkloadModel;
    use hecmix_core::types::Platform;

    fn pool() -> Pool {
        let arm = Platform::reference_arm();
        let amd = Platform::reference_amd();
        Pool::new(
            vec![(
                "ep".to_owned(),
                vec![
                    WorkloadModel::synthetic_cpu_bound(&arm, "ep", 60.0),
                    WorkloadModel::synthetic_cpu_bound(&amd, "ep", 40.0),
                ],
            )],
            vec![3, 2],
        )
        .unwrap()
    }

    fn job(id: u64, size: f64, arrival: f64, deadline: f64) -> JobSpec {
        JobSpec {
            id,
            workload: 0,
            size_units: size,
            arrival_s: arrival,
            deadline_s: deadline,
        }
    }

    #[test]
    fn fifo_serializes_and_splits_by_rate() {
        let p = pool();
        let jobs = vec![
            job(0, 1e5, 0.0, f64::INFINITY),
            job(1, 1e5, 0.0, f64::INFINITY),
        ];
        let out = run_static_mix_and_match(&p, &jobs).unwrap();
        assert_eq!(out.completed, 2);
        let f0 = out.jobs[0].finish_s.unwrap();
        let f1 = out.jobs[1].finish_s.unwrap();
        assert!((f1 - 2.0 * f0).abs() < 1e-9 * f1, "FIFO serializes");
        // Shares match a direct evaluation.
        let point = ClusterPoint {
            per_type: vec![
                Some(NodeConfig::maxed(&p.platforms[0], 3)),
                Some(NodeConfig::maxed(&p.platforms[1], 2)),
            ],
        };
        let run = evaluate(&point, &p.classes[0].models, 2e5).unwrap();
        for (got, want) in out.per_type_units.iter().zip(&run.shares) {
            assert!((got - want).abs() < 1e-6 * want.max(1.0));
        }
    }

    #[test]
    fn gaps_between_jobs_are_priced_idle() {
        let p = pool();
        let busy = run_static_mix_and_match(&p, &[job(0, 1e5, 0.0, f64::INFINITY)]).unwrap();
        let gapped = run_static_mix_and_match(
            &p,
            &[
                job(0, 1e5, 0.0, f64::INFINITY),
                job(
                    1,
                    1e5,
                    busy.jobs[0].finish_s.unwrap() + 100.0,
                    f64::INFINITY,
                ),
            ],
        )
        .unwrap();
        assert!(gapped.idle_energy_j > busy.idle_energy_j);
        assert!(gapped.energy_j() > 2.0 * busy.active_energy_j);
    }

    #[test]
    fn deadline_misses_counted() {
        let p = pool();
        let out = run_static_mix_and_match(&p, &[job(0, 1e6, 0.0, 1e-6)]).unwrap();
        assert_eq!(out.misses, 1);
        assert!(out.jobs[0].missed);
        assert!(out.miss_rate() > 0.99);
    }

    #[test]
    fn out_of_order_arrivals_run_fifo_by_arrival() {
        let p = pool();
        let jobs = vec![
            job(0, 1e4, 50.0, f64::INFINITY),
            job(1, 1e4, 0.0, f64::INFINITY),
        ];
        let out = run_static_mix_and_match(&p, &jobs).unwrap();
        assert!(out.jobs[1].finish_s.unwrap() < out.jobs[0].finish_s.unwrap());
    }
}
