//! The shared heterogeneous pool: node inventory plus per-workload
//! placement options.
//!
//! A pool is `counts[t]` nodes of each platform type `t`. For every
//! workload class the scheduler needs the menu of ways one node of each
//! type can run that workload — one entry per (type, OPP) from the class's
//! DVFS ladder (or per platform P-state for legacy models). Those menus
//! are exactly single-node rows of [`hecmix_core::rate_table::RateTable`],
//! so every `(rate, power)` pair here is bit-identical to what the offline
//! planner would compute for the same knob setting.

use hecmix_core::config::{ConfigSpace, TypeBounds};
use hecmix_core::error::{Error, Result};
use hecmix_core::profile::WorkloadModel;
use hecmix_core::rate_table::{RateOption, RateTable};
use hecmix_core::types::Platform;
use hecmix_queueing::SleepPolicy;

/// One workload class the pool can serve.
#[derive(Debug, Clone)]
pub struct WorkloadClass {
    /// Class name, resolved against trace files (e.g. `"memcached"`).
    pub name: String,
    /// Per-type models (same order as the pool's platform types).
    pub models: Vec<WorkloadModel>,
    /// Per-type single-node option menus: `options[t][k]` runs one
    /// full-cores node of type `t` at the `k`-th operating point.
    pub options: Vec<Vec<RateOption>>,
}

impl WorkloadClass {
    /// Fastest single-node rate across all types and operating points, in
    /// work units per second. Used to scale job sizes and deadlines.
    #[must_use]
    pub fn peak_rate(&self) -> f64 {
        self.options
            .iter()
            .flatten()
            .map(|o| o.rate)
            .fold(0.0, f64::max)
    }
}

/// A heterogeneous pool shared by every workload class.
#[derive(Debug, Clone)]
pub struct Pool {
    /// The platform of each node type (order fixed across all classes).
    pub platforms: Vec<Platform>,
    /// Number of nodes of each type.
    pub counts: Vec<u32>,
    /// Idle floor of one node of each type, watts.
    pub idle_w: Vec<f64>,
    /// Deep-sleep policy of one node of each type, when the type's model
    /// carries a power-domain tree; `None` prices idle gaps at the floor.
    pub sleep: Vec<Option<SleepPolicy>>,
    /// The workload classes jobs can belong to.
    pub classes: Vec<WorkloadClass>,
}

impl Pool {
    /// Build a pool from per-class model bundles and per-type node counts.
    ///
    /// Every class must carry one model per node type, all classes must
    /// agree on the platform order, and at least one node must exist. The
    /// per-class option menus are derived here, once.
    pub fn new(classes: Vec<(String, Vec<WorkloadModel>)>, counts: Vec<u32>) -> Result<Self> {
        if classes.is_empty() {
            return Err(Error::InvalidInput(
                "a pool needs at least one workload class".into(),
            ));
        }
        if counts.iter().all(|&c| c == 0) {
            return Err(Error::InvalidInput("a pool needs at least one node".into()));
        }
        let platforms: Vec<Platform> = classes[0].1.iter().map(|m| m.platform.clone()).collect();
        if platforms.len() != counts.len() {
            return Err(Error::InvalidInput(format!(
                "pool has {} node counts but models describe {} types",
                counts.len(),
                platforms.len()
            )));
        }
        let mut built = Vec::with_capacity(classes.len());
        for (name, models) in classes {
            if models.len() != platforms.len() {
                return Err(Error::InvalidInput(format!(
                    "class `{name}` has {} models, expected one per type ({})",
                    models.len(),
                    platforms.len()
                )));
            }
            for (m, p) in models.iter().zip(&platforms) {
                m.validate()?;
                if m.platform.name != p.name {
                    return Err(Error::InvalidInput(format!(
                        "class `{name}` orders platforms differently: `{}` vs `{}`",
                        m.platform.name, p.name
                    )));
                }
            }
            let options = single_node_options(&models)?;
            built.push(WorkloadClass {
                name,
                models,
                options,
            });
        }
        // Idle/sleep characterization comes from the first class; reject
        // pools whose classes disagree about the hardware floor, since
        // idle-gap pricing would otherwise depend on job mix.
        let first = &built[0];
        let idle_w: Vec<f64> = first.models.iter().map(|m| m.power.idle_w).collect();
        for c in &built[1..] {
            for (t, m) in c.models.iter().enumerate() {
                if (m.power.idle_w - idle_w[t]).abs() > 1e-9 {
                    return Err(Error::InvalidInput(format!(
                        "class `{}` disagrees with `{}` on type {t} idle power ({} vs {} W)",
                        c.name, first.name, m.power.idle_w, idle_w[t]
                    )));
                }
            }
        }
        let sleep = first
            .models
            .iter()
            .map(|m| {
                m.dvfs.as_ref().map(|d| SleepPolicy {
                    sleep_power_w: d.domain.asleep_w(),
                    residency_s: d.domain.residency_s,
                })
            })
            .collect();
        Ok(Self {
            platforms,
            counts,
            idle_w,
            sleep,
            classes: built,
        })
    }

    /// Total number of nodes.
    #[must_use]
    pub fn nodes(&self) -> u32 {
        self.counts.iter().sum()
    }

    /// Class names in pool order, for trace resolution.
    #[must_use]
    pub fn class_names(&self) -> Vec<&str> {
        self.classes.iter().map(|c| c.name.as_str()).collect()
    }

    /// Position of a class by name.
    pub fn class_index(&self, name: &str) -> Result<usize> {
        self.classes
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| {
                Error::InvalidInput(format!(
                    "unknown workload `{name}` (known: {})",
                    self.class_names().join(", ")
                ))
            })
    }
}

/// Single-node, full-cores option menu per type: build the rate table
/// over a `max_nodes = 1` space and keep the `nodes == 1, cores == all`
/// rows — one per OPP for ladder models, one per P-state for legacy ones.
/// Partial-core options are dropped on purpose: a placed task owns its
/// node, and within a node the all-cores row dominates the menu the same
/// way it does in the paper's sweeps.
fn single_node_options(models: &[WorkloadModel]) -> Result<Vec<Vec<RateOption>>> {
    let space = ConfigSpace::new(
        models
            .iter()
            .map(|m| TypeBounds {
                platform: m.platform.clone(),
                max_nodes: 1,
            })
            .collect(),
    );
    let table = RateTable::build(&space, models)?;
    let menus: Vec<Vec<RateOption>> = table
        .options()
        .iter()
        .zip(models)
        .map(|(opts, m)| {
            opts.iter()
                .filter(|o| o.cfg.nodes == 1 && o.cfg.cores == m.platform.cores)
                .copied()
                .collect()
        })
        .collect();
    for (menu, m) in menus.iter().zip(models) {
        if menu.is_empty() {
            return Err(Error::InvalidInput(format!(
                "platform `{}` yields no single-node options",
                m.platform.name
            )));
        }
    }
    Ok(menus)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hecmix_core::dvfs::NodeDvfs;

    fn two_class_pool() -> Pool {
        let arm = Platform::reference_arm();
        let amd = Platform::reference_amd();
        let mk = |name: &str, i_arm: f64, i_amd: f64| {
            (
                name.to_owned(),
                vec![
                    WorkloadModel::synthetic_cpu_bound(&arm, name, i_arm),
                    WorkloadModel::synthetic_cpu_bound(&amd, name, i_amd),
                ],
            )
        };
        Pool::new(
            vec![mk("memcached", 60.0, 40.0), mk("julius", 30.0, 55.0)],
            vec![3, 2],
        )
        .unwrap()
    }

    #[test]
    fn menus_cover_every_operating_point_per_type() {
        let pool = two_class_pool();
        assert_eq!(pool.nodes(), 5);
        for class in &pool.classes {
            assert_eq!(class.options.len(), 2);
            for (t, menu) in class.options.iter().enumerate() {
                // Legacy models: one option per platform P-state.
                assert_eq!(menu.len(), pool.platforms[t].freqs.len());
                for o in menu {
                    assert_eq!(o.cfg.nodes, 1);
                    assert_eq!(o.cfg.cores, pool.platforms[t].cores);
                    assert!(o.rate > 0.0 && o.power_w > 0.0);
                }
            }
            assert!(class.peak_rate() > 0.0);
        }
    }

    #[test]
    fn ladder_models_enumerate_per_opp() {
        let arm = Platform::reference_arm();
        let mut model = WorkloadModel::synthetic_cpu_bound(&arm, "ep", 60.0);
        let dvfs = NodeDvfs::synthetic_ladder(&model.power, arm.cores, 0.25);
        let opps = dvfs.ladder.len();
        model.dvfs = Some(dvfs);
        let pool = Pool::new(vec![("ep".into(), vec![model])], vec![2]).unwrap();
        let menu = &pool.classes[0].options[0];
        assert_eq!(menu.len(), opps);
        assert!(menu.iter().all(|o| o.opp.is_some()));
        assert!(pool.sleep[0].is_some());
    }

    #[test]
    fn rejects_inconsistent_pools() {
        let arm = Platform::reference_arm();
        let amd = Platform::reference_amd();
        let m_arm = WorkloadModel::synthetic_cpu_bound(&arm, "ep", 60.0);
        let m_amd = WorkloadModel::synthetic_cpu_bound(&amd, "ep", 40.0);
        // No classes / no nodes / count-type mismatch.
        assert!(Pool::new(vec![], vec![1]).is_err());
        assert!(Pool::new(vec![("ep".into(), vec![m_arm.clone()])], vec![0]).is_err());
        assert!(Pool::new(
            vec![("ep".into(), vec![m_arm.clone(), m_amd.clone()])],
            vec![1]
        )
        .is_err());
        // Classes disagreeing on platform order.
        assert!(Pool::new(
            vec![
                ("a".into(), vec![m_arm.clone(), m_amd.clone()]),
                ("b".into(), vec![m_amd.clone(), m_arm.clone()]),
            ],
            vec![1, 1]
        )
        .is_err());
        // Classes disagreeing on the idle floor.
        let mut warped = m_arm.clone();
        warped.power.idle_w += 1.0;
        assert!(Pool::new(
            vec![
                ("a".into(), vec![m_arm.clone(), m_amd.clone()]),
                ("b".into(), vec![warped, m_amd.clone()]),
            ],
            vec![1, 1]
        )
        .is_err());
    }

    #[test]
    fn class_lookup_by_name() {
        let pool = two_class_pool();
        assert_eq!(pool.class_index("julius").unwrap(), 1);
        assert!(pool.class_index("redis").is_err());
        assert_eq!(pool.class_names(), vec!["memcached", "julius"]);
    }
}
