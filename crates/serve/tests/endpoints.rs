//! End-to-end tests of the planning daemon over real sockets: every
//! endpoint, the plan-cache speedup claim, reload invalidation, and an
//! in-process closed-loop load run with zero dropped responses.
//!
//! One daemon instance serves the whole file (building it characterizes a
//! workload, which takes real time); tests share it via a `OnceLock`.

use std::io::Write as _;
use std::net::TcpStream;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use hecmix_experiments::Lab;
use hecmix_obs::json::{self, Value};
use hecmix_serve::http;
use hecmix_serve::loadgen::{self, LoadgenConfig, MixRatio};
use hecmix_serve::{
    start, AppState, ModelStore, OnlineSched, SchedParams, ServeConfig, ServerHandle,
};

fn build_store() -> ModelStore {
    static MODELS: OnceLock<Vec<hecmix_core::profile::WorkloadModel>> = OnceLock::new();
    let models = MODELS.get_or_init(|| {
        let lab = Lab::new();
        let ep = hecmix_workloads::workload_by_name("ep").expect("ep registered");
        lab.models(ep.as_ref()).to_vec()
    });
    let mut store = ModelStore::new();
    store.insert("ep", models.clone());
    store
}

struct Daemon {
    handle: ServerHandle,
    state: Arc<AppState>,
}

fn daemon() -> &'static Daemon {
    static DAEMON: OnceLock<Daemon> = OnceLock::new();
    DAEMON.get_or_init(|| {
        let state = Arc::new(AppState::new(build_store(), 4, 256));
        state.set_reload(Arc::new(|| Ok(build_store())));
        let params = SchedParams {
            alpha: 0.5,
            max_outstanding: 64,
            counts: vec![2, 2],
        };
        let sched = OnlineSched::from_store(&build_store(), &params).expect("sched pool");
        state.set_sched(Arc::new(sched));
        let config = ServeConfig {
            workers: 4,
            queue_capacity: 32,
            read_timeout: Duration::from_secs(2),
            ..ServeConfig::default()
        };
        let handle = start(config, Arc::clone(&state)).expect("daemon starts");
        Daemon { handle, state }
    })
}

/// One request over a fresh connection; returns `(status, parsed body)`.
fn call(method: &str, path: &str, body: &str) -> (u16, Value) {
    let addr = daemon().handle.addr();
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    conn.write_all(http::format_request(method, path, body).as_bytes())
        .expect("send");
    let (status, _headers, resp) = http::read_response(&mut conn).expect("response");
    let text = std::str::from_utf8(&resp).expect("UTF-8 body");
    let value = json::parse(text).unwrap_or_else(|e| panic!("bad JSON ({e}): {text}"));
    (status, value)
}

fn as_u64(v: &Value, k: &str) -> u64 {
    v.get(k)
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("missing u64 {k}"))
}

fn as_bool(v: &Value, k: &str) -> bool {
    v.get(k)
        .and_then(Value::as_bool)
        .unwrap_or_else(|| panic!("missing bool {k}"))
}

// The daemon is shared; the cache-sensitive tests coordinate through this
// lock so a concurrently running test cannot interleave a /reload between
// a cold and a warm query.
static CACHE_SENSITIVE: Mutex<()> = Mutex::new(());

#[test]
fn healthz_and_statz_report_inventory() {
    let (status, v) = call("GET", "/healthz", "");
    assert_eq!(status, 200);
    assert!(as_bool(&v, "ok"));
    assert_eq!(as_u64(&v, "workloads"), 1);

    let (status, v) = call("GET", "/statz", "");
    assert_eq!(status, 200);
    assert_eq!(
        v.get("schema").and_then(Value::as_str),
        Some("hecmix-statz-v4")
    );
    assert!(v.get("uptime_s").and_then(Value::as_f64).expect("uptime") >= 0.0);
    // v3 serving counters: compute-pool work, single-flight coalescing,
    // warm-reload recomputes, slowloris reaps, and the connection gauge.
    for counter in [
        "computes",
        "coalesced",
        "warmed",
        "timeouts_408",
        "connections",
    ] {
        assert!(
            v.get(counter).and_then(Value::as_u64).is_some(),
            "statz v3 must report {counter}"
        );
    }
    let hashes = v
        .get("model_hashes")
        .and_then(Value::as_array)
        .expect("hashes");
    assert_eq!(hashes.len(), 1);
    let h = hashes[0].as_str().expect("hash string");
    assert!(h.starts_with("ep:") && h.len() == 3 + 16, "{h}");
    assert!(v.get("latency_us").and_then(|l| l.get("p50")).is_some());
    assert!(v.get("latency_us").and_then(|l| l.get("p95")).is_some());
    assert!(v.get("cache").and_then(|c| c.get("hit_rate")).is_some());
    // v4: the live scheduler's counters are embedded when /submit is on.
    for counter in ["submitted", "admitted", "rejected", "misses", "outstanding"] {
        assert!(
            v.get("sched").and_then(|s| s.get(counter)).is_some(),
            "statz v4 must embed sched counter {counter}"
        );
    }
}

#[test]
fn submit_places_jobs_and_jobz_reports_them() {
    // A plain submission is admitted and answered with its placement.
    let (status, v) = call("POST", "/submit", r#"{"workload":"ep","units":1e9}"#);
    assert_eq!(status, 200);
    assert!(as_bool(&v, "admitted"));
    let finish = v.get("finish_s").and_then(Value::as_f64).expect("finish_s");
    let start = v.get("start_s").and_then(Value::as_f64).expect("start_s");
    assert!(finish > start && start >= 0.0);
    assert!(v.get("energy_j").and_then(Value::as_f64).expect("energy") > 0.0);
    assert!(v.get("freq_ghz").and_then(Value::as_f64).expect("freq") > 0.0);

    // `units` defaults to the workload's registry size.
    let (status, v) = call("POST", "/submit", r#"{"workload":"ep"}"#);
    assert_eq!(status, 200);
    assert!(as_bool(&v, "admitted"));

    // An impossible deadline is admitted but flagged as a miss up front.
    let (status, v) = call(
        "POST",
        "/submit",
        r#"{"workload":"ep","units":1e9,"deadline_s":1e-9}"#,
    );
    assert_eq!(status, 200);
    assert!(as_bool(&v, "missed"));

    // Validation: unknown workload, bad sizes, wrong methods.
    assert_eq!(call("POST", "/submit", r#"{"workload":"nope"}"#).0, 404);
    assert_eq!(call("POST", "/submit", r#"{"units":1.0}"#).0, 400);
    assert_eq!(
        call("POST", "/submit", r#"{"workload":"ep","units":-1}"#).0,
        422
    );
    assert_eq!(
        call("POST", "/submit", r#"{"workload":"ep","deadline_s":0}"#).0,
        422
    );
    assert_eq!(call("GET", "/submit", "").0, 405);
    assert_eq!(call("POST", "/jobz", "").0, 405);

    // /jobz reports the counters and the recent placements.
    let (status, v) = call("GET", "/jobz", "");
    assert_eq!(status, 200);
    assert_eq!(
        v.get("schema").and_then(Value::as_str),
        Some("hecmix-jobz-v1")
    );
    assert!(as_u64(&v, "submitted") >= 3);
    assert!(as_u64(&v, "admitted") >= 3);
    assert!(as_u64(&v, "misses") >= 1);
    let jobs = v.get("jobs").and_then(Value::as_array).expect("jobs array");
    assert!(jobs.len() >= 3);
    let line = &jobs[0];
    assert_eq!(line.get("workload").and_then(Value::as_str), Some("ep"));
    assert!(line.get("finish_s").and_then(Value::as_f64).is_some());
}

#[test]
fn plan_answers_feasible_and_infeasible_deadlines() {
    let _guard = CACHE_SENSITIVE.lock().unwrap();
    // A generous deadline must be feasible with a config and split.
    let (status, v) = call(
        "POST",
        "/plan",
        r#"{"workload":"ep","arm":6,"amd":5,"deadline_ms":3600000}"#,
    );
    assert_eq!(status, 200);
    assert!(as_bool(&v, "feasible"));
    // Labels read like "ARM Cortex-A9 6(4c@1.40 GHz) + AMD K10 ..."
    assert!(v
        .get("config")
        .and_then(Value::as_str)
        .expect("config")
        .contains("c@"));
    let time_ms = v.get("time_ms").and_then(Value::as_f64).expect("time");
    assert!(time_ms > 0.0 && time_ms <= 3_600_000.0);
    assert!(v.get("energy_j").and_then(Value::as_f64).expect("energy") > 0.0);
    let shares = v.get("shares").expect("shares");
    let low = shares
        .get("low")
        .and_then(Value::as_f64)
        .expect("low share");
    let high = shares
        .get("high")
        .and_then(Value::as_f64)
        .expect("high share");
    assert!(
        (low + high - 1.0).abs() < 1e-9,
        "shares sum to 1: {low} + {high}"
    );

    // A microsecond deadline is infeasible; the fastest option is reported.
    let (status, v) = call(
        "POST",
        "/plan",
        r#"{"workload":"ep","arm":6,"amd":5,"deadline_ms":0.001}"#,
    );
    assert_eq!(status, 200);
    assert!(!as_bool(&v, "feasible"));
    assert!(
        v.get("fastest_ms")
            .and_then(Value::as_f64)
            .expect("fastest")
            > 0.001
    );
}

#[test]
fn plan_p99_deadline_is_des_confirmed_and_cached() {
    let _guard = CACHE_SENSITIVE.lock().unwrap();
    // Derive a safe operating point from the frontier itself: an arrival
    // rate keeping every menu entry below half utilization, and a deadline
    // loose enough that some entry's p99 clears it.
    let (status, f) = call("POST", "/frontier", r#"{"workload":"ep","arm":8,"amd":6}"#);
    assert_eq!(status, 200);
    let t_max_s = f
        .get("points")
        .and_then(Value::as_array)
        .expect("points")
        .iter()
        .map(|p| p.get("time_ms").and_then(Value::as_f64).expect("t") / 1e3)
        .fold(0.0f64, f64::max);
    assert!(t_max_s > 0.0);
    let lambda = 0.5 / t_max_s;
    let p99_s = 20.0 * t_max_s;
    let body = format!(r#"{{"workload":"ep","arm":8,"amd":6,"lambda":{lambda},"p99_s":{p99_s}}}"#);

    let (status, v) = call("POST", "/plan", &body);
    assert_eq!(status, 200);
    assert!(
        !as_bool(&v, "cached"),
        "first p99 plan must be a cache miss"
    );
    assert!(as_bool(&v, "feasible"), "loose deadline feasible: {v:?}");
    assert!(!as_bool(&v, "violated"));
    let config = v
        .get("config")
        .and_then(Value::as_str)
        .expect("config")
        .to_owned();
    assert!(config.contains("c@"), "{config}");
    let tail = v
        .get("p99_response_s")
        .and_then(Value::as_f64)
        .expect("tail");
    let mean = v
        .get("mean_response_s")
        .and_then(Value::as_f64)
        .expect("mean");
    assert!(tail <= p99_s, "DES-confirmed tail within deadline");
    assert!(tail >= mean, "p99 cannot sit below the mean");
    assert!(
        v.get("window_energy_j")
            .and_then(Value::as_f64)
            .expect("energy")
            > 0.0
    );
    assert!(
        as_u64(&v, "des_runs") >= 1,
        "the plan must be DES-confirmed"
    );
    let cold_us = as_u64(&v, "compute_us");

    // Identical question again: answered from cache, byte-identical plan.
    let (status, warm) = call("POST", "/plan", &body);
    assert_eq!(status, 200);
    assert!(
        as_bool(&warm, "cached"),
        "repeat p99 plan must hit the cache"
    );
    assert_eq!(
        warm.get("config").and_then(Value::as_str),
        Some(config.as_str()),
        "cached answer must be identical"
    );
    let warm_us = as_u64(&warm, "compute_us").max(1);
    assert!(
        cold_us >= 10 * warm_us,
        "DES-backed plan must be >=10x faster warm: cold {cold_us} µs vs warm {warm_us} µs"
    );

    // An arrival rate that saturates every configuration is answered, not
    // errored: infeasible and explicitly flagged saturated.
    let sat_body = format!(r#"{{"workload":"ep","arm":8,"amd":6,"lambda":1e9,"p99_s":{p99_s}}}"#);
    let (status, sat) = call("POST", "/plan", &sat_body);
    assert_eq!(status, 200);
    assert!(!as_bool(&sat, "feasible"));
    assert!(as_bool(&sat, "saturated"));
}

#[test]
fn frontier_warm_cache_is_10x_faster_than_cold() {
    let _guard = CACHE_SENSITIVE.lock().unwrap();
    // Unique query shape (node caps) so no other test has warmed this key.
    let body = r#"{"workload":"ep","arm":9,"amd":7}"#;
    let (status, v) = call("POST", "/frontier", body);
    assert_eq!(status, 200);
    assert!(!as_bool(&v, "cached"), "first query must be a cache miss");
    assert!(
        !as_bool(&v, "coalesced"),
        "a lone miss has no flight to join"
    );
    let cold_us = as_u64(&v, "compute_us");
    let count = as_u64(&v, "count");
    assert!(count >= 1);
    let points = v.get("points").and_then(Value::as_array).expect("points");
    assert_eq!(points.len() as u64, count);
    for p in points {
        assert!(p.get("time_ms").and_then(Value::as_f64).expect("t") > 0.0);
        assert!(p.get("energy_j").and_then(Value::as_f64).expect("e") > 0.0);
    }

    // Warm queries: identical shape, served from cache, >= 10x faster on
    // the server-side compute clock (immune to loopback RTT noise).
    let mut warm_us = Vec::new();
    for _ in 0..21 {
        let (status, v) = call("POST", "/frontier", body);
        assert_eq!(status, 200);
        assert!(as_bool(&v, "cached"), "repeat query must hit the cache");
        assert_eq!(
            as_u64(&v, "count"),
            count,
            "cached answer must be identical"
        );
        warm_us.push(as_u64(&v, "compute_us"));
    }
    warm_us.sort_unstable();
    let warm_median = warm_us[warm_us.len() / 2].max(1);
    assert!(
        cold_us >= 10 * warm_median,
        "cache speedup below 10x: cold {cold_us} µs vs warm median {warm_median} µs"
    );
}

#[test]
fn resilient_frontier_dominates_plain_energy() {
    let _guard = CACHE_SENSITIVE.lock().unwrap();
    let (status, plain) = call("POST", "/frontier", r#"{"workload":"ep","arm":4,"amd":3}"#);
    assert_eq!(status, 200);
    let (status, resilient) = call(
        "POST",
        "/frontier",
        r#"{"workload":"ep","arm":4,"amd":3,"resilient_k":1}"#,
    );
    assert_eq!(status, 200);
    assert_eq!(as_u64(&resilient, "resilient_k"), 1);
    // Surviving k=1 crashes costs headroom: the resilient frontier's best
    // (fastest) point cannot beat the plain frontier's fastest point.
    let min_time = |v: &Value| {
        v.get("points")
            .and_then(Value::as_array)
            .expect("points")
            .iter()
            .map(|p| p.get("time_ms").and_then(Value::as_f64).expect("t"))
            .fold(f64::INFINITY, f64::min)
    };
    assert!(min_time(&resilient) >= min_time(&plain) - 1e-9);
}

#[test]
fn whatif_ladder_spans_all_high_to_all_low() {
    let _guard = CACHE_SENSITIVE.lock().unwrap();
    let (status, v) = call(
        "POST",
        "/whatif",
        r#"{"workload":"ep","budget_w":400,"deadline_ms":3600000,"step_high":1}"#,
    );
    assert_eq!(status, 200);
    let rungs = v.get("rungs").and_then(Value::as_array).expect("rungs");
    assert!(rungs.len() >= 2, "ladder needs at least two rungs");
    let first = &rungs[0];
    let last = &rungs[rungs.len() - 1];
    assert_eq!(as_u64(first, "arm"), 0, "ladder starts all-high");
    assert_eq!(as_u64(last, "amd"), 0, "ladder ends all-low");
    for r in rungs {
        assert!(r.get("peak_w").and_then(Value::as_f64).expect("peak") <= 400.0 + 1e-9);
    }
    assert!(v.get("best_mix").and_then(Value::as_str).is_some());

    // Same ladder again: cached.
    let (_, v2) = call(
        "POST",
        "/whatif",
        r#"{"workload":"ep","budget_w":400,"deadline_ms":3600000,"step_high":1}"#,
    );
    assert!(as_bool(&v2, "cached"));
    // A different deadline reuses the cached ladder (key excludes deadline).
    let (_, v3) = call(
        "POST",
        "/whatif",
        r#"{"workload":"ep","budget_w":400,"deadline_ms":1,"step_high":1}"#,
    );
    assert!(as_bool(&v3, "cached"));
}

#[test]
fn reload_swaps_store_and_rewarms_hot_set() {
    let _guard = CACHE_SENSITIVE.lock().unwrap();
    let body = r#"{"workload":"ep","arm":3,"amd":2}"#;
    let (_, first) = call("POST", "/frontier", body);
    assert!(!as_bool(&first, "cached"));
    let (_, warmed) = call("POST", "/frontier", body);
    assert!(as_bool(&warmed, "cached"));

    let before = daemon().state.store().hashes();
    let (status, v) = call("POST", "/reload", "");
    assert_eq!(status, 200);
    assert!(as_bool(&v, "reloaded"));
    assert_eq!(as_u64(&v, "workloads"), 1);
    // Same lab, same models: the content hash must be reproducible.
    assert_eq!(daemon().state.store().hashes(), before);
    // The hot set was recomputed against the new store before the swap.
    assert!(as_u64(&v, "hot_keys") >= 1, "hot set captured: {v:?}");
    assert!(as_u64(&v, "warmed") >= 1, "hot set re-warmed: {v:?}");

    // No cold-start cliff: the hot query is *still* a cache hit after the
    // swap — reload warms the new cache rather than leaving it empty.
    let (_, after) = call("POST", "/frontier", body);
    assert!(
        as_bool(&after, "cached"),
        "reload must re-warm the hot set, not reopen the cold-start cliff"
    );

    // The warm work is visible in the serving counters.
    let (_, stats) = call("GET", "/statz", "");
    assert!(as_u64(&stats, "warmed") >= 1, "statz counts warmed entries");
}

#[test]
fn error_paths_return_typed_statuses() {
    let cases = [
        ("POST", "/plan", r#"{"workload":"ep","arm":2,"amd":2}"#, 400), // no deadline
        ("POST", "/plan", r#"{"deadline_ms":1000}"#, 400),              // no workload
        ("POST", "/plan", r#"{"workload":"ep","p99_s":10}"#, 400),      // p99 without lambda
        (
            "POST",
            "/plan",
            r#"{"workload":"ep","p99_s":-1,"lambda":1}"#,
            422,
        ),
        (
            "POST",
            "/plan",
            r#"{"workload":"ep","p99_s":10,"lambda":0}"#,
            422,
        ),
        (
            "POST",
            "/plan",
            r#"{"workload":"nope","deadline_ms":1}"#,
            404,
        ),
        (
            "POST",
            "/frontier",
            r#"{"workload":"ep","arm":0,"amd":0}"#,
            422,
        ),
        ("POST", "/frontier", r#"{"workload":"ep","units":-5}"#, 422),
        (
            "POST",
            "/frontier",
            r#"{"workload":"ep","resilient_k":0}"#,
            422,
        ),
        ("POST", "/whatif", r#"{"workload":"ep","budget_w":-1}"#, 422),
        ("POST", "/frontier", "{not json", 400),
        ("GET", "/plan", "", 405),
        ("POST", "/healthz", "", 405),
        ("GET", "/nope", "", 404),
    ];
    for (method, path, body, want) in cases {
        let (status, _) = call(method, path, body);
        assert_eq!(status, want, "{method} {path} with {body:?}");
    }
}

#[test]
fn closed_loop_load_run_completes_without_errors() {
    let cfg = LoadgenConfig {
        addr: daemon().handle.addr().to_string(),
        concurrency: 4,
        requests: 120,
        mix: MixRatio::parse("2:2:1").expect("mix"),
        workload: "ep".to_owned(),
        arm: 5,
        amd: 4,
        budget_w: 400.0,
        deadline_ms: 3_600_000.0,
        ..LoadgenConfig::default()
    };
    let report = loadgen::run(&cfg);
    assert_eq!(report.sent, 120);
    assert_eq!(report.ok, 120, "every request must complete: {report:?}");
    assert_eq!(report.errors, 0, "{report:?}");
    assert!(report.throughput_rps > 0.0);
    assert!(report.p50_us > 0 && report.p50_us <= report.p99_us);
    // Per-endpoint split covers every endpoint in the 2:2:1 mix.
    assert!(report.plan.count > 0 && report.frontier.count > 0 && report.whatif.count > 0);
    assert_eq!(
        report.measured,
        report.plan.count + report.frontier.count + report.whatif.count
    );
    // /statz was scraped before and after: server-side deltas are present.
    let server = report.server.expect("statz deltas scraped");
    assert!(server.computes >= 1, "{server:?}");
    let j = report.to_json(&cfg);
    assert!(json::parse(&j).is_ok(), "bench JSON parses: {j}");
}
