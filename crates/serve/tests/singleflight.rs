//! Single-flight coalescing under real concurrency: a burst of identical
//! cache misses must cost exactly **one** sweep on the compute pool, with
//! every other connection either riding the leader's flight
//! (`coalesced: true`) or hitting the cache the flight just filled
//! (`cached: true`). A disconnected leader must not strand its followers —
//! delivery is by per-connection token, and a stale token is simply
//! discarded.

use std::io::Write as _;
use std::net::TcpStream;
use std::sync::{Arc, Barrier, OnceLock};
use std::time::Duration;

use hecmix_experiments::Lab;
use hecmix_obs::json::{self, Value};
use hecmix_serve::http;
use hecmix_serve::{start, AppState, ModelStore, ServeConfig, ServerHandle};

fn build_store() -> ModelStore {
    static MODELS: OnceLock<Vec<hecmix_core::profile::WorkloadModel>> = OnceLock::new();
    let models = MODELS.get_or_init(|| {
        let lab = Lab::new();
        let ep = hecmix_workloads::workload_by_name("ep").expect("ep registered");
        lab.models(ep.as_ref()).to_vec()
    });
    let mut store = ModelStore::new();
    store.insert("ep", models.clone());
    store
}

fn daemon(compute_delay: Duration) -> (ServerHandle, Arc<AppState>) {
    let state = Arc::new(AppState::new(build_store(), 2, 64));
    state.set_compute_delay(compute_delay);
    let config = ServeConfig {
        io_threads: 2,
        workers: 2,
        max_connections: 256,
        queue_capacity: 32,
        read_timeout: Duration::from_secs(5),
        queue_deadline: Duration::from_secs(30),
        ..ServeConfig::default()
    };
    let handle = start(config, Arc::clone(&state)).expect("daemon starts");
    (handle, state)
}

fn connect(handle: &ServerHandle) -> TcpStream {
    let conn = TcpStream::connect(handle.addr()).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    conn
}

/// `(status, cached, coalesced)` of one `/frontier` exchange.
fn frontier(conn: &mut TcpStream, body: &str) -> (u16, bool, bool) {
    conn.write_all(http::format_request("POST", "/frontier", body).as_bytes())
        .expect("send");
    let (status, _headers, resp) = http::read_response(conn).expect("response");
    let v = json::parse(std::str::from_utf8(&resp).expect("UTF-8")).expect("JSON");
    let flag = |k: &str| v.get(k).and_then(Value::as_bool).unwrap_or(false);
    (status, flag("cached"), flag("coalesced"))
}

fn statz(handle: &ServerHandle) -> Value {
    let mut conn = connect(handle);
    conn.write_all(http::format_request("GET", "/statz", "").as_bytes())
        .expect("send");
    let (status, _headers, resp) = http::read_response(&mut conn).expect("response");
    assert_eq!(status, 200);
    json::parse(std::str::from_utf8(&resp).expect("UTF-8")).expect("JSON")
}

fn statz_u64(handle: &ServerHandle, field: &str) -> u64 {
    statz(handle)
        .get(field)
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("statz missing {field}"))
}

fn cache_misses(handle: &ServerHandle) -> u64 {
    statz(handle)
        .get("cache")
        .and_then(|c| c.get("misses"))
        .and_then(Value::as_u64)
        .expect("statz cache.misses")
}

#[test]
fn concurrent_identical_misses_cost_exactly_one_compute() {
    const CONNS: usize = 64;
    let (handle, _state) = daemon(Duration::from_millis(300));
    let body = r#"{"workload":"ep","arm":8,"amd":6}"#;

    // All 64 connections fire the same cold query through a barrier so
    // they land while the (artificially slow) sweep is in flight.
    let barrier = Arc::new(Barrier::new(CONNS));
    let outcomes: Vec<(u16, bool, bool)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CONNS)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let handle = &handle;
                s.spawn(move || {
                    let mut conn = connect(handle);
                    barrier.wait();
                    frontier(&mut conn, body)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });

    for (status, _, _) in &outcomes {
        assert_eq!(*status, 200, "every waiter must be answered");
    }
    let leaders = outcomes.iter().filter(|(_, c, f)| !c && !f).count();
    let riders = outcomes.iter().filter(|(_, c, f)| *c || *f).count();
    assert_eq!(leaders, 1, "exactly one connection paid for the sweep");
    assert_eq!(riders, CONNS - 1, "everyone else rode the flight or cache");
    assert!(
        outcomes.iter().any(|(_, _, f)| *f),
        "at least one response must be coalesced (not just a late cache hit)"
    );

    // The ground truth: the compute pool ran the sweep exactly once.
    assert_eq!(statz_u64(&handle, "computes"), 1);
    assert_eq!(
        statz_u64(&handle, "coalesced") as usize,
        riders_coalesced(&outcomes)
    );

    handle.shutdown();
    handle.join();
}

fn riders_coalesced(outcomes: &[(u16, bool, bool)]) -> usize {
    outcomes.iter().filter(|(_, _, f)| *f).count()
}

#[test]
fn disconnected_leader_does_not_strand_followers() {
    let (handle, state) = daemon(Duration::from_millis(400));
    let body = r#"{"workload":"ep","arm":12,"amd":3}"#;
    let wire = http::format_request("POST", "/frontier", body);

    // Leader fires the miss. Wait for its cache miss to register before
    // sending the second request — two connections' bytes are not
    // guaranteed to be routed in write order, and this test must know
    // which connection leads the flight so it can kill exactly that one.
    let mut c_leader = connect(&handle);
    c_leader.write_all(wire.as_bytes()).expect("leader send");
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while cache_misses(&handle) == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "leader request never routed"
        );
        std::thread::sleep(Duration::from_millis(2));
    }

    // Follower coalesces onto the leader's in-flight compute.
    let mut c_follower = connect(&handle);
    c_follower
        .write_all(wire.as_bytes())
        .expect("follower send");
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while state
        .metrics
        .coalesced
        .load(std::sync::atomic::Ordering::Relaxed)
        == 0
    {
        assert!(
            std::time::Instant::now() < deadline,
            "follower never coalesced"
        );
        std::thread::sleep(Duration::from_millis(2));
    }

    // The leader walks away mid-compute. Its delivery token dies with the
    // connection; the flight itself must keep going.
    drop(c_leader);

    let (status, cached, coalesced) = {
        let (status, _headers, resp) =
            http::read_response(&mut c_follower).expect("follower answered");
        let v = json::parse(std::str::from_utf8(&resp).expect("UTF-8")).expect("JSON");
        let flag = |k: &str| v.get(k).and_then(Value::as_bool).unwrap_or(false);
        (status, flag("cached"), flag("coalesced"))
    };
    assert_eq!(status, 200, "follower gets the plan the leader ordered");
    assert!(
        coalesced && !cached,
        "follower was answered from the leader's in-flight compute"
    );
    assert_eq!(
        state
            .metrics
            .computes
            .load(std::sync::atomic::Ordering::Relaxed),
        1,
        "the orphaned flight still computed exactly once"
    );

    handle.shutdown();
    handle.join();
}

#[test]
fn leader_crash_during_drain_answers_followers_cleanly() {
    // The hardest corner of coalescing: the daemon starts draining while a
    // flight is in the air, and then the *leader* — the one connection the
    // compute pool nominally answers to — dies. Followers must still get a
    // definitive answer (the drain path computes in-flight work instead of
    // shedding it) and shutdown must complete in bounded time: nobody
    // hangs on a flight whose leader is gone.
    let (handle, state) = daemon(Duration::from_millis(500));
    let body = r#"{"workload":"ep","arm":9,"amd":5}"#;
    let wire = http::format_request("POST", "/frontier", body);

    let mut c_leader = connect(&handle);
    c_leader.write_all(wire.as_bytes()).expect("leader send");
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while cache_misses(&handle) == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "leader request never routed"
        );
        std::thread::sleep(Duration::from_millis(2));
    }

    let mut followers: Vec<TcpStream> = (0..4).map(|_| connect(&handle)).collect();
    for f in &mut followers {
        f.write_all(wire.as_bytes()).expect("follower send");
    }
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while state
        .metrics
        .coalesced
        .load(std::sync::atomic::Ordering::Relaxed)
        < 4
    {
        assert!(
            std::time::Instant::now() < deadline,
            "followers never coalesced"
        );
        std::thread::sleep(Duration::from_millis(2));
    }

    // Drain begins with the flight still computing; the leader dies next.
    handle.shutdown();
    drop(c_leader);

    let joined = std::thread::scope(|s| {
        let answers = s.spawn(move || {
            followers
                .into_iter()
                .map(|mut f| {
                    let (status, _headers, resp) =
                        http::read_response(&mut f).expect("follower answered, not hung");
                    let v = json::parse(std::str::from_utf8(&resp).expect("UTF-8")).expect("JSON");
                    (
                        status,
                        v.get("coalesced").and_then(Value::as_bool).unwrap_or(false),
                    )
                })
                .collect::<Vec<_>>()
        });
        handle.join();
        answers.join().expect("follower reader")
    });
    for (status, coalesced) in joined {
        assert_eq!(
            status, 200,
            "drain answers coalesced followers, never hangs"
        );
        assert!(coalesced, "the answer rode the orphaned leader's flight");
    }
    assert_eq!(
        state
            .metrics
            .computes
            .load(std::sync::atomic::Ordering::Relaxed),
        1,
        "drain completed the in-flight compute exactly once"
    );
}
