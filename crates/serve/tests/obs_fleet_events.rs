//! Fleet telemetry: drives a two-replica fleet with a `JsonlSink`
//! installed and asserts the JSONL stream carries all five fleet events
//! — `replica_health_change`, `breaker_transition`, `request_retry`,
//! `request_hedged`, `failover_rewarm` — with their documented schemas.
//!
//! The obs sink is process-global, so this file holds exactly **one**
//! test in its own integration-test binary — sharing a process with other
//! sink-installing tests would interleave their streams.
//!
//! The scenario is *passively* detected (no prober thread), so the event
//! order is deterministic: with `breaker_threshold: 2` and
//! `fail_threshold: 3`, three forwards against a dead replica walk the
//! breaker closed→open→half_open→open and then trip the health flip +
//! failover on exactly the third failure.

use std::sync::Arc;
use std::time::{Duration, Instant};

use hecmix_experiments::Lab;
use hecmix_obs::json::{self, Value};
use hecmix_obs::JsonlSink;
use hecmix_serve::api::ComputeSpec;
use hecmix_serve::fleet::{Fleet, FleetConfig};
use hecmix_serve::{start, AppState, ModelStore, ServeConfig, ServerHandle};

fn build_store() -> ModelStore {
    static MODELS: std::sync::OnceLock<Vec<hecmix_core::profile::WorkloadModel>> =
        std::sync::OnceLock::new();
    let models = MODELS.get_or_init(|| {
        let lab = Lab::new();
        let ep = hecmix_workloads::workload_by_name("ep").expect("ep registered");
        lab.models(ep.as_ref()).to_vec()
    });
    let mut store = ModelStore::new();
    store.insert("ep", models.clone());
    store
}

fn boot_replica() -> (ServerHandle, Arc<AppState>) {
    let state = Arc::new(AppState::new(build_store(), 1, 64));
    let config = ServeConfig {
        io_threads: 1,
        workers: 2,
        queue_capacity: 32,
        read_timeout: Duration::from_secs(5),
        ..ServeConfig::default()
    };
    let handle = start(config, Arc::clone(&state)).expect("replica starts");
    (handle, state)
}

fn body(arm: u32) -> String {
    format!(r#"{{"workload":"ep","arm":{arm},"amd":5}}"#)
}

fn key_for_arm(arm: u32) -> u64 {
    let store = build_store();
    let entry = store.get("ep").expect("ep in store");
    ComputeSpec::Frontier {
        workload: "ep".to_owned(),
        arm,
        amd: 5,
        units: entry.default_units,
    }
    .key(entry.hash)
}

fn has_u64(line: &Value, key: &str) -> bool {
    line.get(key).and_then(Value::as_u64).is_some()
}

fn has_str(line: &Value, key: &str) -> bool {
    line.get(key).and_then(Value::as_str).is_some()
}

#[test]
fn fleet_emits_schema_complete_jsonl_events() {
    let dir = std::env::temp_dir().join(format!("hecmix-obs-fleet-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("events.jsonl");
    hecmix_obs::install(Arc::new(JsonlSink::create(&path).expect("sink")));

    let (h0, _s0) = boot_replica();
    let (h1, s1) = boot_replica();
    let fleet = Arc::new(
        Fleet::new(FleetConfig {
            replicas: vec![h0.addr().to_string(), h1.addr().to_string()],
            fail_threshold: 3,
            breaker_threshold: 2,
            breaker_cooldown: Duration::from_millis(50),
            backoff_base_ms: 5,
            backoff_cap_ms: 20,
            hedge_min: Duration::from_millis(40),
            hedge_max: Duration::from_millis(40),
            ..FleetConfig::default()
        })
        .expect("fleet"),
    );
    // No prober: detection is purely passive, so every event below is
    // triggered by an explicit forward and the sequence is deterministic.

    let arms_of = |replica: usize, n: usize, from: u32| -> Vec<u32> {
        (from..)
            .filter(|&arm| fleet.owner(key_for_arm(arm)) == replica)
            .take(n)
            .collect()
    };

    // 1. Hedge: replica 1 owns `hedge_arm` and is made slow; the 40 ms
    //    hedge fires to replica 0, which answers first.
    let hedge_arm = arms_of(1, 1, 1)[0];
    s1.set_compute_delay(Duration::from_millis(400));
    let resp = fleet.forward(key_for_arm(hedge_arm), "/frontier", &body(hedge_arm));
    assert_eq!(resp.status, 200, "hedged forward: {}", resp.body);
    assert!(fleet.hedge_count() >= 1, "hedge must have fired");
    s1.set_compute_delay(Duration::ZERO);

    // 2. Warm two keys onto replica 0, so its hot set is non-empty when
    //    it dies (the rewarm pass below needs displaced keys).
    for &arm in &arms_of(0, 2, 1) {
        let resp = fleet.forward(key_for_arm(arm), "/frontier", &body(arm));
        assert_eq!(resp.status, 200, "warm forward: {}", resp.body);
    }

    // 3. Kill replica 0 and forward three keys it owns. Failure #1 is a
    //    plain retry; #2 opens the breaker; after the cooldown, #3 flips
    //    open→half_open, fails the trial, re-opens, crosses the health
    //    threshold, and triggers failover + rewarm.
    h0.shutdown();
    h0.join();
    let dead_arms = arms_of(0, 3, 100);
    for (i, &arm) in dead_arms.iter().enumerate() {
        if i == 2 {
            std::thread::sleep(Duration::from_millis(80)); // past cooldown
        }
        let resp = fleet.forward(key_for_arm(arm), "/frontier", &body(arm));
        assert_eq!(resp.status, 200, "retried forward {i}: {}", resp.body);
    }
    assert!(fleet.failover_count() >= 1, "failover must have fired");

    // The rewarm pass runs on a background thread; wait for it.
    let deadline = Instant::now() + Duration::from_secs(10);
    while fleet.rewarmed_count() == 0 {
        assert!(Instant::now() < deadline, "rewarm never completed");
        std::thread::sleep(Duration::from_millis(10));
    }
    // `rewarmed` is bumped just before the event is emitted; give the
    // rewarm thread a beat to finish the emit before closing the sink.
    std::thread::sleep(Duration::from_millis(100));

    fleet.stop();
    h1.shutdown();
    h1.join();
    hecmix_obs::uninstall();

    // Replay the JSONL stream and check each fleet event's schema.
    let text = std::fs::read_to_string(&path).expect("events file");
    let mut kinds = std::collections::HashMap::<String, u64>::new();
    let mut breaker_edges = std::collections::HashSet::<(String, String)>::new();
    let mut saw_health_down = false;
    for line in text.lines() {
        let v = json::parse(line).unwrap_or_else(|e| panic!("bad JSONL line ({e}): {line}"));
        let kind = v
            .get("kind")
            .and_then(Value::as_str)
            .unwrap_or_else(|| panic!("record without kind: {line}"))
            .to_owned();
        match kind.as_str() {
            "replica_health_change" => {
                assert!(
                    has_u64(&v, "replica")
                        && has_str(&v, "addr")
                        && v.get("healthy").and_then(Value::as_bool).is_some()
                        && has_str(&v, "reason")
                        && has_u64(&v, "consecutive"),
                    "replica_health_change schema: {line}"
                );
                if v.get("healthy").and_then(Value::as_bool) == Some(false) {
                    saw_health_down = true;
                }
            }
            "breaker_transition" => {
                assert!(
                    has_u64(&v, "replica")
                        && has_str(&v, "from")
                        && has_str(&v, "to")
                        && has_u64(&v, "failures"),
                    "breaker_transition schema: {line}"
                );
                let edge = |k: &str| v.get(k).and_then(Value::as_str).unwrap().to_owned();
                breaker_edges.insert((edge("from"), edge("to")));
            }
            "request_retry" => {
                assert!(
                    has_str(&v, "path")
                        && has_u64(&v, "replica")
                        && has_u64(&v, "attempt")
                        && has_u64(&v, "backoff_ms")
                        && has_str(&v, "why"),
                    "request_retry schema: {line}"
                );
            }
            "request_hedged" => {
                assert!(
                    has_str(&v, "path")
                        && has_u64(&v, "primary")
                        && has_u64(&v, "hedge")
                        && has_u64(&v, "delay_ms"),
                    "request_hedged schema: {line}"
                );
            }
            "failover_rewarm" => {
                assert!(
                    has_u64(&v, "from_replica")
                        && has_u64(&v, "keys")
                        && has_u64(&v, "rewarmed")
                        && v.get("wall_s").and_then(Value::as_f64).is_some(),
                    "failover_rewarm schema: {line}"
                );
            }
            _ => {}
        }
        *kinds.entry(kind).or_default() += 1;
    }

    for required in [
        "replica_health_change",
        "breaker_transition",
        "request_retry",
        "request_hedged",
        "failover_rewarm",
    ] {
        assert!(
            kinds.get(required).copied().unwrap_or(0) >= 1,
            "missing {required} in stream; saw {kinds:?}"
        );
    }
    // The breaker walked the full state machine, not just one edge.
    for edge in [
        ("closed", "open"),
        ("open", "half_open"),
        ("half_open", "open"),
    ] {
        assert!(
            breaker_edges.contains(&(edge.0.to_owned(), edge.1.to_owned())),
            "missing breaker edge {edge:?}; saw {breaker_edges:?}"
        );
    }
    assert!(saw_health_down, "no healthy=false replica_health_change");

    let _ = std::fs::remove_dir_all(&dir);
}
