//! Admission control and graceful shutdown, over real sockets.
//!
//! The first test exercises the **connection cap**: past
//! `max_connections`, the accept loop itself answers `503` with
//! `Retry-After` instead of registering the socket — admitted connections
//! never feel the overload. The second exercises the **drain protocol** in
//! its hardest configuration: shutdown arrives while a coalesced compute
//! (one leader, one single-flight follower) is still running on the pool.
//! Both waiters must get real answers tagged `Connection: close`, every
//! thread must exit within a bounded join, and the listener must be gone.

use std::io::Write as _;
use std::net::TcpStream;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use hecmix_experiments::Lab;
use hecmix_obs::json::{self, Value};
use hecmix_serve::http;
use hecmix_serve::{start, AppState, ModelStore, ServeConfig, ServerHandle};

fn build_store() -> ModelStore {
    static MODELS: OnceLock<Vec<hecmix_core::profile::WorkloadModel>> = OnceLock::new();
    let models = MODELS.get_or_init(|| {
        let lab = Lab::new();
        let ep = hecmix_workloads::workload_by_name("ep").expect("ep registered");
        lab.models(ep.as_ref()).to_vec()
    });
    let mut store = ModelStore::new();
    store.insert("ep", models.clone());
    store
}

fn small_daemon(store: ModelStore, max_connections: usize) -> (ServerHandle, Arc<AppState>) {
    let state = Arc::new(AppState::new(store, 1, 16));
    let config = ServeConfig {
        io_threads: 1,
        workers: 1,
        max_connections,
        queue_capacity: 8,
        read_timeout: Duration::from_secs(2),
        queue_deadline: Duration::from_secs(30),
        retry_after_s: 7,
        ..ServeConfig::default()
    };
    let handle = start(config, Arc::clone(&state)).expect("daemon starts");
    (handle, state)
}

fn connect(handle: &ServerHandle) -> TcpStream {
    let conn = TcpStream::connect(handle.addr()).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    conn
}

/// Send `GET /healthz` on `conn` and return `(status, retry_after,
/// connection_header)`.
fn healthz(conn: &mut TcpStream) -> (u16, Option<String>, Option<String>) {
    conn.write_all(http::format_request("GET", "/healthz", "").as_bytes())
        .expect("send");
    let (status, headers, _body) = http::read_response(conn).expect("response");
    let find = |name: &str| {
        headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.clone())
    };
    (status, find("retry-after"), find("connection"))
}

fn wait_until(what: &str, mut f: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !f() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn connection_cap_gets_503_with_retry_after() {
    let (handle, state) = small_daemon(ModelStore::new(), 2);

    // Two connections fill the cap; both are registered with the event
    // loop and fully functional.
    let mut c0 = connect(&handle);
    let mut c1 = connect(&handle);
    assert_eq!(healthz(&mut c0).0, 200);
    assert_eq!(healthz(&mut c1).0, 200);
    wait_until("both connections registered", || handle.connections() == 2);

    // The third connection is rejected by the accept loop itself — it
    // never reaches the event loop or the compute pool.
    let mut c2 = connect(&handle);
    let (status, retry_after, connection) = healthz(&mut c2);
    assert_eq!(status, 503, "admission control must reject");
    assert_eq!(retry_after.as_deref(), Some("7"), "Retry-After advertised");
    assert_eq!(connection.as_deref(), Some("close"));
    let rejected = state
        .metrics
        .rejected
        .load(std::sync::atomic::Ordering::Relaxed);
    assert!(rejected >= 1, "rejection counted in metrics");

    // The admitted connections still work: overload never broke them.
    assert_eq!(healthz(&mut c0).0, 200);
    assert_eq!(healthz(&mut c1).0, 200);

    // Dropping an admitted connection frees a slot for a new one.
    drop(c0);
    wait_until("slot freed", || handle.connections() < 2);
    let mut c3 = connect(&handle);
    assert_eq!(healthz(&mut c3).0, 200, "freed slot must be reusable");

    handle.shutdown();
    handle.join();
}

#[test]
fn graceful_shutdown_drains_coalesced_in_flight_compute() {
    let (handle, state) = small_daemon(build_store(), 64);
    // Hold the single compute worker long enough that shutdown lands
    // mid-sweep with a follower parked on the leader's flight.
    state.set_compute_delay(Duration::from_millis(400));

    let body = r#"{"workload":"ep","arm":4,"amd":3}"#;
    let wire = http::format_request("POST", "/frontier", body);

    // Leader: first miss enqueues the compute.
    let mut c_leader = connect(&handle);
    c_leader.write_all(wire.as_bytes()).expect("leader send");
    // Follower: identical query while the sweep runs — joins the flight
    // instead of enqueueing a second job.
    let mut c_follower = connect(&handle);
    c_follower
        .write_all(wire.as_bytes())
        .expect("follower send");
    wait_until("follower to coalesce onto the leader's flight", || {
        state
            .metrics
            .coalesced
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1
    });

    // SIGINT equivalent: drain starts while the coalesced compute is
    // still sleeping on the pool.
    handle.shutdown();

    // Both waiters get the real answer, tagged for close.
    let mut answers = Vec::new();
    for (name, conn) in [("leader", &mut c_leader), ("follower", &mut c_follower)] {
        let (status, headers, resp) =
            http::read_response(conn).unwrap_or_else(|e| panic!("{name} must be answered: {e:?}"));
        assert_eq!(status, 200, "{name} gets the computed frontier");
        let connection = headers
            .iter()
            .find(|(k, _)| k == "connection")
            .map(|(_, v)| v.as_str().to_owned());
        assert_eq!(
            connection.as_deref(),
            Some("close"),
            "{name} told to close during drain"
        );
        let v = json::parse(std::str::from_utf8(&resp).expect("UTF-8")).expect("JSON");
        answers.push(v);
    }
    let coalesced_flags: Vec<bool> = answers
        .iter()
        .map(|v| v.get("coalesced").and_then(Value::as_bool).expect("flag"))
        .collect();
    assert!(
        coalesced_flags.contains(&true),
        "one waiter rode the leader's compute: {coalesced_flags:?}"
    );
    assert_eq!(
        state
            .metrics
            .computes
            .load(std::sync::atomic::Ordering::Relaxed),
        1,
        "exactly one sweep for both waiters"
    );

    // Every thread exits; join is bounded by the read timeout.
    let t0 = Instant::now();
    let addr = handle.addr();
    handle.join();
    assert!(
        t0.elapsed() < Duration::from_secs(10),
        "join must not hang after drain"
    );

    // The listener is gone: new connections are refused.
    assert!(
        TcpStream::connect(addr).is_err(),
        "listener must be closed after shutdown"
    );
}

#[test]
fn slowloris_partial_head_is_reaped_with_408() {
    // A peer trickling a request head one fragment at a time keeps
    // `last_active` fresh forever, so the idle sweep alone never fires.
    // The head deadline is the guard: a connection holding a *partial*
    // request past it is answered 408 and closed, and the reap is
    // counted in /statz.
    let state = Arc::new(AppState::new(build_store(), 1, 16));
    let config = ServeConfig {
        io_threads: 1,
        workers: 1,
        max_connections: 16,
        queue_capacity: 8,
        read_timeout: Duration::from_secs(30),
        head_deadline: Duration::from_millis(300),
        queue_deadline: Duration::from_secs(30),
        ..ServeConfig::default()
    };
    let handle = start(config, Arc::clone(&state)).expect("daemon starts");

    // An honest keep-alive connection, for contrast: it must survive the
    // slowloris reaping untouched (its buffers are empty between
    // requests, so the head deadline never applies).
    let mut honest = connect(&handle);
    assert_eq!(healthz(&mut honest).0, 200);

    // The attacker sends half a request line, then drip-feeds one byte
    // every 100 ms from a second thread — each byte refreshes
    // `last_active`, so only the head deadline can catch it.
    let mut slow = connect(&handle);
    slow.write_all(b"POST /frontier HT").expect("partial head");
    let mut trickle = slow.try_clone().expect("clone socket");
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let stop_trickle = Arc::clone(&stop);
    let trickler = std::thread::spawn(move || {
        while !stop_trickle.load(std::sync::atomic::Ordering::Relaxed) {
            if trickle.write_all(b"T").is_err() {
                break;
            }
            std::thread::sleep(Duration::from_millis(100));
        }
    });
    let t0 = Instant::now();
    let (status, headers, _body) =
        http::read_response(&mut slow).expect("slowloris connection must get a response");
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    trickler.join().expect("trickler thread");
    assert_eq!(status, 408, "partial head reaped with 408");
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "reap happens on the head deadline, not the 30 s idle timeout"
    );
    assert_eq!(
        headers
            .iter()
            .find(|(k, _)| k == "connection")
            .map(|(_, v)| v.as_str()),
        Some("close"),
        "a reaped connection is told to close"
    );
    wait_until("timeout counted", || {
        state
            .metrics
            .timeouts
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1
    });

    // The honest connection was untouched by the reaping.
    assert_eq!(healthz(&mut honest).0, 200);

    // And the counter is visible in /statz.
    let mut c = connect(&handle);
    c.write_all(http::format_request("GET", "/statz", "").as_bytes())
        .expect("send");
    let (status, _headers, resp) = http::read_response(&mut c).expect("statz");
    assert_eq!(status, 200);
    let v = json::parse(std::str::from_utf8(&resp).expect("UTF-8")).expect("JSON");
    assert_eq!(
        v.get("schema").and_then(Value::as_str),
        Some("hecmix-statz-v4")
    );
    assert!(
        v.get("timeouts_408").and_then(Value::as_u64).unwrap_or(0) >= 1,
        "statz must count the 408 reap"
    );

    handle.shutdown();
    handle.join();
}
