//! Admission control and graceful shutdown, over real sockets.
//!
//! Both tests run their own daemon instance with `workers: 1` so queue
//! occupancy is fully deterministic: the single worker is parked on one
//! held connection while the tests arrange the accept queue behind it.

use std::io::Write as _;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use hecmix_serve::http;
use hecmix_serve::{start, AppState, ModelStore, ServeConfig, ServerHandle};

fn small_daemon(queue_capacity: usize) -> (ServerHandle, Arc<AppState>) {
    let state = Arc::new(AppState::new(ModelStore::new(), 1, 16));
    let config = ServeConfig {
        workers: 1,
        queue_capacity,
        read_timeout: Duration::from_secs(2),
        queue_deadline: Duration::from_secs(30),
        retry_after_s: 7,
        ..ServeConfig::default()
    };
    let handle = start(config, Arc::clone(&state)).expect("daemon starts");
    (handle, state)
}

fn connect(handle: &ServerHandle) -> TcpStream {
    let conn = TcpStream::connect(handle.addr()).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    conn
}

/// Send `GET /healthz` on `conn` and return `(status, retry_after,
/// connection_header)`.
fn healthz(conn: &mut TcpStream) -> (u16, Option<String>, Option<String>) {
    conn.write_all(http::format_request("GET", "/healthz", "").as_bytes())
        .expect("send");
    let (status, headers, _body) = http::read_response(conn).expect("response");
    let find = |name: &str| {
        headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.clone())
    };
    (status, find("retry-after"), find("connection"))
}

fn wait_until(what: &str, mut f: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !f() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn full_queue_gets_503_with_retry_after() {
    let (handle, state) = small_daemon(1);

    // Occupy the single worker: after one served request it is parked in
    // the keep-alive read on c0.
    let mut c0 = connect(&handle);
    assert_eq!(healthz(&mut c0).0, 200);
    wait_until("worker to own c0", || handle.queue_depth() == 0);

    // Fill the queue (capacity 1) with a second connection the busy
    // worker cannot pop.
    let _c1 = connect(&handle);
    wait_until("c1 to be queued", || handle.queue_depth() == 1);

    // The third connection must be rejected by admission control itself.
    let mut c2 = connect(&handle);
    let (status, retry_after, connection) = healthz(&mut c2);
    assert_eq!(status, 503, "admission control must reject");
    assert_eq!(retry_after.as_deref(), Some("7"), "Retry-After advertised");
    assert_eq!(connection.as_deref(), Some("close"));
    let rejected = state
        .metrics
        .rejected
        .load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(rejected, 1, "rejection counted in metrics");

    // The held connection still works: overload never broke admitted work.
    assert_eq!(healthz(&mut c0).0, 200);

    handle.join();
}

#[test]
fn graceful_shutdown_drains_in_flight_and_queued_work() {
    let (handle, _state) = small_daemon(8);

    // Worker owns cA.
    let mut c_a = connect(&handle);
    assert_eq!(healthz(&mut c_a).0, 200);
    wait_until("worker to own cA", || handle.queue_depth() == 0);

    // cB is queued with a complete request already on the wire.
    let mut c_b = connect(&handle);
    c_b.write_all(http::format_request("GET", "/healthz", "").as_bytes())
        .expect("send queued request");
    wait_until("cB to be queued", || handle.queue_depth() == 1);

    handle.shutdown();

    // The in-flight connection gets its answer, tagged Connection: close.
    let (status, _, connection) = healthz(&mut c_a);
    assert_eq!(
        status, 200,
        "in-flight request must be answered during drain"
    );
    assert_eq!(connection.as_deref(), Some("close"));
    drop(c_a);

    // The queued connection is drained, not dropped.
    let (status, _headers, _body) = http::read_response(&mut c_b).expect("queued response");
    assert_eq!(status, 200, "queued request must be answered during drain");

    // Every thread exits; join is bounded by the read timeout.
    let t0 = Instant::now();
    let addr = handle.addr();
    handle.join();
    assert!(
        t0.elapsed() < Duration::from_secs(10),
        "join must not hang after drain"
    );

    // The listener is gone: new connections are refused.
    assert!(
        TcpStream::connect(addr).is_err(),
        "listener must be closed after shutdown"
    );
}
