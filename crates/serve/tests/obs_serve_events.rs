//! Serving-path telemetry: drives a live daemon with a `JsonlSink`
//! installed and asserts the JSONL stream carries the event-loop,
//! coalescing, and warm-reload records with their documented schemas.
//!
//! The obs sink is process-global, so this file holds exactly **one**
//! test in its own integration-test binary — sharing a process with other
//! sink-installing tests would interleave their streams.

use std::io::Write as _;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use hecmix_experiments::Lab;
use hecmix_obs::json::{self, Value};
use hecmix_obs::JsonlSink;
use hecmix_serve::http;
use hecmix_serve::{start, AppState, ModelStore, ServeConfig, ServerHandle};

fn build_store() -> ModelStore {
    let lab = Lab::new();
    let ep = hecmix_workloads::workload_by_name("ep").expect("ep registered");
    let mut store = ModelStore::new();
    store.insert("ep", lab.models(ep.as_ref()).to_vec());
    store
}

fn connect(handle: &ServerHandle) -> TcpStream {
    let conn = TcpStream::connect(handle.addr()).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    conn
}

fn call(handle: &ServerHandle, method: &str, path: &str, body: &str) -> u16 {
    let mut conn = connect(handle);
    conn.write_all(http::format_request(method, path, body).as_bytes())
        .expect("send");
    let (status, _headers, _resp) = http::read_response(&mut conn).expect("response");
    status
}

/// Assert `line` (a parsed JSONL record) has a `u64` field `key`.
fn has_u64(line: &Value, key: &str) -> bool {
    line.get(key).and_then(Value::as_u64).is_some()
}

#[test]
fn serving_path_emits_schema_complete_jsonl_events() {
    let dir = std::env::temp_dir().join(format!("hecmix-obs-serve-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("events.jsonl");
    hecmix_obs::install(Arc::new(JsonlSink::create(&path).expect("sink")));

    let state = Arc::new(AppState::new(build_store(), 1, 64));
    state.set_reload(Arc::new(|| Ok(build_store())));
    state.set_compute_delay(Duration::from_millis(250));
    let config = ServeConfig {
        io_threads: 1,
        workers: 1,
        queue_capacity: 16,
        read_timeout: Duration::from_secs(5),
        ..ServeConfig::default()
    };
    let handle = start(config, Arc::clone(&state)).expect("daemon starts");

    // 1. A health check exercises the plain request path.
    assert_eq!(call(&handle, "GET", "/healthz", ""), 200);

    // 2. Two concurrent identical /frontier misses: the second coalesces
    //    onto the first's in-flight compute.
    let body = r#"{"workload":"ep","arm":5,"amd":5}"#;
    let wire = http::format_request("POST", "/frontier", body);
    let mut c_leader = connect(&handle);
    c_leader.write_all(wire.as_bytes()).expect("leader send");
    let mut c_follower = connect(&handle);
    c_follower
        .write_all(wire.as_bytes())
        .expect("follower send");
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while state
        .metrics
        .coalesced
        .load(std::sync::atomic::Ordering::Relaxed)
        == 0
    {
        assert!(
            std::time::Instant::now() < deadline,
            "follower never coalesced onto the leader's flight"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    let (status, _, _) = http::read_response(&mut c_leader).expect("leader answered");
    assert_eq!(status, 200);
    let (status, _, _) = http::read_response(&mut c_follower).expect("follower answered");
    assert_eq!(status, 200);

    // 3. A reload re-warms the hot set (the frontier key cached above).
    state.set_compute_delay(Duration::ZERO);
    assert_eq!(call(&handle, "POST", "/reload", ""), 200);

    handle.shutdown();
    handle.join();
    hecmix_obs::uninstall();

    // Replay the JSONL stream and check each serving event's schema.
    let text = std::fs::read_to_string(&path).expect("events file");
    let mut kinds = std::collections::HashMap::<String, u64>::new();
    for line in text.lines() {
        let v = json::parse(line).unwrap_or_else(|e| panic!("bad JSONL line ({e}): {line}"));
        let kind = v
            .get("kind")
            .and_then(Value::as_str)
            .unwrap_or_else(|| panic!("record without kind: {line}"))
            .to_owned();
        match kind.as_str() {
            "request_coalesced" => {
                // `key` is a full 64-bit FNV hash — beyond the JSON
                // parser's exact-integer range, so check it as a number.
                assert!(
                    v.get("path").and_then(Value::as_str).is_some()
                        && v.get("key").and_then(Value::as_f64).is_some(),
                    "request_coalesced schema: {line}"
                );
            }
            "cache_warm_start" => {
                assert!(has_u64(&v, "keys"), "cache_warm_start schema: {line}");
            }
            "cache_warm_done" => {
                assert!(
                    has_u64(&v, "keys")
                        && has_u64(&v, "warmed")
                        && v.get("wall_s").and_then(Value::as_f64).is_some(),
                    "cache_warm_done schema: {line}"
                );
            }
            "eventloop_wakeup" => {
                assert!(
                    has_u64(&v, "io_thread") && has_u64(&v, "events") && has_u64(&v, "messages"),
                    "eventloop_wakeup schema: {line}"
                );
            }
            "request_start" => {
                assert!(
                    v.get("path").and_then(Value::as_str).is_some() && has_u64(&v, "queue_depth"),
                    "request_start schema: {line}"
                );
            }
            "request_done" => {
                assert!(
                    v.get("path").and_then(Value::as_str).is_some()
                        && has_u64(&v, "status")
                        && v.get("wall_s").and_then(Value::as_f64).is_some()
                        && v.get("cached").and_then(Value::as_bool).is_some(),
                    "request_done schema: {line}"
                );
            }
            _ => {}
        }
        *kinds.entry(kind).or_default() += 1;
    }

    // Every serving event the scenario must have produced is present.
    for required in [
        "eventloop_wakeup",
        "request_start",
        "request_done",
        "request_coalesced",
        "cache_warm_start",
        "cache_warm_done",
    ] {
        assert!(
            kinds.get(required).copied().unwrap_or(0) >= 1,
            "missing {required} in stream; saw {kinds:?}"
        );
    }
    // One follower coalesced exactly once.
    assert_eq!(kinds["request_coalesced"], 1);

    let _ = std::fs::remove_dir_all(&dir);
}
