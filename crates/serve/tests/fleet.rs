//! Replica-fleet integration: a real gateway daemon routing over real
//! replica daemons, all on ephemeral ports in-process.
//!
//! Four claims, each proven over live sockets:
//!
//! 1. **Partitioning** — consistent hashing over the plan-cache key sends
//!    each key to exactly one replica, so the fleet's LRUs hold disjoint
//!    shards and a warm round hits everywhere.
//! 2. **Failover + rewarm** — killing a replica never surfaces to
//!    clients, and the displaced hot keys come back warm on their new
//!    owners (the failover→first-rehit watch records it).
//! 3. **Crash under drain** — a replica dies abruptly (chaos proxy reset)
//!    while the gateway is draining; every in-flight client still gets a
//!    `200`.
//! 4. **Hedging** — a slow owner is raced by a hedge to another replica
//!    after the configured delay, and the hedge wins.

use std::io::Write as _;
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use hecmix_experiments::Lab;
use hecmix_obs::json::{self, Value};
use hecmix_serve::api::ComputeSpec;
use hecmix_serve::chaos::{ChaosProxy, ChaosSchedule};
use hecmix_serve::fleet::{Fleet, FleetConfig};
use hecmix_serve::http;
use hecmix_serve::{start, AppState, ModelStore, ServeConfig, ServerHandle};

fn build_store() -> ModelStore {
    static MODELS: OnceLock<Vec<hecmix_core::profile::WorkloadModel>> = OnceLock::new();
    let models = MODELS.get_or_init(|| {
        let lab = Lab::new();
        let ep = hecmix_workloads::workload_by_name("ep").expect("ep registered");
        lab.models(ep.as_ref()).to_vec()
    });
    let mut store = ModelStore::new();
    store.insert("ep", models.clone());
    store
}

struct Replica {
    handle: Option<ServerHandle>,
    state: Arc<AppState>,
}

impl Replica {
    fn addr(&self) -> String {
        self.handle
            .as_ref()
            .expect("replica alive")
            .addr()
            .to_string()
    }

    fn kill(&mut self) {
        if let Some(h) = self.handle.take() {
            h.shutdown();
            h.join();
        }
    }
}

fn boot_replicas(n: usize) -> Vec<Replica> {
    (0..n)
        .map(|_| {
            let state = Arc::new(AppState::new(build_store(), 2, 256));
            let config = ServeConfig {
                io_threads: 2,
                workers: 2,
                max_connections: 256,
                queue_capacity: 64,
                read_timeout: Duration::from_secs(5),
                queue_deadline: Duration::from_secs(30),
                ..ServeConfig::default()
            };
            let handle = start(config, Arc::clone(&state)).expect("replica starts");
            Replica {
                handle: Some(handle),
                state,
            }
        })
        .collect()
}

/// Fleet over `addrs` with fast probes and hedging effectively disabled
/// (the hedging test overrides the hedge window itself).
fn fleet_config(addrs: Vec<String>) -> FleetConfig {
    FleetConfig {
        replicas: addrs,
        probe_interval: Duration::from_millis(50),
        probe_timeout: Duration::from_millis(250),
        hedge_min: Duration::from_secs(5),
        hedge_max: Duration::from_secs(5),
        ..FleetConfig::default()
    }
}

fn boot_gateway(fleet: &Arc<Fleet>) -> ServerHandle {
    let state = Arc::new(AppState::new_gateway(build_store(), 2, Arc::clone(fleet)));
    let config = ServeConfig {
        io_threads: 2,
        workers: 8,
        max_connections: 256,
        queue_capacity: 128,
        read_timeout: Duration::from_secs(10),
        queue_deadline: Duration::from_secs(10),
        ..ServeConfig::default()
    };
    start(config, state).expect("gateway starts")
}

fn connect(handle: &ServerHandle) -> TcpStream {
    let conn = TcpStream::connect(handle.addr()).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    conn
}

fn body(arm: u32) -> String {
    format!(r#"{{"workload":"ep","arm":{arm},"amd":5}}"#)
}

/// The plan-cache key the gateway derives for [`body`]`(arm)` — same
/// model bundles, same spec, so routing in tests is predictable.
fn key_for_arm(arm: u32) -> u64 {
    let store = build_store();
    let entry = store.get("ep").expect("ep in store");
    ComputeSpec::Frontier {
        workload: "ep".to_owned(),
        arm,
        amd: 5,
        units: entry.default_units,
    }
    .key(entry.hash)
}

/// `(status, cached)` of one `/frontier` exchange on a keep-alive conn.
fn frontier(conn: &mut TcpStream, body: &str) -> (u16, bool) {
    conn.write_all(http::format_request("POST", "/frontier", body).as_bytes())
        .expect("send");
    let (status, _headers, resp) = http::read_response(conn).expect("response");
    let v = json::parse(std::str::from_utf8(&resp).expect("UTF-8")).expect("JSON");
    let cached = v.get("cached").and_then(Value::as_bool).unwrap_or(false);
    (status, cached)
}

#[test]
fn gateway_partitions_the_cache_across_replicas_by_key() {
    let replicas = boot_replicas(3);
    let fleet = Arc::new(
        Fleet::new(fleet_config(replicas.iter().map(Replica::addr).collect())).expect("fleet"),
    );
    fleet.start_probing();
    let gateway = boot_gateway(&fleet);
    let mut conn = connect(&gateway);

    // Round 1: cold. Every distinct key computes exactly once, on the
    // replica the ring assigns it.
    for arm in 1..=12 {
        let (status, cached) = frontier(&mut conn, &body(arm));
        assert_eq!(status, 200, "arm {arm} round 1");
        assert!(!cached, "arm {arm} must be cold on round 1");
    }
    // Round 2: warm. The same keys route to the same replicas, whose LRUs
    // now hold them — the fleet behaves as one partitioned cache.
    for arm in 1..=12 {
        let (status, cached) = frontier(&mut conn, &body(arm));
        assert_eq!(status, 200, "arm {arm} round 2");
        assert!(cached, "arm {arm} must hit the partitioned cache");
    }

    // Ground truth: computes landed exactly where the ring says the keys
    // live, and the key space genuinely spread across the fleet.
    let mut expected = [0u64; 3];
    for arm in 1..=12 {
        expected[fleet.owner(key_for_arm(arm))] += 1;
    }
    let computed: Vec<u64> = replicas
        .iter()
        .map(|r| r.state.metrics.computes.load(Ordering::Relaxed))
        .collect();
    assert_eq!(
        computed,
        expected.to_vec(),
        "computes must match ring ownership"
    );
    assert!(
        expected.iter().filter(|&&n| n > 0).count() >= 2,
        "12 keys must spread across at least 2 replicas: {expected:?}"
    );

    gateway.shutdown();
    gateway.join();
    fleet.stop();
    for mut r in replicas {
        r.kill();
    }
}

#[test]
fn replica_death_triggers_failover_and_rewarms_displaced_keys() {
    let mut replicas = boot_replicas(3);
    let fleet = Arc::new(
        Fleet::new(fleet_config(replicas.iter().map(Replica::addr).collect())).expect("fleet"),
    );
    fleet.start_probing();
    let gateway = boot_gateway(&fleet);
    let mut conn = connect(&gateway);

    // Warm twelve keys so every replica holds a shard of the hot set.
    for arm in 1..=12 {
        assert_eq!(frontier(&mut conn, &body(arm)).0, 200);
    }

    // Kill the owner of arm 1 and note every key it was holding.
    let victim = fleet.owner(key_for_arm(1));
    let displaced: Vec<u32> = (1..=12)
        .filter(|&arm| fleet.owner(key_for_arm(arm)) == victim)
        .collect();
    assert!(!displaced.is_empty());
    replicas[victim].kill();

    // Live traffic keeps flowing while health converges: not one
    // client-visible error, even for keys the dead replica owned.
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut arm = 100;
    while fleet.failover_count() == 0 {
        assert!(Instant::now() < deadline, "replica death never detected");
        let (status, _) = frontier(&mut conn, &body(arm));
        assert_eq!(
            status, 200,
            "client saw an error during the failover window"
        );
        arm += 1;
        std::thread::sleep(Duration::from_millis(20));
    }
    let deadline = Instant::now() + Duration::from_secs(5);
    while fleet.healthy_count() != 2 {
        assert!(Instant::now() < deadline, "health never converged to 2/3");
        std::thread::sleep(Duration::from_millis(10));
    }

    // The displaced keys come back warm on their new owners — the rewarm
    // closed the cold-start cliff the crash opened.
    let deadline = Instant::now() + Duration::from_secs(10);
    for &arm in &displaced {
        loop {
            let (status, cached) = frontier(&mut conn, &body(arm));
            assert_eq!(status, 200, "displaced arm {arm} must stay answerable");
            if cached {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "displaced arm {arm} never came back warm"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
    }
    assert!(fleet.rewarmed_count() >= 1, "hot keys were re-warmed");
    assert!(
        fleet.first_rehit_ms().is_some(),
        "failover→first-rehit must be recorded once a displaced key hits"
    );

    gateway.shutdown();
    gateway.join();
    fleet.stop();
    for mut r in replicas {
        r.kill();
    }
}

#[test]
fn replica_crash_during_gateway_drain_answers_every_client() {
    // The abrupt version: the victim replica sits behind a chaos proxy
    // whose schedule resets every connection 300 ms in — mid-compute for
    // the 600 ms sweeps below — and the gateway starts draining while
    // those requests are still in the air. Every client must still get a
    // definitive 200: retries run during drain, never shed.
    let replicas = boot_replicas(3);
    for r in &replicas {
        r.state.set_compute_delay(Duration::from_millis(600));
    }
    let victim = 1;
    let schedule = Arc::new(ChaosSchedule::new(9).kill(victim, 0.3));
    let epoch = Instant::now();
    let victim_addr = replicas[victim]
        .handle
        .as_ref()
        .expect("victim alive")
        .addr();
    let proxy =
        ChaosProxy::start(victim, victim_addr, Arc::clone(&schedule), epoch).expect("proxy");

    let addrs: Vec<String> = replicas
        .iter()
        .enumerate()
        .map(|(i, r)| {
            if i == victim {
                proxy.addr().to_string()
            } else {
                r.addr()
            }
        })
        .collect();
    let fleet = Arc::new(Fleet::new(fleet_config(addrs)).expect("fleet"));
    fleet.start_probing();
    let gateway = boot_gateway(&fleet);

    // Two keys owned by the victim, two by survivors — all cold, so all
    // four compute for 600 ms while the kill window opens under them.
    let mut owned_by_victim = Vec::new();
    let mut owned_by_others = Vec::new();
    for arm in 20.. {
        if fleet.owner(key_for_arm(arm)) == victim {
            if owned_by_victim.len() < 2 {
                owned_by_victim.push(arm);
            }
        } else if owned_by_others.len() < 2 {
            owned_by_others.push(arm);
        }
        if owned_by_victim.len() == 2 && owned_by_others.len() == 2 {
            break;
        }
    }
    let arms: Vec<u32> = owned_by_victim.into_iter().chain(owned_by_others).collect();

    let t0 = Instant::now();
    let statuses = std::thread::scope(|s| {
        let clients: Vec<_> = arms
            .iter()
            .map(|&arm| {
                let gateway = &gateway;
                s.spawn(move || {
                    let mut conn = connect(gateway);
                    frontier(&mut conn, &body(arm)).0
                })
            })
            .collect();
        // Let the requests reach the replicas, then drain the gateway
        // while the victim's computes are still pending the reset.
        std::thread::sleep(Duration::from_millis(150));
        gateway.shutdown();
        clients
            .into_iter()
            .map(|c| c.join().expect("client thread"))
            .collect::<Vec<u16>>()
    });
    for (arm, status) in arms.iter().zip(&statuses) {
        assert_eq!(*status, 200, "arm {arm} must be answered during drain");
    }
    assert!(
        fleet.retry_count() >= 1,
        "the victim's reset connections must have been retried"
    );
    gateway.join();
    assert!(
        t0.elapsed() < Duration::from_secs(15),
        "drain with a crashed replica must still terminate promptly"
    );

    fleet.stop();
    drop(proxy);
    for mut r in replicas {
        r.kill();
    }
}

#[test]
fn hedged_request_beats_a_slow_owner() {
    let replicas = boot_replicas(2);
    let mut cfg = fleet_config(replicas.iter().map(Replica::addr).collect());
    cfg.hedge_min = Duration::from_millis(50);
    cfg.hedge_max = Duration::from_millis(50);
    let fleet = Arc::new(Fleet::new(cfg).expect("fleet"));
    fleet.start_probing();

    // Find a key the slow replica owns, then make its owner pathologically
    // slow. The hedge fires at 50 ms and the other replica answers.
    let slow_arm = (1..)
        .find(|&arm| fleet.owner(key_for_arm(arm)) == 0)
        .expect("some arm");
    replicas[0].state.set_compute_delay(Duration::from_secs(2));

    let t0 = Instant::now();
    let resp = fleet.forward(key_for_arm(slow_arm), "/frontier", &body(slow_arm));
    let elapsed = t0.elapsed();
    assert_eq!(
        resp.status, 200,
        "hedged request must succeed: {}",
        resp.body
    );
    assert!(
        elapsed < Duration::from_millis(1900),
        "the hedge must beat the 2 s owner, took {elapsed:?}"
    );
    assert!(fleet.hedge_count() >= 1, "a hedge must have fired");

    fleet.stop();
    for mut r in replicas {
        r.kill();
    }
}
