//! Request dispatch: the planning endpoints and their shared state.
//!
//! Six endpoints over the model machinery in `hecmix-core`:
//!
//! | Endpoint         | Answers                                            |
//! |------------------|----------------------------------------------------|
//! | `POST /plan`     | cheapest feasible config for a workload + deadline |
//! | `POST /frontier` | the energy–deadline Pareto frontier (optionally the `resilient_k` degraded frontier) |
//! | `POST /whatif`   | the power-budget substitution ladder               |
//! | `POST /reload`   | swap the model inventory, invalidate the cache     |
//! | `GET /healthz`   | liveness                                           |
//! | `GET /statz`     | uptime, queue, cache, latency percentiles          |
//!
//! Every computed answer is memoized in the sharded LRU ([`crate::cache`])
//! under a key mixing the **content hash of the model bundle** with the
//! query shape, so identical questions after the first are answered
//! without touching the sweep engine. Responses always carry two fields
//! the load harness relies on: `"cached"` and `"compute_us"` (server-side
//! compute time, free of network jitter — the honest number for the
//! cold-vs-warm speedup claim).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

use hecmix_core::budget::PowerBudget;
use hecmix_core::config::ConfigSpace;
use hecmix_core::mix_match::mix_and_match;
use hecmix_core::pareto::ParetoFrontier;
use hecmix_core::persist::fnv1a;
use hecmix_core::rate_table::RateTable;
use hecmix_core::resilience::ResilientTable;
use hecmix_core::types::Platform;
use hecmix_obs::json::{self, Object, Value};
use hecmix_obs::{emit, Event};

use crate::cache::ShardedLru;
use crate::hist::{self, Histogram};
use crate::http::{Request, Response};
use crate::store::{ModelEntry, ModelStore};

/// Query-shape tags mixed into cache keys so different derivations from
/// the same model bundle can never alias.
mod tag {
    /// Pareto frontier of a two-type space.
    pub const FRONTIER: u64 = 1;
    /// Resilient (k-degraded) frontier.
    pub const RESILIENT: u64 = 3;
    /// Power-budget substitution ladder.
    pub const WHATIF: u64 = 4;
}

/// One memoized computation.
pub enum CachedCompute {
    /// An energy–deadline frontier (plain or k-degraded).
    Frontier(ParetoFrontier),
    /// A full substitution ladder with per-rung frontiers (kept so any
    /// deadline can be evaluated against a cached ladder).
    Whatif(WhatifResult),
}

/// Cached result of a `/whatif` ladder computation.
pub struct WhatifResult {
    /// Ladder rungs, all-high first, all-low last.
    pub rungs: Vec<WhatifRung>,
}

/// One substitution-ladder rung and its frontier.
pub struct WhatifRung {
    /// Human-readable mix label (`ARM 16:AMD 14`).
    pub label: String,
    /// Low-power node count.
    pub low_nodes: u32,
    /// High-performance node count.
    pub high_nodes: u32,
    /// Peak power draw of the mix, watts.
    pub peak_w: f64,
    /// The rung's energy–deadline frontier.
    pub frontier: ParetoFrontier,
}

/// Source for `POST /reload`: rebuilds a fresh [`ModelStore`].
pub type ReloadFn = dyn Fn() -> Result<ModelStore, String> + Send + Sync;

/// Per-daemon counters and per-worker latency histograms.
pub struct Metrics {
    /// One histogram per worker (indexed by worker id; lock-free writes).
    pub hists: Vec<Histogram>,
    /// Requests answered (any status except accept-queue rejections).
    pub served: AtomicU64,
    /// Connections rejected by admission control.
    pub rejected: AtomicU64,
    /// Last observed accept-queue depth.
    pub queue_depth: AtomicUsize,
    started: Instant,
}

impl Metrics {
    fn new(workers: usize) -> Self {
        Self {
            hists: (0..workers.max(1)).map(|_| Histogram::new()).collect(),
            served: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            queue_depth: AtomicUsize::new(0),
            started: Instant::now(),
        }
    }

    /// Seconds since the daemon started.
    #[must_use]
    pub fn uptime_s(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }
}

/// Everything a worker needs to answer a request.
pub struct AppState {
    store: RwLock<Arc<ModelStore>>,
    cache: ShardedLru<CachedCompute>,
    reload: RwLock<Option<Arc<ReloadFn>>>,
    /// Counters and histograms, updated by workers and the accept thread.
    pub metrics: Metrics,
}

impl AppState {
    /// State over `store`, with `workers` latency histograms and a plan
    /// cache of `cache_capacity` entries.
    #[must_use]
    pub fn new(store: ModelStore, workers: usize, cache_capacity: usize) -> Self {
        Self {
            store: RwLock::new(Arc::new(store)),
            cache: ShardedLru::new(cache_capacity.max(1)),
            reload: RwLock::new(None),
            metrics: Metrics::new(workers),
        }
    }

    /// Configure what `POST /reload` does (rebuild from a directory, a
    /// lab, …). Without one, `/reload` answers 400.
    pub fn set_reload(&self, f: Arc<ReloadFn>) {
        *self.reload.write().expect("reload slot poisoned") = Some(f);
    }

    /// Snapshot of the current model inventory.
    #[must_use]
    pub fn store(&self) -> Arc<ModelStore> {
        Arc::clone(&self.store.read().expect("model store poisoned"))
    }

    /// Handle one request end to end: dispatch, record latency into
    /// `worker`'s histogram, emit request telemetry.
    #[must_use]
    pub fn handle(&self, worker: usize, req: &Request) -> Response {
        let t0 = Instant::now();
        emit(|| Event::RequestStart {
            path: req.path.clone(),
            queue_depth: self.metrics.queue_depth.load(Ordering::Relaxed),
        });
        let (resp, cached) = self.dispatch(req);
        let wall = t0.elapsed();
        self.metrics.served.fetch_add(1, Ordering::Relaxed);
        if let Some(h) = self.metrics.hists.get(worker) {
            h.record(wall.as_nanos() as u64);
        }
        emit(|| Event::RequestDone {
            path: req.path.clone(),
            status: resp.status,
            wall_s: wall.as_secs_f64(),
            cached,
        });
        resp
    }

    fn dispatch(&self, req: &Request) -> (Response, bool) {
        match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/healthz") => (self.healthz(), false),
            ("GET", "/statz") => (self.statz(), false),
            ("POST", "/plan") => self.with_body(req, Self::plan),
            ("POST", "/frontier") => self.with_body(req, Self::frontier),
            ("POST", "/whatif") => self.with_body(req, Self::whatif),
            ("POST", "/reload") => (self.reload_models(), false),
            (_, "/healthz" | "/statz" | "/plan" | "/frontier" | "/whatif" | "/reload") => {
                (Response::error(405, "method not allowed"), false)
            }
            _ => (Response::error(404, "no such endpoint"), false),
        }
    }

    fn with_body(
        &self,
        req: &Request,
        f: fn(&Self, &Value) -> (Response, bool),
    ) -> (Response, bool) {
        let text = match std::str::from_utf8(&req.body) {
            Ok(t) => t.trim(),
            Err(_) => return (Response::error(400, "body is not UTF-8"), false),
        };
        let value = if text.is_empty() {
            Value::Object(Vec::new())
        } else {
            match json::parse(text) {
                Ok(v) => v,
                Err(e) => return (Response::error(400, &format!("bad JSON: {e}")), false),
            }
        };
        f(self, &value)
    }

    // ---- endpoints ----

    fn healthz(&self) -> Response {
        let store = self.store();
        let mut o = Object::new();
        o.bool("ok", true);
        o.u64("workloads", store.len() as u64);
        o.f64("uptime_s", self.metrics.uptime_s());
        Response::json(200, o.finish())
    }

    fn statz(&self) -> Response {
        let store = self.store();
        let cache = self.cache.stats();
        let lat = hist::summarize(&self.metrics.hists);
        let mut o = Object::new();
        o.str("schema", "hecmix-statz-v1");
        o.f64("uptime_s", self.metrics.uptime_s());
        o.u64("served", self.metrics.served.load(Ordering::Relaxed));
        o.u64("rejected", self.metrics.rejected.load(Ordering::Relaxed));
        o.u64(
            "queue_depth",
            self.metrics.queue_depth.load(Ordering::Relaxed) as u64,
        );
        let mut c = Object::new();
        c.u64("hits", cache.hits);
        c.u64("misses", cache.misses);
        c.u64("evictions", cache.evictions);
        c.u64("entries", cache.entries as u64);
        c.f64("hit_rate", cache.hit_rate());
        o.raw("cache", &c.finish());
        let ns_to_us = |v: u64| v as f64 / 1e3;
        let mut l = Object::new();
        l.u64("count", lat.count);
        l.f64("p50", ns_to_us(lat.p50));
        l.f64("p90", ns_to_us(lat.p90));
        l.f64("p99", ns_to_us(lat.p99));
        l.f64("p999", ns_to_us(lat.p999));
        l.f64("max", ns_to_us(lat.max));
        l.f64("mean", lat.mean / 1e3);
        o.raw("latency_us", &l.finish());
        o.str_array("workloads", &store.names());
        o.str_array("model_hashes", &store.hashes());
        Response::json(200, o.finish())
    }

    fn plan(&self, v: &Value) -> (Response, bool) {
        let store = self.store();
        let (entry, name, arm, amd, units) = match parse_common(&store, v) {
            Ok(p) => p,
            Err(resp) => return (resp, false),
        };
        let Some(deadline_ms) = v.get("deadline_ms").and_then(Value::as_f64) else {
            return (Response::error(400, "missing deadline_ms"), false);
        };
        if deadline_ms <= 0.0 || !deadline_ms.is_finite() {
            return (
                Response::error(422, "deadline_ms must be finite and positive"),
                false,
            );
        }

        let t0 = Instant::now();
        let (computed, cached) = match self.frontier_for(entry, arm, amd, units) {
            Ok(x) => x,
            Err(resp) => return (resp, false),
        };
        // Planning compute only: response serialization costs the same on
        // hits and misses, so including it would mask the cache win.
        let compute_us = t0.elapsed().as_micros() as u64;
        let CachedCompute::Frontier(frontier) = &*computed else {
            return (Response::error(500, "cache type confusion"), false);
        };
        let platforms = platform_pair(entry);

        let mut o = Object::new();
        o.str("workload", name);
        o.u64("arm", u64::from(arm));
        o.u64("amd", u64::from(amd));
        o.f64("units", units);
        o.f64("deadline_ms", deadline_ms);
        match frontier.min_energy_for_deadline(deadline_ms / 1e3) {
            Some(point) => {
                o.bool("feasible", true);
                o.str("config", &point.config.label(&platforms));
                o.f64("time_ms", point.time_s * 1e3);
                o.f64("energy_j", point.energy_j);
                if let Ok(split) = mix_and_match(&point.config, &entry.models, units) {
                    // `MatchedSplit::shares` are absolute work units summing
                    // to `units`; the wire format reports fractions.
                    let mut s = Object::new();
                    s.f64("low", split.shares.first().copied().unwrap_or(0.0) / units);
                    s.f64("high", split.shares.get(1).copied().unwrap_or(0.0) / units);
                    o.raw("shares", &s.finish());
                }
            }
            None => {
                o.bool("feasible", false);
                if let Some(t) = frontier.min_time_s() {
                    o.f64("fastest_ms", t * 1e3);
                }
            }
        }
        o.bool("cached", cached);
        o.u64("compute_us", compute_us);
        (Response::json(200, o.finish()), cached)
    }

    fn frontier(&self, v: &Value) -> (Response, bool) {
        let store = self.store();
        let (entry, name, arm, amd, units) = match parse_common(&store, v) {
            Ok(p) => p,
            Err(resp) => return (resp, false),
        };
        let resilient_k = match v.get("resilient_k") {
            None => None,
            Some(k) => match k.as_u64() {
                Some(k) if k >= 1 => Some(k as u32),
                _ => {
                    return (
                        Response::error(422, "resilient_k must be an integer >= 1"),
                        false,
                    )
                }
            },
        };

        let t0 = Instant::now();
        let result = match resilient_k {
            None => self.frontier_for(entry, arm, amd, units),
            Some(k) => self.resilient_frontier_for(entry, arm, amd, units, k),
        };
        let (computed, cached) = match result {
            Ok(x) => x,
            Err(resp) => return (resp, false),
        };
        let compute_us = t0.elapsed().as_micros() as u64;
        let CachedCompute::Frontier(frontier) = &*computed else {
            return (Response::error(500, "cache type confusion"), false);
        };
        let platforms = platform_pair(entry);

        let mut o = Object::new();
        o.str("workload", name);
        o.u64("arm", u64::from(arm));
        o.u64("amd", u64::from(amd));
        o.f64("units", units);
        if let Some(k) = resilient_k {
            o.u64("resilient_k", u64::from(k));
        }
        o.u64("count", frontier.len() as u64);
        let mut points = String::from("[");
        for (i, p) in frontier.points.iter().enumerate() {
            if i > 0 {
                points.push(',');
            }
            let mut po = Object::new();
            po.f64("time_ms", p.time_s * 1e3);
            po.f64("energy_j", p.energy_j);
            po.str("config", &p.config.label(&platforms));
            points.push_str(&po.finish());
        }
        points.push(']');
        o.raw("points", &points);
        o.bool("cached", cached);
        o.u64("compute_us", compute_us);
        (Response::json(200, o.finish()), cached)
    }

    fn whatif(&self, v: &Value) -> (Response, bool) {
        let store = self.store();
        let Some(name) = v.get("workload").and_then(Value::as_str) else {
            return (Response::error(400, "missing workload"), false);
        };
        let Some(entry) = store.get(name) else {
            return (
                Response::error(404, &format!("unknown workload `{name}`")),
                false,
            );
        };
        let Some(budget_w) = v.get("budget_w").and_then(Value::as_f64) else {
            return (Response::error(400, "missing budget_w"), false);
        };
        let units = match optional_f64(v, "units", entry.default_units) {
            Ok(u) => u,
            Err(resp) => return (resp, false),
        };
        let step_high = v
            .get("step_high")
            .and_then(Value::as_u64)
            .unwrap_or(2)
            .clamp(1, 64) as u32;
        let deadline_ms = v.get("deadline_ms").and_then(Value::as_f64);

        let t0 = Instant::now();
        let (computed, cached) = match self.whatif_for(entry, budget_w, units, step_high) {
            Ok(x) => x,
            Err(resp) => return (resp, false),
        };
        let compute_us = t0.elapsed().as_micros() as u64;
        let CachedCompute::Whatif(result) = &*computed else {
            return (Response::error(500, "cache type confusion"), false);
        };

        let mut o = Object::new();
        o.str("workload", name);
        o.f64("budget_w", budget_w);
        o.f64("units", units);
        o.u64("step_high", u64::from(step_high));
        let mut best: Option<(usize, f64)> = None;
        let mut rungs = String::from("[");
        for (i, rung) in result.rungs.iter().enumerate() {
            if i > 0 {
                rungs.push(',');
            }
            let mut ro = Object::new();
            ro.str("mix", &rung.label);
            ro.u64("arm", u64::from(rung.low_nodes));
            ro.u64("amd", u64::from(rung.high_nodes));
            ro.f64("peak_w", rung.peak_w);
            if let Some(t) = rung.frontier.min_time_s() {
                ro.f64("min_time_ms", t * 1e3);
            }
            if let Some(e) = rung.frontier.min_energy_j() {
                ro.f64("min_energy_j", e);
            }
            if let Some(d) = deadline_ms {
                match rung.frontier.min_energy_for_deadline(d / 1e3) {
                    Some(p) => {
                        ro.f64("deadline_energy_j", p.energy_j);
                        if best.is_none_or(|(_, e)| p.energy_j < e) {
                            best = Some((i, p.energy_j));
                        }
                    }
                    None => ro.bool("deadline_feasible", false),
                }
            }
            rungs.push_str(&ro.finish());
        }
        rungs.push(']');
        o.raw("rungs", &rungs);
        if let Some(d) = deadline_ms {
            o.f64("deadline_ms", d);
            if let Some((i, e)) = best {
                o.str("best_mix", &result.rungs[i].label);
                o.f64("best_energy_j", e);
            }
        }
        o.bool("cached", cached);
        o.u64("compute_us", compute_us);
        (Response::json(200, o.finish()), cached)
    }

    fn reload_models(&self) -> Response {
        let reload = self
            .reload
            .read()
            .expect("reload slot poisoned")
            .as_ref()
            .map(Arc::clone);
        let Some(reload) = reload else {
            return Response::error(400, "no reload source configured");
        };
        match reload() {
            Ok(new_store) => {
                let mut o = Object::new();
                o.bool("reloaded", true);
                o.u64("workloads", new_store.len() as u64);
                o.str_array("model_hashes", &new_store.hashes());
                *self.store.write().expect("model store poisoned") = Arc::new(new_store);
                self.cache.invalidate_all();
                Response::json(200, o.finish())
            }
            Err(e) => Response::error(500, &format!("reload failed: {e}")),
        }
    }

    // ---- memoized computations ----

    fn frontier_for(
        &self,
        entry: &ModelEntry,
        arm: u32,
        amd: u32,
        units: f64,
    ) -> Result<(Arc<CachedCompute>, bool), Response> {
        let key = cache_key(&[
            entry.hash,
            tag::FRONTIER,
            u64::from(arm),
            u64::from(amd),
            units.to_bits(),
        ]);
        if let Some(hit) = self.cache.get(key) {
            return Ok((hit, true));
        }
        let [low, high] = platform_pair(entry);
        let space = ConfigSpace::two_type(low, arm, high, amd);
        let table = RateTable::build_pruned(&space, &entry.models)
            .map_err(|e| Response::error(422, &format!("model rejected: {e}")))?;
        let frontier = table
            .frontier(units)
            .map_err(|e| Response::error(422, &format!("sweep failed: {e}")))?;
        let value = Arc::new(CachedCompute::Frontier(frontier));
        self.cache.insert(key, Arc::clone(&value));
        Ok((value, false))
    }

    fn resilient_frontier_for(
        &self,
        entry: &ModelEntry,
        arm: u32,
        amd: u32,
        units: f64,
        k: u32,
    ) -> Result<(Arc<CachedCompute>, bool), Response> {
        let key = cache_key(&[
            entry.hash,
            tag::RESILIENT,
            u64::from(arm),
            u64::from(amd),
            units.to_bits(),
            u64::from(k),
        ]);
        if let Some(hit) = self.cache.get(key) {
            return Ok((hit, true));
        }
        let [low, high] = platform_pair(entry);
        let space = ConfigSpace::two_type(low, arm, high, amd);
        let table = ResilientTable::build(&space, &entry.models)
            .map_err(|e| Response::error(422, &format!("model rejected: {e}")))?;
        let frontier = table
            .frontier(units, k)
            .map_err(|e| Response::error(422, &format!("resilient sweep failed: {e}")))?;
        let value = Arc::new(CachedCompute::Frontier(frontier));
        self.cache.insert(key, Arc::clone(&value));
        Ok((value, false))
    }

    fn whatif_for(
        &self,
        entry: &ModelEntry,
        budget_w: f64,
        units: f64,
        step_high: u32,
    ) -> Result<(Arc<CachedCompute>, bool), Response> {
        let key = cache_key(&[
            entry.hash,
            tag::WHATIF,
            budget_w.to_bits(),
            units.to_bits(),
            u64::from(step_high),
        ]);
        if let Some(hit) = self.cache.get(key) {
            return Ok((hit, true));
        }
        let [low, high] = platform_pair(entry);
        let ladder = PowerBudget::new(budget_w)
            .substitution_ladder(&low, &high, step_high)
            .map_err(|e| Response::error(422, &format!("bad budget: {e}")))?;
        let mut rungs = Vec::with_capacity(ladder.len());
        for mix in ladder {
            let (frontier, _prune) = mix
                .frontier(&low, &high, &entry.models, units)
                .map_err(|e| Response::error(422, &format!("rung sweep failed: {e}")))?;
            rungs.push(WhatifRung {
                label: mix.label(&low, &high),
                low_nodes: mix.low_nodes,
                high_nodes: mix.high_nodes,
                peak_w: mix.peak_power_w(&low, &high),
                frontier,
            });
        }
        let value = Arc::new(CachedCompute::Whatif(WhatifResult { rungs }));
        self.cache.insert(key, Arc::clone(&value));
        Ok((value, false))
    }
}

/// The `[low, high]` platform pair of a bundle (cloned; labels and spaces
/// need owned platforms).
fn platform_pair(entry: &ModelEntry) -> [Platform; 2] {
    [
        entry.models[0].platform.clone(),
        entry.models[1].platform.clone(),
    ]
}

/// FNV-1a over the little-endian concatenation of `parts`.
#[must_use]
pub fn cache_key(parts: &[u64]) -> u64 {
    let mut bytes = Vec::with_capacity(parts.len() * 8);
    for p in parts {
        bytes.extend_from_slice(&p.to_le_bytes());
    }
    fnv1a(&bytes)
}

type Common<'a> = (&'a ModelEntry, &'a str, u32, u32, f64);

/// Parse the fields `/plan` and `/frontier` share: workload (required),
/// arm/amd node caps (default 10), units (default: the workload's
/// analysis size).
fn parse_common<'a>(store: &'a ModelStore, v: &'a Value) -> Result<Common<'a>, Response> {
    let Some(name) = v.get("workload").and_then(Value::as_str) else {
        return Err(Response::error(400, "missing workload"));
    };
    let Some(entry) = store.get(name) else {
        return Err(Response::error(404, &format!("unknown workload `{name}`")));
    };
    let node_cap = |field: &str| -> Result<u32, Response> {
        match v.get(field) {
            None => Ok(10),
            Some(x) => match x.as_u64() {
                Some(n) if n <= 512 => Ok(n as u32),
                _ => Err(Response::error(
                    422,
                    &format!("{field} must be an integer in 0..=512"),
                )),
            },
        }
    };
    let arm = node_cap("arm")?;
    let amd = node_cap("amd")?;
    if arm == 0 && amd == 0 {
        return Err(Response::error(422, "arm and amd cannot both be 0"));
    }
    let units = optional_f64(v, "units", entry.default_units)?;
    Ok((entry, name, arm, amd, units))
}

fn optional_f64(v: &Value, field: &str, default: f64) -> Result<f64, Response> {
    match v.get(field) {
        None => Ok(default),
        Some(x) => match x.as_f64() {
            Some(u) if u > 0.0 && u.is_finite() => Ok(u),
            _ => Err(Response::error(
                422,
                &format!("{field} must be finite and positive"),
            )),
        },
    }
}
