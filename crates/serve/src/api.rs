//! Request routing, plan computation, and response formatting.
//!
//! Eight endpoints over the model machinery in `hecmix-core`:
//!
//! | Endpoint         | Answers                                            |
//! |------------------|----------------------------------------------------|
//! | `POST /plan`     | cheapest feasible config for a workload + deadline (`deadline_ms`: mean-time frontier lookup; `p99_s` + `lambda`: DES-scored percentile deadline) |
//! | `POST /frontier` | the energy–deadline Pareto frontier (optionally the `resilient_k` degraded frontier) |
//! | `POST /whatif`   | the power-budget substitution ladder               |
//! | `POST /submit`   | place one job on the live scheduler's shared pool (α-score, bounded admission) |
//! | `POST /reload`   | swap the model inventory, **re-warm** the hot set  |
//! | `GET /healthz`   | liveness                                           |
//! | `GET /statz`     | uptime, connections, queue, cache, latency         |
//! | `GET /jobz`      | live-scheduler counters + recent placements        |
//!
//! The event-loop architecture splits a request's life into three phases
//! that run on different threads, so this module is organized around three
//! verbs instead of one blocking `handle`:
//!
//! * [`AppState::route`] — parse and classify, on an I/O thread. Cache
//!   hits, health/stat reads, and errors are answered immediately
//!   ([`Routed::Ready`]); a cache miss yields a [`PendingCompute`] that
//!   the caller hands to the single-flight registry and compute pool.
//! * [`AppState::compute`] — the expensive sweep, on a compute thread.
//!   The result (a [`CachedPlan`]) is inserted into the sharded LRU so
//!   every later identical question is a `route`-time hit.
//! * [`format_response`] — turn a computed plan plus the request's
//!   [`RespCtx`] into wire JSON. Cheap, runs wherever the plan and the
//!   waiter meet.
//!
//! A [`CachedPlan`] carries the [`ComputeSpec`] that produced it, which is
//! what makes **warm reload** possible: `POST /reload` snapshots the hot
//! set, recomputes every spec against the freshly loaded store, and only
//! then swaps — so a reload does not open a cold-start latency cliff.
//!
//! Responses carry three fields the load harness relies on: `"cached"`,
//! `"coalesced"` (answered from another connection's in-flight compute),
//! and `"compute_us"` (server-side compute time, free of network jitter —
//! the honest number for the cold-vs-warm speedup claim).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

use hecmix_core::budget::PowerBudget;
use hecmix_core::config::ConfigSpace;
use hecmix_core::mix_match::mix_and_match;
use hecmix_core::pareto::ParetoFrontier;
use hecmix_core::persist::fnv1a;
use hecmix_core::rate_table::RateTable;
use hecmix_core::resilience::ResilientTable;
use hecmix_core::types::Platform;
use hecmix_obs::json::{self, Object, Value};
use hecmix_obs::{emit, Event};
use hecmix_queueing::dispatch::{
    best_choice_tail, ConfigChoice, TailChoiceOutcome, TailDesConfig, TailTarget,
};

use crate::cache::ShardedLru;
use crate::fleet::Fleet;
use crate::hist::{self, Histogram};
use crate::http::{Request, Response};
use crate::store::{ModelEntry, ModelStore};
use crate::submit::OnlineSched;

/// Query-shape tags mixed into cache keys so different derivations from
/// the same model bundle can never alias.
mod tag {
    /// Pareto frontier of a two-type space.
    pub const FRONTIER: u64 = 1;
    /// Resilient (k-degraded) frontier.
    pub const RESILIENT: u64 = 3;
    /// Power-budget substitution ladder.
    pub const WHATIF: u64 = 4;
    /// Percentile-deadline (p99) plan, scored by discrete-event simulation.
    pub const TAILPLAN: u64 = 5;
}

/// One memoized computation.
pub enum CachedCompute {
    /// An energy–deadline frontier (plain or k-degraded).
    Frontier(ParetoFrontier),
    /// A full substitution ladder with per-rung frontiers (kept so any
    /// deadline can be evaluated against a cached ladder).
    Whatif(WhatifResult),
    /// A percentile-deadline plan: the DES-confirmed best choice over the
    /// frontier-derived serving menu.
    TailPlan(TailPlanResult),
}

/// Cached result of a percentile-deadline `/plan` computation. The DES is
/// seeded deterministically from the spec, so two identical requests
/// produce byte-identical outcomes — the property memoization and
/// single-flight coalescing rely on.
pub struct TailPlanResult {
    /// The planner outcome; `None` when every menu entry saturates at the
    /// requested arrival rate.
    pub outcome: Option<TailChoiceOutcome>,
    /// Human-readable labels of the frontier-derived menu, indexed by
    /// [`TailChoiceOutcome::index`].
    pub labels: Vec<String>,
}

/// Cached result of a `/whatif` ladder computation.
pub struct WhatifResult {
    /// Ladder rungs, all-high first, all-low last.
    pub rungs: Vec<WhatifRung>,
}

/// One substitution-ladder rung and its frontier.
pub struct WhatifRung {
    /// Human-readable mix label (`ARM 16:AMD 14`).
    pub label: String,
    /// Low-power node count.
    pub low_nodes: u32,
    /// High-performance node count.
    pub high_nodes: u32,
    /// Peak power draw of the mix, watts.
    pub peak_w: f64,
    /// The rung's energy–deadline frontier.
    pub frontier: ParetoFrontier,
}

/// A cached plan: the computed value plus the spec that produced it (for
/// warm reload) and how long the compute took.
pub struct CachedPlan {
    /// The memoized computation.
    pub compute: CachedCompute,
    /// The inputs, kept so a reload can recompute this entry against a
    /// fresh model store.
    pub spec: ComputeSpec,
    /// Server-side compute time of the original (cold) computation, µs.
    pub compute_us: u64,
}

/// The normalized inputs of one cacheable computation. Two requests with
/// the same spec against the same model bundle produce byte-identical
/// plans, which is what makes both memoization and single-flight
/// coalescing sound.
#[derive(Debug, Clone, PartialEq)]
pub enum ComputeSpec {
    /// Plain energy–deadline frontier (`/plan` and `/frontier` share it).
    Frontier {
        /// Workload name.
        workload: String,
        /// Low-power node cap.
        arm: u32,
        /// High-performance node cap.
        amd: u32,
        /// Work units.
        units: f64,
    },
    /// k-degraded frontier.
    ResilientFrontier {
        /// Workload name.
        workload: String,
        /// Low-power node cap.
        arm: u32,
        /// High-performance node cap.
        amd: u32,
        /// Work units.
        units: f64,
        /// Survivable node failures.
        k: u32,
    },
    /// Power-budget substitution ladder.
    Whatif {
        /// Workload name.
        workload: String,
        /// Power budget, watts.
        budget_w: f64,
        /// Work units.
        units: f64,
        /// High-performance nodes traded per rung.
        step_high: u32,
    },
    /// Percentile-deadline plan over the frontier-derived serving menu
    /// (`/plan` with a `p99_s` field instead of `deadline_ms`).
    TailPlan {
        /// Workload name.
        workload: String,
        /// Low-power node cap.
        arm: u32,
        /// High-performance node cap.
        amd: u32,
        /// Work units.
        units: f64,
        /// Open-loop arrival rate, jobs/second.
        lambda: f64,
        /// p99 response-time deadline, seconds.
        p99_s: f64,
        /// Energy-accounting window, seconds.
        window_s: f64,
    },
}

impl ComputeSpec {
    /// The workload this spec computes over.
    #[must_use]
    pub fn workload(&self) -> &str {
        match self {
            Self::Frontier { workload, .. }
            | Self::ResilientFrontier { workload, .. }
            | Self::Whatif { workload, .. }
            | Self::TailPlan { workload, .. } => workload,
        }
    }

    /// Cache key for this spec against the model bundle with `model_hash`.
    #[must_use]
    pub fn key(&self, model_hash: u64) -> u64 {
        match self {
            Self::Frontier {
                arm, amd, units, ..
            } => cache_key(&[
                model_hash,
                tag::FRONTIER,
                u64::from(*arm),
                u64::from(*amd),
                units.to_bits(),
            ]),
            Self::ResilientFrontier {
                arm, amd, units, k, ..
            } => cache_key(&[
                model_hash,
                tag::RESILIENT,
                u64::from(*arm),
                u64::from(*amd),
                units.to_bits(),
                u64::from(*k),
            ]),
            Self::Whatif {
                budget_w,
                units,
                step_high,
                ..
            } => cache_key(&[
                model_hash,
                tag::WHATIF,
                budget_w.to_bits(),
                units.to_bits(),
                u64::from(*step_high),
            ]),
            Self::TailPlan {
                arm,
                amd,
                units,
                lambda,
                p99_s,
                window_s,
                ..
            } => cache_key(&[
                model_hash,
                tag::TAILPLAN,
                u64::from(*arm),
                u64::from(*amd),
                units.to_bits(),
                lambda.to_bits(),
                p99_s.to_bits(),
                window_s.to_bits(),
            ]),
        }
    }
}

/// Per-request formatting context: everything [`format_response`] needs
/// beyond the computed plan itself (deadlines are evaluated at format
/// time so any deadline can be answered from one cached frontier).
#[derive(Debug, Clone)]
pub enum RespCtx {
    /// `POST /plan`.
    Plan {
        /// Workload name.
        workload: String,
        /// Low-power node cap.
        arm: u32,
        /// High-performance node cap.
        amd: u32,
        /// Work units.
        units: f64,
        /// Deadline to plan for, milliseconds.
        deadline_ms: f64,
    },
    /// `POST /plan` with a percentile deadline (`p99_s`): the menu index
    /// and tail numbers live in the cached [`TailPlanResult`], so the
    /// context only needs the echo fields.
    TailPlan {
        /// Workload name.
        workload: String,
        /// Low-power node cap.
        arm: u32,
        /// High-performance node cap.
        amd: u32,
        /// Work units.
        units: f64,
        /// Open-loop arrival rate, jobs/second.
        lambda: f64,
        /// p99 response-time deadline, seconds.
        p99_s: f64,
        /// Energy-accounting window, seconds.
        window_s: f64,
    },
    /// `POST /frontier`.
    Frontier {
        /// Workload name.
        workload: String,
        /// Low-power node cap.
        arm: u32,
        /// High-performance node cap.
        amd: u32,
        /// Work units.
        units: f64,
        /// Degraded-frontier k, when requested.
        resilient_k: Option<u32>,
    },
    /// `POST /whatif`.
    Whatif {
        /// Workload name.
        workload: String,
        /// Power budget, watts.
        budget_w: f64,
        /// Work units.
        units: f64,
        /// High-performance nodes traded per rung.
        step_high: u32,
        /// Optional deadline to rank rungs by.
        deadline_ms: Option<f64>,
    },
    /// `POST /reload` (answered by [`AppState::do_reload`], never by
    /// [`format_response`]).
    Reload,
    /// A gateway-forwarded request: the replica formats the response, the
    /// gateway only needs the path for telemetry.
    Proxy(&'static str),
}

impl RespCtx {
    /// The endpoint path this context belongs to (for telemetry and
    /// per-endpoint latency accounting).
    #[must_use]
    pub fn path(&self) -> &'static str {
        match self {
            Self::Plan { .. } | Self::TailPlan { .. } => "/plan",
            Self::Frontier { .. } => "/frontier",
            Self::Whatif { .. } => "/whatif",
            Self::Reload => "/reload",
            Self::Proxy(path) => path,
        }
    }
}

/// What [`AppState::route`] decided about a request.
pub enum Routed {
    /// Answer now: health/stat reads, parse errors, and cache hits.
    Ready {
        /// The finished response.
        resp: Response,
        /// Whether it came from the plan cache.
        cached: bool,
    },
    /// A cache miss that needs the compute pool.
    Compute(PendingCompute),
    /// `POST /reload` — runs on the compute pool so I/O threads never
    /// block behind a model rebuild + cache warm.
    Reload,
    /// Gateway mode: a validated request bound for a replica via the
    /// fleet's forward path (retries/hedging block, so it runs on the
    /// compute pool, never on an I/O thread).
    Forward(PendingForward),
}

impl Routed {
    fn ready(resp: Response) -> Self {
        Self::Ready {
            resp,
            cached: false,
        }
    }
}

/// A validated request the gateway will forward to a replica. The body is
/// re-sent verbatim; `key` is the plan-cache key (identical to what the
/// replica will derive, because gateway and replicas share the same model
/// bundles), which is what the consistent-hash ring routes on.
pub struct PendingForward {
    /// The routing key: the plan-cache key of this request.
    pub key: u64,
    /// Endpoint path.
    pub path: &'static str,
    /// The original JSON body, forwarded verbatim.
    pub body: String,
}

/// A parsed cache miss, ready to be coalesced and computed.
pub struct PendingCompute {
    /// Cache key the waiters coalesce under.
    pub key: u64,
    /// What to compute.
    pub spec: ComputeSpec,
    /// The model-store snapshot the request was parsed against.
    pub store: Arc<ModelStore>,
    /// How to format the answer for this particular request.
    pub ctx: RespCtx,
}

/// Source for `POST /reload`: rebuilds a fresh [`ModelStore`].
pub type ReloadFn = dyn Fn() -> Result<ModelStore, String> + Send + Sync;

/// Per-daemon counters and per-I/O-thread latency histograms.
pub struct Metrics {
    /// One histogram per I/O thread (indexed by loop id; lock-free writes).
    pub hists: Vec<Histogram>,
    /// Requests answered (any status except admission rejections).
    pub served: AtomicU64,
    /// Connections rejected by admission control, plus computes shed by
    /// the queue deadline or drain.
    pub rejected: AtomicU64,
    /// Plan computations actually executed on the compute pool.
    pub computes: AtomicU64,
    /// Requests answered from another connection's in-flight compute.
    pub coalesced: AtomicU64,
    /// Cache entries re-computed by warm reloads.
    pub warmed: AtomicU64,
    /// Connections reaped with `408` for holding a partial request head
    /// past the deadline (slowloris guard).
    pub timeouts: AtomicU64,
    /// Current compute-queue depth.
    pub queue_depth: AtomicUsize,
    /// Currently open client connections.
    pub connections: AtomicUsize,
    started: Instant,
}

impl Metrics {
    fn new(io_threads: usize) -> Self {
        Self {
            hists: (0..io_threads.max(1)).map(|_| Histogram::new()).collect(),
            served: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            computes: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            warmed: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            queue_depth: AtomicUsize::new(0),
            connections: AtomicUsize::new(0),
            started: Instant::now(),
        }
    }

    /// Seconds since the daemon started.
    #[must_use]
    pub fn uptime_s(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }
}

/// Everything the I/O loops and compute pool share to answer requests.
pub struct AppState {
    store: RwLock<Arc<ModelStore>>,
    cache: ShardedLru<CachedPlan>,
    reload: RwLock<Option<Arc<ReloadFn>>>,
    compute_delay_us: AtomicU64,
    /// `Some` turns this daemon into a gateway: plan requests are parsed
    /// and key-derived locally (same models as the replicas, so the keys
    /// match), then forwarded through the fleet instead of computed.
    fleet: Option<Arc<Fleet>>,
    /// The live job scheduler behind `POST /submit` / `GET /jobz`;
    /// without one, both endpoints answer 503.
    sched: RwLock<Option<Arc<OnlineSched>>>,
    /// Counters and histograms, updated by I/O loops, the compute pool,
    /// and the accept thread.
    pub metrics: Metrics,
}

impl AppState {
    /// State over `store`, with `io_threads` latency histograms and a plan
    /// cache of `cache_capacity` entries.
    #[must_use]
    pub fn new(store: ModelStore, io_threads: usize, cache_capacity: usize) -> Self {
        Self {
            store: RwLock::new(Arc::new(store)),
            cache: ShardedLru::new(cache_capacity.max(1)),
            reload: RwLock::new(None),
            compute_delay_us: AtomicU64::new(0),
            fleet: None,
            sched: RwLock::new(None),
            metrics: Metrics::new(io_threads),
        }
    }

    /// Gateway state: like [`AppState::new`], but plan traffic is routed
    /// through `fleet` instead of the local compute path. The `store`
    /// must be built from the same model bundles the replicas serve —
    /// cache keys are content-hashed, so matching bundles make the
    /// gateway's routing key identical to the replicas' cache key.
    #[must_use]
    pub fn new_gateway(store: ModelStore, io_threads: usize, fleet: Arc<Fleet>) -> Self {
        let mut state = Self::new(store, io_threads, 1);
        state.fleet = Some(fleet);
        state
    }

    /// The fleet, when this daemon is a gateway.
    #[must_use]
    pub fn fleet(&self) -> Option<&Arc<Fleet>> {
        self.fleet.as_ref()
    }

    /// Forward one validated request through the fleet (gateway mode
    /// only; blocks through retries/hedges, so the compute pool runs it).
    #[must_use]
    pub fn forward(&self, key: u64, path: &'static str, body: &str) -> Response {
        match &self.fleet {
            Some(fleet) => fleet.forward(key, path, body),
            None => Response::error(500, "not a gateway"),
        }
    }

    /// Configure what `POST /reload` does (rebuild from a directory, a
    /// lab, …). Without one, `/reload` answers 400.
    pub fn set_reload(&self, f: Arc<ReloadFn>) {
        *self.reload.write().expect("reload slot poisoned") = Some(f);
    }

    /// Enable the live job scheduler behind `POST /submit` / `GET /jobz`.
    /// A `/reload` does not rebuild it: the pool is provisioned hardware,
    /// not a model cache.
    pub fn set_sched(&self, sched: Arc<OnlineSched>) {
        *self.sched.write().expect("sched slot poisoned") = Some(sched);
    }

    /// The live scheduler, when configured.
    #[must_use]
    pub fn sched(&self) -> Option<Arc<OnlineSched>> {
        self.sched.read().expect("sched slot poisoned").clone()
    }

    /// Testing hook: make every pool compute take at least `delay` of wall
    /// clock. This is how the coalescing and drain tests hold a compute
    /// open long enough to pile concurrent misses onto one flight; it has
    /// no effect on cache hits or warm-reload recomputes.
    pub fn set_compute_delay(&self, delay: Duration) {
        self.compute_delay_us
            .store(delay.as_micros() as u64, Ordering::Relaxed);
    }

    fn compute_delay(&self) -> Duration {
        Duration::from_micros(self.compute_delay_us.load(Ordering::Relaxed))
    }

    /// Snapshot of the current model inventory.
    #[must_use]
    pub fn store(&self) -> Arc<ModelStore> {
        Arc::clone(&self.store.read().expect("model store poisoned"))
    }

    /// Classify one request: answer immediately (reads, errors, cache
    /// hits) or hand back the compute it needs. Runs on an I/O thread —
    /// everything here is bounded-time.
    #[must_use]
    pub fn route(&self, req: &Request) -> Routed {
        match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/healthz") => Routed::ready(self.healthz()),
            ("GET", "/statz") => Routed::ready(self.statz()),
            ("POST", "/plan" | "/frontier" | "/whatif") => {
                if self.fleet.is_some() {
                    self.route_forward(req)
                } else {
                    self.route_compute(req)
                }
            }
            ("POST", "/reload") => Routed::Reload,
            ("POST", "/submit") => Routed::ready(self.submit(req)),
            ("GET", "/jobz") => match self.sched() {
                Some(sched) => Routed::ready(sched.jobz()),
                None => Routed::ready(Response::error(503, "scheduler not configured")),
            },
            (
                _,
                "/healthz" | "/statz" | "/plan" | "/frontier" | "/whatif" | "/reload" | "/submit"
                | "/jobz",
            ) => Routed::ready(Response::error(405, "method not allowed")),
            _ => Routed::ready(Response::error(404, "no such endpoint")),
        }
    }

    fn route_compute(&self, req: &Request) -> Routed {
        let t0 = Instant::now();
        let v = match parse_body(&req.body) {
            Ok(v) => v,
            Err(resp) => return Routed::ready(resp),
        };
        let store = self.store();
        let parsed = match req.path.as_str() {
            "/plan" => parse_plan(&store, &v),
            "/frontier" => parse_frontier(&store, &v),
            _ => parse_whatif(&store, &v),
        };
        let (spec, ctx) = match parsed {
            Ok(p) => p,
            Err(resp) => return Routed::ready(resp),
        };
        let hash = store
            .get(spec.workload())
            .map(|e| e.hash)
            .unwrap_or_default();
        let key = spec.key(hash);
        if let Some(hit) = self.cache.get(key) {
            // Elapsed covers parse + lookup only: response serialization
            // costs the same on hits and misses, so including it would
            // mask the cache win.
            let lookup_us = t0.elapsed().as_micros() as u64;
            let resp = format_response(&ctx, &store, &hit, true, false, lookup_us);
            return Routed::Ready { resp, cached: true };
        }
        Routed::Compute(PendingCompute {
            key,
            spec,
            store,
            ctx,
        })
    }

    /// Gateway-mode routing: validate exactly like [`Self::route_compute`]
    /// (malformed requests die at the edge, never burn an upstream
    /// attempt), derive the plan-cache key, and hand back a forward. The
    /// gateway keeps no plan cache of its own — the replicas' sharded
    /// LRUs *are* the cache, partitioned by this key.
    fn route_forward(&self, req: &Request) -> Routed {
        let v = match parse_body(&req.body) {
            Ok(v) => v,
            Err(resp) => return Routed::ready(resp),
        };
        let store = self.store();
        let parsed = match req.path.as_str() {
            "/plan" => parse_plan(&store, &v),
            "/frontier" => parse_frontier(&store, &v),
            _ => parse_whatif(&store, &v),
        };
        let (spec, ctx) = match parsed {
            Ok(p) => p,
            Err(resp) => return Routed::ready(resp),
        };
        let hash = store
            .get(spec.workload())
            .map(|e| e.hash)
            .unwrap_or_default();
        Routed::Forward(PendingForward {
            key: spec.key(hash),
            path: ctx.path(),
            body: String::from_utf8_lossy(&req.body).into_owned(),
        })
    }

    /// Execute one plan computation and memoize it. Runs on a compute
    /// thread; this is the only place the sweep engine is invoked for
    /// live traffic.
    ///
    /// # Errors
    /// The typed HTTP error response (422 model/sweep rejections, 404 if
    /// the workload vanished in a reload race) for delivery to every
    /// coalesced waiter.
    pub fn compute(
        &self,
        spec: &ComputeSpec,
        store: &ModelStore,
    ) -> Result<Arc<CachedPlan>, Response> {
        let delay = self.compute_delay();
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
        let (key, plan) = compute_plan(spec, store)?;
        self.cache.insert(key, Arc::clone(&plan));
        self.metrics.computes.fetch_add(1, Ordering::Relaxed);
        Ok(plan)
    }

    /// Record a finished request: bump `served`, feed the I/O thread's
    /// histogram, emit [`Event::RequestDone`].
    pub fn record_done(
        &self,
        hist: usize,
        path: &str,
        resp: &Response,
        wall: Duration,
        cached: bool,
    ) {
        self.metrics.served.fetch_add(1, Ordering::Relaxed);
        if let Some(h) = self.metrics.hists.get(hist) {
            h.record(wall.as_nanos() as u64);
        }
        let status = resp.status;
        emit(|| Event::RequestDone {
            path: path.to_owned(),
            status,
            wall_s: wall.as_secs_f64(),
            cached,
        });
    }

    /// Rebuild the model store and **warm** the plan cache before swapping:
    /// every currently cached plan's spec is recomputed against the new
    /// store, so the first post-reload queries hit instead of paying a
    /// cold sweep. Runs on the compute pool.
    #[must_use]
    pub fn do_reload(&self) -> Response {
        let reload = self
            .reload
            .read()
            .expect("reload slot poisoned")
            .as_ref()
            .map(Arc::clone);
        let Some(reload) = reload else {
            return Response::error(400, "no reload source configured");
        };
        let new_store = match reload() {
            Ok(s) => Arc::new(s),
            Err(e) => return Response::error(500, &format!("reload failed: {e}")),
        };

        if let Some(fleet) = &self.fleet {
            // Gateway: swap the local store so routing keys track the new
            // model hashes, then broadcast the reload to every replica —
            // each replica does its own warm. No local cache to warm.
            *self.store.write().expect("model store poisoned") = new_store;
            self.cache.invalidate_all();
            return fleet.broadcast_reload();
        }

        // Recompute the hot set against the new store *before* swapping —
        // the artificial test delay is deliberately skipped so warming
        // reflects real compute cost only.
        let hot = self.cache.snapshot();
        emit(|| Event::CacheWarmStart { keys: hot.len() });
        let t0 = Instant::now();
        let mut warmed: Vec<(u64, Arc<CachedPlan>)> = Vec::with_capacity(hot.len());
        for plan in &hot {
            if let Ok((key, fresh)) = compute_plan(&plan.spec, &new_store) {
                warmed.push((key, fresh));
            }
        }
        let wall = t0.elapsed();

        *self.store.write().expect("model store poisoned") = Arc::clone(&new_store);
        self.cache.invalidate_all();
        for (key, fresh) in &warmed {
            self.cache.insert(*key, Arc::clone(fresh));
        }
        self.metrics
            .warmed
            .fetch_add(warmed.len() as u64, Ordering::Relaxed);
        emit(|| Event::CacheWarmDone {
            keys: hot.len(),
            warmed: warmed.len(),
            wall_s: wall.as_secs_f64(),
        });

        let mut o = Object::new();
        o.bool("reloaded", true);
        o.u64("workloads", new_store.len() as u64);
        o.str_array("model_hashes", &new_store.hashes());
        o.u64("hot_keys", hot.len() as u64);
        o.u64("warmed", warmed.len() as u64);
        o.f64("warm_ms", wall.as_secs_f64() * 1e3);
        Response::json(200, o.finish())
    }

    /// `POST /submit`: parse and validate the job, then let the live
    /// scheduler place it. Placement is `nodes × options` work, so it is
    /// answered inline like the read endpoints. `units` defaults to the
    /// workload's registry size; `deadline_s` is relative to now and
    /// optional (absent = no deadline).
    fn submit(&self, req: &Request) -> Response {
        let Some(sched) = self.sched() else {
            return Response::error(503, "scheduler not configured");
        };
        let v = match parse_body(&req.body) {
            Ok(v) => v,
            Err(resp) => return resp,
        };
        let Some(name) = v.get("workload").and_then(Value::as_str) else {
            return Response::error(400, "missing workload");
        };
        let store = self.store();
        let Some(entry) = store.get(name) else {
            return Response::error(404, &format!("unknown workload `{name}`"));
        };
        let units = match optional_f64(&v, "units", entry.default_units) {
            Ok(u) => u,
            Err(resp) => return resp,
        };
        let deadline_rel_s = match v.get("deadline_s") {
            None => None,
            Some(d) => match d.as_f64().filter(|x| *x > 0.0 && x.is_finite()) {
                Some(x) => Some(x),
                None => return Response::error(422, "deadline_s must be finite and positive"),
            },
        };
        sched.submit(name, units, deadline_rel_s)
    }

    // ---- read endpoints ----

    fn healthz(&self) -> Response {
        let store = self.store();
        let mut o = Object::new();
        o.bool("ok", true);
        o.u64("workloads", store.len() as u64);
        o.f64("uptime_s", self.metrics.uptime_s());
        if let Some(fleet) = &self.fleet {
            o.str("role", "gateway");
            o.u64("replicas", fleet.replica_count() as u64);
            o.u64("healthy_replicas", fleet.healthy_count() as u64);
        }
        Response::json(200, o.finish())
    }

    fn statz(&self) -> Response {
        let store = self.store();
        let cache = self.cache.stats();
        let lat = hist::summarize(&self.metrics.hists);
        let mut o = Object::new();
        o.str("schema", "hecmix-statz-v4");
        o.f64("uptime_s", self.metrics.uptime_s());
        o.u64("served", self.metrics.served.load(Ordering::Relaxed));
        o.u64("rejected", self.metrics.rejected.load(Ordering::Relaxed));
        o.u64(
            "timeouts_408",
            self.metrics.timeouts.load(Ordering::Relaxed),
        );
        o.u64("computes", self.metrics.computes.load(Ordering::Relaxed));
        o.u64("coalesced", self.metrics.coalesced.load(Ordering::Relaxed));
        o.u64("warmed", self.metrics.warmed.load(Ordering::Relaxed));
        o.u64(
            "connections",
            self.metrics.connections.load(Ordering::Relaxed) as u64,
        );
        o.u64(
            "queue_depth",
            self.metrics.queue_depth.load(Ordering::Relaxed) as u64,
        );
        let mut c = Object::new();
        c.u64("hits", cache.hits);
        c.u64("misses", cache.misses);
        c.u64("evictions", cache.evictions);
        c.u64("entries", cache.entries as u64);
        c.f64("hit_rate", cache.hit_rate());
        o.raw("cache", &c.finish());
        let ns_to_us = |v: u64| v as f64 / 1e3;
        let mut l = Object::new();
        l.u64("count", lat.count);
        l.f64("p50", ns_to_us(lat.p50));
        l.f64("p90", ns_to_us(lat.p90));
        l.f64("p95", ns_to_us(lat.p95));
        l.f64("p99", ns_to_us(lat.p99));
        l.f64("p999", ns_to_us(lat.p999));
        l.f64("max", ns_to_us(lat.max));
        l.f64("mean", lat.mean / 1e3);
        o.raw("latency_us", &l.finish());
        o.str_array("workloads", &store.names());
        o.str_array("model_hashes", &store.hashes());
        if let Some(fleet) = &self.fleet {
            o.raw("fleet", &fleet.statz_object());
        }
        // v4: live-scheduler counters, when `/submit` is enabled.
        if let Some(sched) = self.sched() {
            o.raw("sched", &sched.statz_object());
        }
        Response::json(200, o.finish())
    }
}

// ---- the compute itself ----

/// Compute the plan described by `spec` against `store`, from scratch.
///
/// Returns the cache key (derived from the store's current model hash) and
/// the finished plan. Shared by the live compute path and the warm-reload
/// path; does **not** touch the cache or any counters.
///
/// # Errors
/// The typed HTTP error response for a model/sweep rejection or a missing
/// workload.
pub fn compute_plan(
    spec: &ComputeSpec,
    store: &ModelStore,
) -> Result<(u64, Arc<CachedPlan>), Response> {
    let entry = store
        .get(spec.workload())
        .ok_or_else(|| Response::error(404, &format!("unknown workload `{}`", spec.workload())))?;
    let key = spec.key(entry.hash);
    let t0 = Instant::now();
    let compute = match *spec {
        ComputeSpec::Frontier {
            arm, amd, units, ..
        } => {
            let [low, high] = platform_pair(entry);
            let space = ConfigSpace::two_type(low, arm, high, amd);
            let table = RateTable::build_pruned(&space, &entry.models)
                .map_err(|e| Response::error(422, &format!("model rejected: {e}")))?;
            let frontier = table
                .frontier(units)
                .map_err(|e| Response::error(422, &format!("sweep failed: {e}")))?;
            CachedCompute::Frontier(frontier)
        }
        ComputeSpec::ResilientFrontier {
            arm, amd, units, k, ..
        } => {
            let [low, high] = platform_pair(entry);
            let space = ConfigSpace::two_type(low, arm, high, amd);
            let table = ResilientTable::build(&space, &entry.models)
                .map_err(|e| Response::error(422, &format!("model rejected: {e}")))?;
            let frontier = table
                .frontier(units, k)
                .map_err(|e| Response::error(422, &format!("resilient sweep failed: {e}")))?;
            CachedCompute::Frontier(frontier)
        }
        ComputeSpec::Whatif {
            budget_w,
            units,
            step_high,
            ..
        } => {
            let [low, high] = platform_pair(entry);
            let ladder = PowerBudget::new(budget_w)
                .substitution_ladder(&low, &high, step_high)
                .map_err(|e| Response::error(422, &format!("bad budget: {e}")))?;
            let mut rungs = Vec::with_capacity(ladder.len());
            for mix in ladder {
                let (frontier, _prune) = mix
                    .frontier(&low, &high, &entry.models, units)
                    .map_err(|e| Response::error(422, &format!("rung sweep failed: {e}")))?;
                rungs.push(WhatifRung {
                    label: mix.label(&low, &high),
                    low_nodes: mix.low_nodes,
                    high_nodes: mix.high_nodes,
                    peak_w: mix.peak_power_w(&low, &high),
                    frontier,
                });
            }
            CachedCompute::Whatif(WhatifResult { rungs })
        }
        ComputeSpec::TailPlan {
            arm,
            amd,
            units,
            lambda,
            p99_s,
            window_s,
            ..
        } => {
            let platforms = platform_pair(entry);
            let space = ConfigSpace::two_type(platforms[0].clone(), arm, platforms[1].clone(), amd);
            let table = RateTable::build_pruned(&space, &entry.models)
                .map_err(|e| Response::error(422, &format!("model rejected: {e}")))?;
            let frontier = table
                .frontier(units)
                .map_err(|e| Response::error(422, &format!("sweep failed: {e}")))?;
            let (menu, labels) = tail_menu(&frontier, entry, &platforms);
            let target = TailTarget::new(0.99, p99_s)
                .map_err(|e| Response::error(422, &format!("bad tail target: {e}")))?;
            // Default DES budget and a fixed seed: identical requests get
            // byte-identical plans, which memoization and single-flight
            // coalescing both depend on.
            let outcome =
                best_choice_tail(&menu, lambda, window_s, target, &TailDesConfig::default())
                    .map_err(|e| Response::error(422, &format!("tail planning failed: {e}")))?;
            CachedCompute::TailPlan(TailPlanResult { outcome, labels })
        }
    };
    let compute_us = t0.elapsed().as_micros() as u64;
    Ok((
        key,
        Arc::new(CachedPlan {
            compute,
            spec: spec.clone(),
            compute_us,
        }),
    ))
}

// ---- response formatting ----

/// Format `plan` as the wire answer for the request described by `ctx`.
///
/// `cached` marks a cache hit, `coalesced` marks an answer shared from
/// another connection's in-flight compute, and `compute_us` is the
/// server-side cost attributed to this request (the original sweep time
/// for misses and coalesced waiters, the lookup time for hits).
#[must_use]
pub fn format_response(
    ctx: &RespCtx,
    store: &ModelStore,
    plan: &CachedPlan,
    cached: bool,
    coalesced: bool,
    compute_us: u64,
) -> Response {
    match ctx {
        RespCtx::Plan {
            workload,
            arm,
            amd,
            units,
            deadline_ms,
        } => {
            let CachedCompute::Frontier(frontier) = &plan.compute else {
                return Response::error(500, "cache type confusion");
            };
            let Some(entry) = store.get(workload) else {
                return Response::error(500, "workload disappeared during compute");
            };
            let platforms = platform_pair(entry);
            let mut o = Object::new();
            o.str("workload", workload);
            o.u64("arm", u64::from(*arm));
            o.u64("amd", u64::from(*amd));
            o.f64("units", *units);
            o.f64("deadline_ms", *deadline_ms);
            match frontier.min_energy_for_deadline(deadline_ms / 1e3) {
                Some(point) => {
                    o.bool("feasible", true);
                    o.str("config", &point.config.label(&platforms));
                    o.f64("time_ms", point.time_s * 1e3);
                    o.f64("energy_j", point.energy_j);
                    if let Ok(split) = mix_and_match(&point.config, &entry.models, *units) {
                        // `MatchedSplit::shares` are absolute work units
                        // summing to `units`; the wire format reports
                        // fractions.
                        let mut s = Object::new();
                        s.f64("low", split.shares.first().copied().unwrap_or(0.0) / units);
                        s.f64("high", split.shares.get(1).copied().unwrap_or(0.0) / units);
                        o.raw("shares", &s.finish());
                    }
                }
                None => {
                    o.bool("feasible", false);
                    if let Some(t) = frontier.min_time_s() {
                        o.f64("fastest_ms", t * 1e3);
                    }
                }
            }
            o.bool("cached", cached);
            o.bool("coalesced", coalesced);
            o.u64("compute_us", compute_us);
            Response::json(200, o.finish())
        }
        RespCtx::TailPlan {
            workload,
            arm,
            amd,
            units,
            lambda,
            p99_s,
            window_s,
        } => {
            let CachedCompute::TailPlan(result) = &plan.compute else {
                return Response::error(500, "cache type confusion");
            };
            let mut o = Object::new();
            o.str("workload", workload);
            o.u64("arm", u64::from(*arm));
            o.u64("amd", u64::from(*amd));
            o.f64("units", *units);
            o.f64("lambda", *lambda);
            o.f64("p99_s", *p99_s);
            o.f64("window_s", *window_s);
            match &result.outcome {
                Some(out) => {
                    o.bool("feasible", !out.violated);
                    o.str("config", &result.labels[out.index]);
                    o.f64("p99_response_s", out.tail_response_s);
                    o.f64("mean_response_s", out.mean_response_s);
                    o.f64("window_energy_j", out.energy_j);
                    o.u64("screened_out", out.screened_out as u64);
                    o.u64("des_runs", u64::from(out.des_runs));
                    o.bool("violated", out.violated);
                }
                None => {
                    // Every menu entry saturates: ρ ≥ 1 everywhere, no
                    // finite tail exists at this arrival rate.
                    o.bool("feasible", false);
                    o.bool("saturated", true);
                }
            }
            o.bool("cached", cached);
            o.bool("coalesced", coalesced);
            o.u64("compute_us", compute_us);
            Response::json(200, o.finish())
        }
        RespCtx::Frontier {
            workload,
            arm,
            amd,
            units,
            resilient_k,
        } => {
            let CachedCompute::Frontier(frontier) = &plan.compute else {
                return Response::error(500, "cache type confusion");
            };
            let Some(entry) = store.get(workload) else {
                return Response::error(500, "workload disappeared during compute");
            };
            let platforms = platform_pair(entry);
            let mut o = Object::new();
            o.str("workload", workload);
            o.u64("arm", u64::from(*arm));
            o.u64("amd", u64::from(*amd));
            o.f64("units", *units);
            if let Some(k) = resilient_k {
                o.u64("resilient_k", u64::from(*k));
            }
            o.u64("count", frontier.len() as u64);
            let mut points = String::from("[");
            for (i, p) in frontier.points.iter().enumerate() {
                if i > 0 {
                    points.push(',');
                }
                let mut po = Object::new();
                po.f64("time_ms", p.time_s * 1e3);
                po.f64("energy_j", p.energy_j);
                po.str("config", &p.config.label(&platforms));
                points.push_str(&po.finish());
            }
            points.push(']');
            o.raw("points", &points);
            o.bool("cached", cached);
            o.bool("coalesced", coalesced);
            o.u64("compute_us", compute_us);
            Response::json(200, o.finish())
        }
        RespCtx::Whatif {
            workload,
            budget_w,
            units,
            step_high,
            deadline_ms,
        } => {
            let CachedCompute::Whatif(result) = &plan.compute else {
                return Response::error(500, "cache type confusion");
            };
            let mut o = Object::new();
            o.str("workload", workload);
            o.f64("budget_w", *budget_w);
            o.f64("units", *units);
            o.u64("step_high", u64::from(*step_high));
            let mut best: Option<(usize, f64)> = None;
            let mut rungs = String::from("[");
            for (i, rung) in result.rungs.iter().enumerate() {
                if i > 0 {
                    rungs.push(',');
                }
                let mut ro = Object::new();
                ro.str("mix", &rung.label);
                ro.u64("arm", u64::from(rung.low_nodes));
                ro.u64("amd", u64::from(rung.high_nodes));
                ro.f64("peak_w", rung.peak_w);
                if let Some(t) = rung.frontier.min_time_s() {
                    ro.f64("min_time_ms", t * 1e3);
                }
                if let Some(e) = rung.frontier.min_energy_j() {
                    ro.f64("min_energy_j", e);
                }
                if let Some(d) = deadline_ms {
                    match rung.frontier.min_energy_for_deadline(d / 1e3) {
                        Some(p) => {
                            ro.f64("deadline_energy_j", p.energy_j);
                            if best.is_none_or(|(_, e)| p.energy_j < e) {
                                best = Some((i, p.energy_j));
                            }
                        }
                        None => ro.bool("deadline_feasible", false),
                    }
                }
                rungs.push_str(&ro.finish());
            }
            rungs.push(']');
            o.raw("rungs", &rungs);
            if let Some(d) = deadline_ms {
                o.f64("deadline_ms", *d);
                if let Some((i, e)) = best {
                    o.str("best_mix", &result.rungs[i].label);
                    o.f64("best_energy_j", e);
                }
            }
            o.bool("cached", cached);
            o.bool("coalesced", coalesced);
            o.u64("compute_us", compute_us);
            Response::json(200, o.finish())
        }
        RespCtx::Reload | RespCtx::Proxy(_) => Response::error(500, "not a formatted compute"),
    }
}

// ---- parsing ----

fn parse_body(body: &[u8]) -> Result<Value, Response> {
    let text = std::str::from_utf8(body)
        .map_err(|_| Response::error(400, "body is not UTF-8"))?
        .trim();
    if text.is_empty() {
        return Ok(Value::Object(Vec::new()));
    }
    json::parse(text).map_err(|e| Response::error(400, &format!("bad JSON: {e}")))
}

fn parse_plan(store: &ModelStore, v: &Value) -> Result<(ComputeSpec, RespCtx), Response> {
    let (_, name, arm, amd, units) = parse_common(store, v)?;
    // A percentile deadline selects the DES-scored tail planner instead of
    // the mean-time frontier lookup; it needs an arrival rate to queue at.
    if let Some(p99) = v.get("p99_s") {
        let Some(p99_s) = p99.as_f64().filter(|x| *x > 0.0 && x.is_finite()) else {
            return Err(Response::error(422, "p99_s must be finite and positive"));
        };
        let Some(lambda) = v.get("lambda").and_then(Value::as_f64) else {
            return Err(Response::error(400, "p99_s requires lambda (jobs/s)"));
        };
        if lambda <= 0.0 || !lambda.is_finite() {
            return Err(Response::error(422, "lambda must be finite and positive"));
        }
        let window_s = optional_f64(v, "window_s", 20.0)?;
        let spec = ComputeSpec::TailPlan {
            workload: name.to_owned(),
            arm,
            amd,
            units,
            lambda,
            p99_s,
            window_s,
        };
        let ctx = RespCtx::TailPlan {
            workload: name.to_owned(),
            arm,
            amd,
            units,
            lambda,
            p99_s,
            window_s,
        };
        return Ok((spec, ctx));
    }
    let Some(deadline_ms) = v.get("deadline_ms").and_then(Value::as_f64) else {
        return Err(Response::error(400, "missing deadline_ms (or p99_s)"));
    };
    if deadline_ms <= 0.0 || !deadline_ms.is_finite() {
        return Err(Response::error(
            422,
            "deadline_ms must be finite and positive",
        ));
    }
    Ok((
        ComputeSpec::Frontier {
            workload: name.to_owned(),
            arm,
            amd,
            units,
        },
        RespCtx::Plan {
            workload: name.to_owned(),
            arm,
            amd,
            units,
            deadline_ms,
        },
    ))
}

fn parse_frontier(store: &ModelStore, v: &Value) -> Result<(ComputeSpec, RespCtx), Response> {
    let (_, name, arm, amd, units) = parse_common(store, v)?;
    let resilient_k = match v.get("resilient_k") {
        None => None,
        Some(k) => match k.as_u64() {
            Some(k) if k >= 1 => Some(k as u32),
            _ => return Err(Response::error(422, "resilient_k must be an integer >= 1")),
        },
    };
    let spec = match resilient_k {
        None => ComputeSpec::Frontier {
            workload: name.to_owned(),
            arm,
            amd,
            units,
        },
        Some(k) => ComputeSpec::ResilientFrontier {
            workload: name.to_owned(),
            arm,
            amd,
            units,
            k,
        },
    };
    Ok((
        spec,
        RespCtx::Frontier {
            workload: name.to_owned(),
            arm,
            amd,
            units,
            resilient_k,
        },
    ))
}

fn parse_whatif(store: &ModelStore, v: &Value) -> Result<(ComputeSpec, RespCtx), Response> {
    let Some(name) = v.get("workload").and_then(Value::as_str) else {
        return Err(Response::error(400, "missing workload"));
    };
    let Some(entry) = store.get(name) else {
        return Err(Response::error(404, &format!("unknown workload `{name}`")));
    };
    let Some(budget_w) = v.get("budget_w").and_then(Value::as_f64) else {
        return Err(Response::error(400, "missing budget_w"));
    };
    let units = optional_f64(v, "units", entry.default_units)?;
    let step_high = v
        .get("step_high")
        .and_then(Value::as_u64)
        .unwrap_or(2)
        .clamp(1, 64) as u32;
    let deadline_ms = v.get("deadline_ms").and_then(Value::as_f64);
    Ok((
        ComputeSpec::Whatif {
            workload: name.to_owned(),
            budget_w,
            units,
            step_high,
        },
        RespCtx::Whatif {
            workload: name.to_owned(),
            budget_w,
            units,
            step_high,
            deadline_ms,
        },
    ))
}

/// Build the serving menu `best_choice_tail` scores: one [`ConfigChoice`]
/// per frontier point (service time = the point's makespan, idle draw =
/// exactly the powered nodes), plus the display labels kept for the
/// response formatter.
fn tail_menu(
    frontier: &ParetoFrontier,
    entry: &ModelEntry,
    platforms: &[Platform; 2],
) -> (Vec<ConfigChoice>, Vec<String>) {
    let mut menu = Vec::with_capacity(frontier.points.len());
    let mut labels = Vec::with_capacity(frontier.points.len());
    for p in &frontier.points {
        let idle_power_w = p
            .config
            .per_type
            .iter()
            .zip(entry.models.iter())
            .filter_map(|(cfg, m)| cfg.map(|c| f64::from(c.nodes) * m.power.idle_w))
            .sum();
        let label = p.config.label(platforms);
        labels.push(label.clone());
        menu.push(ConfigChoice {
            label,
            service_s: p.time_s,
            job_energy_j: p.energy_j,
            idle_power_w,
        });
    }
    (menu, labels)
}

/// The `[low, high]` platform pair of a bundle (cloned; labels and spaces
/// need owned platforms).
fn platform_pair(entry: &ModelEntry) -> [Platform; 2] {
    [
        entry.models[0].platform.clone(),
        entry.models[1].platform.clone(),
    ]
}

/// FNV-1a over the little-endian concatenation of `parts`.
#[must_use]
pub fn cache_key(parts: &[u64]) -> u64 {
    let mut bytes = Vec::with_capacity(parts.len() * 8);
    for p in parts {
        bytes.extend_from_slice(&p.to_le_bytes());
    }
    fnv1a(&bytes)
}

type Common<'a> = (&'a ModelEntry, &'a str, u32, u32, f64);

/// Parse the fields `/plan` and `/frontier` share: workload (required),
/// arm/amd node caps (default 10), units (default: the workload's
/// analysis size).
fn parse_common<'a>(store: &'a ModelStore, v: &'a Value) -> Result<Common<'a>, Response> {
    let Some(name) = v.get("workload").and_then(Value::as_str) else {
        return Err(Response::error(400, "missing workload"));
    };
    let Some(entry) = store.get(name) else {
        return Err(Response::error(404, &format!("unknown workload `{name}`")));
    };
    let node_cap = |field: &str| -> Result<u32, Response> {
        match v.get(field) {
            None => Ok(10),
            Some(x) => match x.as_u64() {
                Some(n) if n <= 512 => Ok(n as u32),
                _ => Err(Response::error(
                    422,
                    &format!("{field} must be an integer in 0..=512"),
                )),
            },
        }
    };
    let arm = node_cap("arm")?;
    let amd = node_cap("amd")?;
    if arm == 0 && amd == 0 {
        return Err(Response::error(422, "arm and amd cannot both be 0"));
    }
    let units = optional_f64(v, "units", entry.default_units)?;
    Ok((entry, name, arm, amd, units))
}

fn optional_f64(v: &Value, field: &str, default: f64) -> Result<f64, Response> {
    match v.get(field) {
        None => Ok(default),
        Some(x) => match x.as_f64() {
            Some(u) if u > 0.0 && u.is_finite() => Ok(u),
            _ => Err(Response::error(
                422,
                &format!("{field} must be finite and positive"),
            )),
        },
    }
}
