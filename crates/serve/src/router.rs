//! Consistent-hash routing for the replica fleet.
//!
//! The gateway partitions the plan-cache key space across N replicas with
//! a classic consistent-hash ring: each replica contributes
//! [`Ring::vnodes`] virtual points (FNV-1a of `"replica-{i}/vnode-{v}"`),
//! the points are sorted, and a key is owned by the first point clockwise
//! from the key's own hash. Cache keys are already FNV-1a over
//! `models_hash` + query shape ([`crate::api::cache_key`]), so the ring
//! input is uniformly distributed and *identical* on the gateway and on
//! every replica — which is exactly what makes the partitioning a cache
//! partitioning: one key always lands on the same replica, so each
//! replica's LRU holds a disjoint shard of the hot set.
//!
//! The ring itself is static and health-blind: it depends only on the
//! replica count and vnode count, so every gateway instance (and every
//! test) computes the same ownership. Health filtering happens one level
//! up in [`crate::fleet`], by walking the [`Ring::preference`] list — the
//! distinct-replica order in which a key's attempts should cascade. When
//! a replica dies, its keys implicitly re-map to the next preference
//! entry; when it returns, they snap back (no rebalancing storm, only the
//! dead replica's range ever moves).

use hecmix_core::persist::fnv1a;

/// A static consistent-hash ring over `replicas` replicas.
pub struct Ring {
    replicas: usize,
    /// `(point_hash, replica_idx)`, sorted by hash.
    points: Vec<(u64, usize)>,
}

impl Ring {
    /// Build a ring of `replicas` replicas with `vnodes` virtual points
    /// each (more vnodes → smoother key distribution; 64 is plenty for
    /// single-digit fleets).
    ///
    /// # Panics
    /// Panics if `replicas` or `vnodes` is zero.
    #[must_use]
    pub fn new(replicas: usize, vnodes: usize) -> Self {
        assert!(replicas > 0, "ring needs at least one replica");
        assert!(vnodes > 0, "ring needs at least one vnode per replica");
        let mut points = Vec::with_capacity(replicas * vnodes);
        for replica in 0..replicas {
            for v in 0..vnodes {
                let label = format!("replica-{replica}/vnode-{v}");
                points.push((fnv1a(label.as_bytes()), replica));
            }
        }
        // Ties (hash collisions between labels) are broken by replica
        // index so the ring is deterministic regardless of build order.
        points.sort_unstable();
        Self { replicas, points }
    }

    /// Number of replicas on the ring.
    #[must_use]
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// Virtual points per replica.
    #[must_use]
    pub fn vnodes(&self) -> usize {
        self.points.len() / self.replicas
    }

    /// The replica that owns `key`: the first ring point clockwise from
    /// the key's hash position (health-blind; see [`Ring::preference`]).
    #[must_use]
    pub fn owner(&self, key: u64) -> usize {
        let start = self.points.partition_point(|&(h, _)| h < key);
        self.points[start % self.points.len()].1
    }

    /// The first `n` *distinct* replicas clockwise from `key` — the order
    /// in which attempts for this key should cascade when owners are
    /// unhealthy. Always starts with [`Ring::owner`]; `n` is clamped to
    /// the replica count.
    #[must_use]
    pub fn preference(&self, key: u64, n: usize) -> Vec<usize> {
        let want = n.min(self.replicas);
        let mut out = Vec::with_capacity(want);
        let start = self.points.partition_point(|&(h, _)| h < key);
        for i in 0..self.points.len() {
            let replica = self.points[(start + i) % self.points.len()].1;
            if !out.contains(&replica) {
                out.push(replica);
                if out.len() == want {
                    break;
                }
            }
        }
        out
    }
}

/// SplitMix64: a tiny, high-quality 64-bit mixer. The fleet derives
/// deterministic retry jitter from it (seed ⊕ key ⊕ attempt), and loadgen
/// uses it to de-synchronize `Retry-After` backoffs across workers —
/// data-dependent randomness with no RNG state to carry around.
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ownership_is_deterministic_and_total() {
        let a = Ring::new(3, 64);
        let b = Ring::new(3, 64);
        for key in (0..10_000u64).map(splitmix64) {
            let owner = a.owner(key);
            assert!(owner < 3);
            assert_eq!(owner, b.owner(key), "two identical rings must agree");
        }
    }

    #[test]
    fn keys_spread_across_all_replicas() {
        let ring = Ring::new(3, 64);
        let mut counts = [0usize; 3];
        for key in (0..30_000u64).map(splitmix64) {
            counts[ring.owner(key)] += 1;
        }
        for (replica, &c) in counts.iter().enumerate() {
            // With 64 vnodes the worst shard should still hold a healthy
            // fraction; this guards against a degenerate ring, not for
            // perfect balance.
            assert!(c > 30_000 / 10, "replica {replica} owns only {c} keys");
        }
    }

    #[test]
    fn preference_starts_at_owner_and_is_distinct() {
        let ring = Ring::new(5, 32);
        for key in (0..1000u64).map(splitmix64) {
            let pref = ring.preference(key, 5);
            assert_eq!(pref.len(), 5);
            assert_eq!(pref[0], ring.owner(key));
            let mut sorted = pref.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 5, "preference must be distinct: {pref:?}");
        }
    }

    #[test]
    fn preference_clamps_to_replica_count() {
        let ring = Ring::new(2, 16);
        assert_eq!(ring.preference(42, 10).len(), 2);
    }

    #[test]
    fn single_replica_owns_everything() {
        let ring = Ring::new(1, 8);
        for key in 0..100u64 {
            assert_eq!(ring.owner(key), 0);
        }
    }

    #[test]
    fn removing_a_replica_only_moves_its_keys() {
        // Compare 3-replica ownership with the fleet-level failover rule
        // (next preference entry): keys owned by the survivors must not
        // move when replica 1 dies.
        let ring = Ring::new(3, 64);
        for key in (0..5000u64).map(splitmix64) {
            let pref = ring.preference(key, 3);
            let owner_with_1_dead = *pref.iter().find(|&&r| r != 1).expect("survivor");
            if pref[0] != 1 {
                assert_eq!(
                    owner_with_1_dead, pref[0],
                    "healthy owners must be stable across another replica's death"
                );
            }
        }
    }

    #[test]
    fn splitmix64_is_deterministic_and_mixing() {
        assert_eq!(splitmix64(1), splitmix64(1));
        assert_ne!(splitmix64(1), splitmix64(2));
        // Low bits must differ for adjacent inputs (jitter quality).
        assert_ne!(splitmix64(100) & 0xFF, splitmix64(101) & 0xFF);
    }
}
