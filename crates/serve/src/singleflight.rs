//! Single-flight coalescing of identical in-flight computes.
//!
//! When N connections miss the plan cache on the same key at (nearly) the
//! same moment, computing the plan N times is pure waste — the inputs are
//! identical and the result is cacheable. This module collapses the N
//! misses into **one** compute: the first caller to join a key becomes the
//! *leader* and is responsible for enqueuing the compute job; everyone who
//! joins before the job completes is a *follower* and simply parks. When
//! the job finishes, [`SingleFlight::complete`] hands back every parked
//! waiter so all of them can be answered from the single result.
//!
//! The registry stores opaque waiter values — the event loop parks a
//! connection token plus enough request context to format the response —
//! so the compute pool never touches sockets, and a waiter whose
//! connection has since closed is discarded harmlessly at delivery time.
//! The leader holds no special capability after enqueuing the job: the
//! compute is owned by the pool, so a leader that disconnects mid-flight
//! cannot strand its followers.

use std::collections::HashMap;
use std::sync::Mutex;

/// A registry of in-flight computes keyed by cache key, each with its
/// queue of parked waiters.
pub struct SingleFlight<W> {
    inflight: Mutex<HashMap<u64, Vec<W>>>,
}

impl<W> Default for SingleFlight<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> SingleFlight<W> {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self {
            inflight: Mutex::new(HashMap::new()),
        }
    }

    /// Join the flight for `key`, building the waiter via `make(is_leader)`.
    ///
    /// Returns `true` when this call created the flight — the caller is the
    /// leader and must enqueue exactly one compute job (or call
    /// [`complete`](Self::complete) immediately to fail everyone if it
    /// cannot). Returns `false` for followers, whose waiter is parked until
    /// the leader's job completes.
    pub fn join_with(&self, key: u64, make: impl FnOnce(bool) -> W) -> bool {
        let mut inflight = self.inflight.lock().expect("singleflight poisoned");
        match inflight.get_mut(&key) {
            Some(waiters) => {
                waiters.push(make(false));
                false
            }
            None => {
                inflight.insert(key, vec![make(true)]);
                true
            }
        }
    }

    /// End the flight for `key`, returning every parked waiter (leader
    /// included) for delivery. Unknown keys return an empty vec.
    #[must_use]
    pub fn complete(&self, key: u64) -> Vec<W> {
        self.inflight
            .lock()
            .expect("singleflight poisoned")
            .remove(&key)
            .unwrap_or_default()
    }

    /// Number of distinct keys currently in flight.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inflight.lock().expect("singleflight poisoned").len()
    }

    /// Whether no computes are in flight.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Keys currently in flight (for drain diagnostics).
    #[must_use]
    pub fn keys(&self) -> Vec<u64> {
        self.inflight
            .lock()
            .expect("singleflight poisoned")
            .keys()
            .copied()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_joiner_leads_rest_follow() {
        let flight: SingleFlight<u32> = SingleFlight::new();
        assert!(flight.join_with(9, |leader| {
            assert!(leader);
            0
        }));
        for i in 1..5u32 {
            assert!(!flight.join_with(9, |leader| {
                assert!(!leader);
                i
            }));
        }
        assert_eq!(flight.len(), 1);
        let waiters = flight.complete(9);
        assert_eq!(waiters, vec![0, 1, 2, 3, 4]);
        assert!(flight.is_empty());
    }

    #[test]
    fn distinct_keys_are_independent_flights() {
        let flight: SingleFlight<u32> = SingleFlight::new();
        assert!(flight.join_with(1, |_| 10));
        assert!(flight.join_with(2, |_| 20));
        assert_eq!(flight.len(), 2);
        assert_eq!(flight.complete(1), vec![10]);
        assert_eq!(flight.complete(2), vec![20]);
    }

    #[test]
    fn completing_an_unknown_key_is_empty_not_a_panic() {
        let flight: SingleFlight<u32> = SingleFlight::new();
        assert!(flight.complete(404).is_empty());
    }

    #[test]
    fn key_can_be_rejoined_after_completion() {
        let flight: SingleFlight<u32> = SingleFlight::new();
        assert!(flight.join_with(5, |_| 1));
        let _ = flight.complete(5);
        assert!(
            flight.join_with(5, |_| 2),
            "a finished key starts a fresh flight with a fresh leader"
        );
    }
}
