//! Live job admission for the online scheduler (`POST /submit`,
//! `GET /jobz`).
//!
//! [`OnlineSched`] is the wall-clock face of `hecmix-sched`: it builds one
//! shared heterogeneous [`Pool`] from the daemon's model inventory and
//! places each submitted job with the *same* α-score chooser the replay
//! engine uses ([`hecmix_sched::select_candidate`]) — only the candidate
//! enumeration differs. The replay engine backfills over a reservation
//! timeline; the live path keeps a per-node FIFO tail (`busy_until`),
//! because a daemon cannot retroactively slot work before commitments it
//! already answered with a start time.
//!
//! All state lives under one mutex and every operation is bounded by
//! `pool nodes × menu options`, so submissions are answered inline on the
//! I/O thread like the other read endpoints. The scheduler clock is
//! seconds since the daemon built the pool; responses report absolute
//! times on that clock so a client can correlate `/jobz` lines across
//! requests.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

use hecmix_obs::json::Object;
use hecmix_obs::{emit, Event};
use hecmix_sched::{select_candidate, Candidate, Pool};

use crate::http::Response;
use crate::store::ModelStore;

/// How many finished jobs `/jobz` keeps for inspection.
const RECENT_CAP: usize = 64;

/// Tuning knobs for the live scheduler.
#[derive(Debug, Clone)]
pub struct SchedParams {
    /// Placement blend: 1.0 = pure performance, 0.0 = pure energy.
    pub alpha: f64,
    /// Bounded admission: jobs in flight before `/submit` answers 429.
    pub max_outstanding: usize,
    /// Nodes per platform type, `[low-power, high-performance]` order.
    pub counts: Vec<u32>,
}

impl Default for SchedParams {
    fn default() -> Self {
        Self {
            alpha: 0.5,
            max_outstanding: 256,
            counts: vec![16, 14],
        }
    }
}

/// One admitted job, as `/jobz` reports it.
#[derive(Debug, Clone)]
struct JobLine {
    id: u64,
    workload: String,
    units: f64,
    type_idx: usize,
    node_idx: u32,
    opt: usize,
    start_s: f64,
    finish_s: f64,
    /// Absolute deadline on the scheduler clock; infinite = none.
    deadline_s: f64,
    energy_j: f64,
    missed: bool,
}

#[derive(Debug, Default)]
struct Inner {
    /// Per-node FIFO tail, indexed by `offsets[type] + node`.
    busy_until: Vec<f64>,
    /// Predicted finish times of jobs still in flight.
    in_flight: Vec<f64>,
    next_id: u64,
    submitted: u64,
    admitted: u64,
    rejected: u64,
    completed: u64,
    misses: u64,
    active_energy_j: f64,
    recent: VecDeque<JobLine>,
}

/// The live scheduler behind `POST /submit` and `GET /jobz`.
#[derive(Debug)]
pub struct OnlineSched {
    pool: Pool,
    alpha: f64,
    max_outstanding: usize,
    offsets: Vec<usize>,
    started: Instant,
    inner: Mutex<Inner>,
}

impl OnlineSched {
    /// Build the shared pool from the daemon's model inventory: one
    /// workload class per store entry (sorted by name, so the class order
    /// is reload-stable), `params.counts` nodes per platform type.
    ///
    /// # Errors
    /// [`hecmix_core::error::Error::InvalidInput`] when the inventory is
    /// empty, the entries disagree on platforms, or the counts do not
    /// match the model bundles — the daemon then runs without `/submit`.
    pub fn from_store(
        store: &ModelStore,
        params: &SchedParams,
    ) -> Result<Self, hecmix_core::error::Error> {
        let classes: Vec<(String, Vec<_>)> = store
            .names()
            .into_iter()
            .filter_map(|name| {
                let models = (*store.get(&name)?.models).clone();
                Some((name, models))
            })
            .collect();
        let pool = Pool::new(classes, params.counts.clone())?;
        if !(params.alpha.is_finite() && (0.0..=1.0).contains(&params.alpha)) {
            return Err(hecmix_core::error::Error::InvalidInput(format!(
                "alpha must be in [0, 1], got {}",
                params.alpha
            )));
        }
        if params.max_outstanding == 0 {
            return Err(hecmix_core::error::Error::InvalidInput(
                "max_outstanding must be at least 1".into(),
            ));
        }
        let mut offsets = Vec::with_capacity(pool.counts.len());
        let mut total = 0usize;
        for &c in &pool.counts {
            offsets.push(total);
            total += c as usize;
        }
        Ok(Self {
            pool,
            alpha: params.alpha,
            max_outstanding: params.max_outstanding,
            offsets,
            started: Instant::now(),
            inner: Mutex::new(Inner {
                busy_until: vec![0.0; total],
                ..Inner::default()
            }),
        })
    }

    /// Seconds since the scheduler was built — the clock every reported
    /// time lives on.
    fn now_s(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Admit and place one job; answers like a read endpoint.
    ///
    /// `units` is the job size; `deadline_rel_s`, when given, is a
    /// completion deadline relative to now. The caller has already
    /// validated both (positive, finite).
    pub fn submit(&self, workload: &str, units: f64, deadline_rel_s: Option<f64>) -> Response {
        let Ok(class) = self.pool.class_index(workload) else {
            return Response::error(404, &format!("unknown workload `{workload}`"));
        };
        let now = self.now_s();
        let deadline_s = deadline_rel_s.map_or(f64::INFINITY, |d| now + d);
        let mut inner = self.inner.lock().expect("scheduler state poisoned");
        prune(&mut inner, now);
        let id = inner.next_id;
        inner.next_id += 1;
        inner.submitted += 1;
        let name = workload.to_owned();
        if inner.in_flight.len() >= self.max_outstanding {
            inner.rejected += 1;
            emit(|| Event::JobSubmitted {
                job: id,
                workload: name.clone(),
                size_units: units,
                arrival_s: now,
                deadline_s,
                admitted: false,
            });
            let mut o = Object::new();
            o.u64("id", id);
            o.bool("admitted", false);
            o.u64("outstanding", inner.in_flight.len() as u64);
            return Response::json(429, o.finish());
        }

        let mut cands: Vec<Candidate> = Vec::new();
        for (t, &count) in self.pool.counts.iter().enumerate() {
            let menu = &self.pool.classes[class].options[t];
            for n in 0..count {
                let free = inner.busy_until[self.offsets[t] + n as usize];
                let start_s = free.max(now);
                for (k, o) in menu.iter().enumerate() {
                    let dur = units / o.rate;
                    if !dur.is_finite() {
                        continue;
                    }
                    cands.push(Candidate {
                        type_idx: t,
                        node_idx: n,
                        opt: k,
                        start_s,
                        finish_s: start_s + dur,
                        energy_j: dur * o.power_w,
                        eff_rate: o.rate,
                        power_w: o.power_w,
                    });
                }
            }
        }
        let Some(best) = select_candidate(&cands, now, deadline_s, self.alpha) else {
            return Response::error(503, "no live slot in the pool");
        };

        inner.admitted += 1;
        inner.busy_until[self.offsets[best.type_idx] + best.node_idx as usize] = best.finish_s;
        inner.in_flight.push(best.finish_s);
        inner.active_energy_j += best.energy_j;
        let missed = best.finish_s > deadline_s;
        if missed {
            inner.misses += 1;
        }
        emit(|| Event::JobSubmitted {
            job: id,
            workload: name.clone(),
            size_units: units,
            arrival_s: now,
            deadline_s,
            admitted: true,
        });
        emit(|| Event::TaskPlaced {
            job: id,
            type_idx: best.type_idx,
            node_idx: best.node_idx,
            opt: best.opt,
            start_s: best.start_s,
            finish_s: best.finish_s,
            units,
            energy_j: best.energy_j,
        });
        if missed {
            emit(|| Event::DeadlineMiss {
                job: id,
                deadline_s,
                finish_s: best.finish_s,
            });
        }
        if inner.recent.len() == RECENT_CAP {
            inner.recent.pop_front();
        }
        inner.recent.push_back(JobLine {
            id,
            workload: name,
            units,
            type_idx: best.type_idx,
            node_idx: best.node_idx,
            opt: best.opt,
            start_s: best.start_s,
            finish_s: best.finish_s,
            deadline_s,
            energy_j: best.energy_j,
            missed,
        });

        let menu = &self.pool.classes[class].options[best.type_idx];
        let mut o = Object::new();
        o.u64("id", id);
        o.bool("admitted", true);
        o.str("workload", workload);
        o.str("platform", &self.pool.platforms[best.type_idx].name);
        o.u64("type_idx", best.type_idx as u64);
        o.u64("node_idx", u64::from(best.node_idx));
        o.f64("freq_ghz", menu[best.opt].cfg.freq.ghz());
        o.f64("start_s", best.start_s);
        o.f64("finish_s", best.finish_s);
        o.f64("wait_s", best.start_s - now);
        o.f64("energy_j", best.energy_j);
        // Infinite (no deadline) serializes as null.
        o.f64("deadline_s", deadline_s);
        o.bool("missed", missed);
        Response::json(200, o.finish())
    }

    /// The `GET /jobz` body: counters plus the most recent placements.
    #[must_use]
    pub fn jobz(&self) -> Response {
        let now = self.now_s();
        let mut inner = self.inner.lock().expect("scheduler state poisoned");
        prune(&mut inner, now);
        let mut o = Object::new();
        o.str("schema", "hecmix-jobz-v1");
        o.f64("alpha", self.alpha);
        o.u64("nodes", u64::from(self.pool.nodes()));
        let names = self.pool.class_names();
        o.str_array(
            "workloads",
            &names.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>(),
        );
        self.counters(&inner, &mut o);
        let mut jobs = String::from("[");
        for (i, j) in inner.recent.iter().enumerate() {
            if i > 0 {
                jobs.push(',');
            }
            let mut jo = Object::new();
            jo.u64("id", j.id);
            jo.str("workload", &j.workload);
            jo.f64("units", j.units);
            jo.u64("type_idx", j.type_idx as u64);
            jo.u64("node_idx", u64::from(j.node_idx));
            jo.u64("opt", j.opt as u64);
            jo.f64("start_s", j.start_s);
            jo.f64("finish_s", j.finish_s);
            jo.f64("deadline_s", j.deadline_s);
            jo.f64("energy_j", j.energy_j);
            jo.bool("missed", j.missed);
            jo.bool("done", j.finish_s <= now);
            jobs.push_str(&jo.finish());
        }
        jobs.push(']');
        o.raw("jobs", &jobs);
        Response::json(200, o.finish())
    }

    /// The `sched` sub-object `/statz` embeds (schema v4).
    #[must_use]
    pub fn statz_object(&self) -> String {
        let now = self.now_s();
        let mut inner = self.inner.lock().expect("scheduler state poisoned");
        prune(&mut inner, now);
        let mut o = Object::new();
        o.f64("alpha", self.alpha);
        self.counters(&inner, &mut o);
        o.finish()
    }

    fn counters(&self, inner: &Inner, o: &mut Object) {
        o.u64("submitted", inner.submitted);
        o.u64("admitted", inner.admitted);
        o.u64("rejected", inner.rejected);
        o.u64("completed", inner.completed);
        o.u64("outstanding", inner.in_flight.len() as u64);
        o.u64("misses", inner.misses);
        o.f64("active_energy_j", inner.active_energy_j);
    }
}

/// Retire every in-flight job whose predicted finish has passed. The
/// placement is reservation-based and fault-free, so a passed finish time
/// *is* completion — no callback needed.
fn prune(inner: &mut Inner, now: f64) {
    let before = inner.in_flight.len();
    inner.in_flight.retain(|&f| f > now);
    inner.completed += (before - inner.in_flight.len()) as u64;
}

#[cfg(test)]
mod tests {
    use super::*;
    use hecmix_core::profile::WorkloadModel;
    use hecmix_core::types::Platform;

    fn store() -> ModelStore {
        let arm = Platform::reference_arm();
        let amd = Platform::reference_amd();
        let mut store = ModelStore::new();
        store.insert(
            "ep",
            vec![
                WorkloadModel::synthetic_cpu_bound(&arm, "ep", 2.0e9),
                WorkloadModel::synthetic_cpu_bound(&amd, "ep", 1.6e9),
            ],
        );
        store
    }

    fn params() -> SchedParams {
        SchedParams {
            alpha: 0.5,
            max_outstanding: 4,
            counts: vec![2, 1],
        }
    }

    #[test]
    fn submissions_round_robin_the_pool_and_fill_counters() {
        let sched = OnlineSched::from_store(&store(), &params()).expect("pool builds");
        for _ in 0..3 {
            let resp = sched.submit("ep", 1e9, None);
            assert_eq!(resp.status, 200);
        }
        // Pool has 3 nodes and jobs are long: the 4th fills the last
        // admission slot, the 5th must be rejected.
        assert_eq!(sched.submit("ep", 1e9, None).status, 200);
        let resp = sched.submit("ep", 1e9, None);
        assert_eq!(resp.status, 429);
        let stats = sched.statz_object();
        assert!(stats.contains("\"submitted\":5"), "{stats}");
        assert!(stats.contains("\"admitted\":4"), "{stats}");
        assert!(stats.contains("\"rejected\":1"), "{stats}");
    }

    #[test]
    fn unknown_workload_is_404_and_bad_pool_is_rejected() {
        let sched = OnlineSched::from_store(&store(), &params()).expect("pool builds");
        assert_eq!(sched.submit("nope", 1.0, None).status, 404);
        let bad = SchedParams {
            counts: vec![1, 1, 1],
            ..params()
        };
        assert!(OnlineSched::from_store(&store(), &bad).is_err());
        let bad = SchedParams {
            alpha: 1.5,
            ..params()
        };
        assert!(OnlineSched::from_store(&store(), &bad).is_err());
    }

    #[test]
    fn impossible_deadline_counts_a_miss_up_front() {
        let sched = OnlineSched::from_store(&store(), &params()).expect("pool builds");
        let resp = sched.submit("ep", 1e9, Some(1e-6));
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains("\"missed\":true"), "{}", resp.body);
        let stats = sched.statz_object();
        assert!(stats.contains("\"misses\":1"), "{stats}");
    }
}
