//! Lock-free latency histograms, one per worker thread.
//!
//! Each worker owns a [`Histogram`] and records into it with relaxed
//! atomic adds — no locks, no contention with other workers. `GET /statz`
//! merges all per-worker histograms on demand, which is the cheap
//! direction: reads are rare, writes are per-request.
//!
//! Bucketing follows the HdrHistogram idea at fixed size: values below
//! [`LINEAR_MAX`] get exact buckets; above that, each power-of-two octave
//! is split into 16 sub-buckets, so a bucket spans at most 1/16 ≈ 6.25%
//! of its value across the full `u64` range in [`NBUCKETS`] slots.
//! Quantiles are reported at the bucket *midpoint*, which halves the
//! worst-case quantile error to ±1/32 ≈ ±3.2% (reporting the lower bound,
//! as this module originally did, biases every quantile low by up to a
//! full sub-bucket).

use std::sync::atomic::{AtomicU64, Ordering};

/// Values below this are counted exactly (one bucket per value).
pub const LINEAR_MAX: u64 = 32;
/// Sub-buckets per octave above the linear range.
const SUB_BUCKETS: usize = 16;
/// Total bucket count: 32 linear + 59 octaves (2^5..2^63) × 16 sub-buckets.
pub const NBUCKETS: usize = LINEAR_MAX as usize + 59 * SUB_BUCKETS;

/// A fixed-size log-linear histogram of `u64` samples (nanoseconds, by
/// convention). All operations are wait-free relaxed atomics.
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        let buckets: Vec<AtomicU64> = (0..NBUCKETS).map(|_| AtomicU64::new(0)).collect();
        Self {
            buckets: buckets.into_boxed_slice(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index for a value (see the module docs for the scheme).
#[must_use]
pub fn bucket_index(v: u64) -> usize {
    if v < LINEAR_MAX {
        return v as usize;
    }
    let oct = 63 - v.leading_zeros() as usize; // >= 5 here
    let sub = ((v >> (oct - 4)) & 0xF) as usize;
    LINEAR_MAX as usize + (oct - 5) * SUB_BUCKETS + sub
}

/// Smallest value that lands in bucket `idx` (inverse of
/// [`bucket_index`]).
#[must_use]
pub fn bucket_lower_bound(idx: usize) -> u64 {
    if idx < LINEAR_MAX as usize {
        return idx as u64;
    }
    let rel = idx - LINEAR_MAX as usize;
    let oct = 5 + rel / SUB_BUCKETS;
    let sub = (rel % SUB_BUCKETS) as u64;
    (1u64 << oct) + (sub << (oct - 4))
}

/// Midpoint of bucket `idx` — the unbiased representative value used when
/// reporting quantiles (±3.2% worst case, vs up to −6.25% bias at the
/// lower bound). Exact in the linear range, where each bucket holds a
/// single value.
#[must_use]
pub fn bucket_mid(idx: usize) -> u64 {
    if idx < LINEAR_MAX as usize {
        return idx as u64; // exact buckets: the midpoint is the value
    }
    let lo = bucket_lower_bound(idx);
    // Bucket width = distance to the next bucket's lower bound; the last
    // bucket runs to u64::MAX.
    let next = if idx + 1 < NBUCKETS {
        bucket_lower_bound(idx + 1)
    } else {
        u64::MAX
    };
    lo + (next - lo) / 2
}

/// Merged summary of one or more histograms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Total samples.
    pub count: u64,
    /// Median, in the recorded unit (bucket midpoint, ±3.2%).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 95th percentile (anchors the gateway's adaptive hedge delay).
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// Exact maximum sample.
    pub max: u64,
    /// Mean sample (exact: running sum / count).
    pub mean: f64,
}

/// Merge `hists` and compute the summary quantiles. Relaxed reads: the
/// result is a consistent-enough snapshot for monitoring, not an exact
/// point-in-time cut.
#[must_use]
pub fn summarize(hists: &[Histogram]) -> Summary {
    let mut merged = [0u64; NBUCKETS];
    let mut count = 0u64;
    let mut sum = 0u64;
    let mut max = 0u64;
    for h in hists {
        for (m, b) in merged.iter_mut().zip(h.buckets.iter()) {
            *m += b.load(Ordering::Relaxed);
        }
        count += h.count.load(Ordering::Relaxed);
        sum += h.sum.load(Ordering::Relaxed);
        max = max.max(h.max.load(Ordering::Relaxed));
    }
    let quantile = |q: f64| -> u64 {
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in merged.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Midpoint, not lower bound: the lower bound systematically
                // underestimates every quantile by up to one sub-bucket
                // (6.25%) — and the fleet's adaptive hedge delay anchors
                // on this p95. Cap at the observed max so a sparse top
                // bucket cannot report beyond any real sample.
                return bucket_mid(idx).min(max);
            }
        }
        max
    };
    Summary {
        count,
        p50: quantile(0.50),
        p90: quantile(0.90),
        p95: quantile(0.95),
        p99: quantile(0.99),
        p999: quantile(0.999),
        max,
        mean: if count == 0 {
            0.0
        } else {
            sum as f64 / count as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_are_monotonic_and_invert() {
        let mut prev = 0u64;
        for idx in 0..NBUCKETS {
            let lo = bucket_lower_bound(idx);
            assert!(idx == 0 || lo > prev, "bucket {idx} not monotonic");
            assert_eq!(bucket_index(lo), idx, "lower bound of {idx} maps back");
            prev = lo;
        }
        // Extremes.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(u64::MAX), NBUCKETS - 1);
    }

    #[test]
    fn relative_error_is_bounded_above_linear_range() {
        for v in [100u64, 1_000, 123_456, 7_000_000, u64::MAX / 3] {
            let lo = bucket_lower_bound(bucket_index(v));
            assert!(lo <= v);
            let err = (v - lo) as f64 / v as f64;
            assert!(err < 1.0 / 16.0 + 1e-12, "error {err} too large for {v}");
        }
    }

    #[test]
    fn summary_quantiles_track_known_distribution() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v * 1000); // 1µs .. 1ms in ns
        }
        let s = summarize(std::slice::from_ref(&h));
        assert_eq!(s.count, 1000);
        assert_eq!(s.max, 1_000_000);
        // Midpoint reporting: within half a sub-bucket (±3.2%) of truth.
        assert!(
            (s.p50 as f64 - 500_000.0).abs() / 500_000.0 < 0.04,
            "{}",
            s.p50
        );
        assert!(
            (s.p99 as f64 - 990_000.0).abs() / 990_000.0 < 0.04,
            "{}",
            s.p99
        );
        assert!((s.mean - 500_500.0).abs() < 1.0, "{}", s.mean);
    }

    #[test]
    fn merge_across_histograms_sums_counts() {
        let a = Histogram::new();
        let b = Histogram::new();
        for _ in 0..10 {
            a.record(100);
            b.record(1_000_000);
        }
        let s = summarize(&[a, b]);
        assert_eq!(s.count, 20);
        assert_eq!(s.p50, bucket_mid(bucket_index(100)));
        assert!(s.p99 >= 900_000);
    }

    #[test]
    fn bucket_mid_sits_inside_its_bucket() {
        for idx in 0..NBUCKETS {
            let mid = bucket_mid(idx);
            assert!(mid >= bucket_lower_bound(idx), "bucket {idx}");
            assert_eq!(bucket_index(mid), idx, "midpoint of {idx} maps back");
        }
        // Quantiles never exceed the observed max even when the midpoint
        // of a sparse bucket would: 2^20 is exactly a bucket lower bound,
        // so its midpoint lies strictly above the only recorded sample.
        let h = Histogram::new();
        h.record(1 << 20);
        let s = summarize(std::slice::from_ref(&h));
        assert!(bucket_mid(bucket_index(1 << 20)) > (1 << 20));
        assert_eq!(s.p99, 1 << 20);
    }
}
