//! Seeded chaos injection for the replica fleet.
//!
//! Robustness claims are only worth what their experiments can reproduce,
//! so fault injection here follows the PR-2 `FaultSchedule` design: a
//! [`ChaosSchedule`] is **data, not randomness at run time**. The builder
//! records impairment windows (kill, connection reset, fixed/bimodal
//! delay, black-hole) at fixed offsets from an epoch; the only use of the
//! seed is to pick deterministically *which* connections land on the slow
//! mode of a bimodal window. Two runs with the same seed and the same
//! builder calls produce byte-identical schedules ([`ChaosSchedule::to_json`]
//! is embedded in `BENCH_fleet.json` precisely so the artifact proves it).
//!
//! A [`ChaosProxy`] sits between the gateway and one replica as a plain
//! TCP forwarder and applies whatever windows are active at each moment:
//!
//! * `kill` — new connections are closed at accept and existing pumps cut,
//!   so the replica looks dead (probes fail, in-flight forwards error);
//! * `conn_reset` — new connections die at accept, established ones live;
//! * `delay` / `bimodal_delay` — upstream bytes are held back before
//!   relaying (the bimodal form makes every `slow_nth`-th connection much
//!   slower, which is the tail shape hedging exists to beat);
//! * `black_hole` — upstream bytes are swallowed entirely (the client
//!   sees a connected-but-silent peer, the worst failure mode for naive
//!   timeouts).
//!
//! The proxy re-evaluates windows per relayed chunk, so an impairment can
//! start and end in the middle of a keep-alive connection — a restart is
//! simply the end of a kill window.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use hecmix_obs::json::Object;

use crate::router::splitmix64;

/// One impairment mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChaosKind {
    /// Replica appears dead: connections refused, existing ones cut.
    Kill,
    /// New connections are reset immediately after accept.
    ConnReset,
    /// Every relayed upstream chunk is held back by `ms`.
    Delay {
        /// Added latency, milliseconds.
        ms: u64,
    },
    /// Every `slow_nth`-th connection (seed-selected) gets `slow_ms` of
    /// added latency per chunk; the rest get `fast_ms`.
    BimodalDelay {
        /// Added latency on fast-mode connections, milliseconds.
        fast_ms: u64,
        /// Added latency on slow-mode connections, milliseconds.
        slow_ms: u64,
        /// One in `slow_nth` connections is slow.
        slow_nth: u32,
    },
    /// Upstream bytes are swallowed; the client sees silence.
    BlackHole,
}

impl ChaosKind {
    fn name(self) -> &'static str {
        match self {
            Self::Kill => "kill",
            Self::ConnReset => "conn_reset",
            Self::Delay { .. } => "delay",
            Self::BimodalDelay { .. } => "bimodal_delay",
            Self::BlackHole => "black_hole",
        }
    }
}

/// One scheduled impairment window `[from_s, to_s)` on one replica,
/// offsets in seconds from the run epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosEvent {
    /// Replica index the window applies to.
    pub replica: usize,
    /// Window start, seconds from epoch.
    pub from_s: f64,
    /// Window end, seconds from epoch (`f64::INFINITY` = never ends).
    pub to_s: f64,
    /// The impairment.
    pub kind: ChaosKind,
}

impl ChaosEvent {
    fn active(&self, replica: usize, elapsed_s: f64) -> bool {
        self.replica == replica && elapsed_s >= self.from_s && elapsed_s < self.to_s
    }
}

/// A deterministic, seeded schedule of chaos windows. Built once, shared
/// (via `Arc`) by every [`ChaosProxy`] of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosSchedule {
    seed: u64,
    events: Vec<ChaosEvent>,
}

fn assert_window(from_s: f64, to_s: f64) {
    assert!(
        from_s.is_finite() && from_s >= 0.0,
        "chaos window start must be finite and non-negative"
    );
    assert!(
        to_s > from_s,
        "chaos window must end after it starts ({from_s}..{to_s})"
    );
}

impl ChaosSchedule {
    /// An empty schedule with the given seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            events: Vec::new(),
        }
    }

    /// The schedule's seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Scheduled windows, in builder order.
    #[must_use]
    pub fn events(&self) -> &[ChaosEvent] {
        &self.events
    }

    /// Kill `replica` at `at_s`, forever (no restart).
    #[must_use]
    pub fn kill(self, replica: usize, at_s: f64) -> Self {
        self.kill_between(replica, at_s, f64::INFINITY)
    }

    /// Kill `replica` during `[from_s, to_s)`; the window's end is the
    /// restart.
    #[must_use]
    pub fn kill_between(mut self, replica: usize, from_s: f64, to_s: f64) -> Self {
        assert_window(from_s, to_s);
        self.events.push(ChaosEvent {
            replica,
            from_s,
            to_s,
            kind: ChaosKind::Kill,
        });
        self
    }

    /// Reset new connections to `replica` during `[from_s, to_s)`.
    #[must_use]
    pub fn conn_reset(mut self, replica: usize, from_s: f64, to_s: f64) -> Self {
        assert_window(from_s, to_s);
        self.events.push(ChaosEvent {
            replica,
            from_s,
            to_s,
            kind: ChaosKind::ConnReset,
        });
        self
    }

    /// Add `ms` of latency to `replica`'s responses during `[from_s, to_s)`.
    #[must_use]
    pub fn delay(mut self, replica: usize, from_s: f64, to_s: f64, ms: u64) -> Self {
        assert_window(from_s, to_s);
        self.events.push(ChaosEvent {
            replica,
            from_s,
            to_s,
            kind: ChaosKind::Delay { ms },
        });
        self
    }

    /// Bimodal latency on `replica` during `[from_s, to_s)`: one in
    /// `slow_nth` connections (picked by the seed) gets `slow_ms`, the
    /// rest `fast_ms`.
    ///
    /// # Panics
    /// Panics if `slow_nth` is zero or the window is malformed.
    #[must_use]
    pub fn bimodal_delay(
        mut self,
        replica: usize,
        from_s: f64,
        to_s: f64,
        fast_ms: u64,
        slow_ms: u64,
        slow_nth: u32,
    ) -> Self {
        assert_window(from_s, to_s);
        assert!(slow_nth > 0, "slow_nth must be at least 1");
        self.events.push(ChaosEvent {
            replica,
            from_s,
            to_s,
            kind: ChaosKind::BimodalDelay {
                fast_ms,
                slow_ms,
                slow_nth,
            },
        });
        self
    }

    /// Swallow `replica`'s responses during `[from_s, to_s)`.
    #[must_use]
    pub fn black_hole(mut self, replica: usize, from_s: f64, to_s: f64) -> Self {
        assert_window(from_s, to_s);
        self.events.push(ChaosEvent {
            replica,
            from_s,
            to_s,
            kind: ChaosKind::BlackHole,
        });
        self
    }

    /// Is a kill window active for `replica` at `elapsed_s`?
    #[must_use]
    pub fn kill_active(&self, replica: usize, elapsed_s: f64) -> bool {
        self.events
            .iter()
            .any(|e| e.kind == ChaosKind::Kill && e.active(replica, elapsed_s))
    }

    fn reset_active(&self, replica: usize, elapsed_s: f64) -> bool {
        self.events
            .iter()
            .any(|e| e.kind == ChaosKind::ConnReset && e.active(replica, elapsed_s))
    }

    fn black_hole_active(&self, replica: usize, elapsed_s: f64) -> bool {
        self.events
            .iter()
            .any(|e| e.kind == ChaosKind::BlackHole && e.active(replica, elapsed_s))
    }

    /// Whether connection number `conn` lands on the slow mode of a
    /// bimodal window with `slow_nth`. Pure function of (seed, conn), so
    /// two runs with the same seed slow the same connections.
    #[must_use]
    pub fn slow_conn(&self, conn: u64, slow_nth: u32) -> bool {
        splitmix64(self.seed ^ conn).is_multiple_of(u64::from(slow_nth))
    }

    /// Added latency for connection `conn` of `replica` at `elapsed_s`:
    /// the maximum over all active delay windows.
    #[must_use]
    pub fn delay_ms(&self, replica: usize, elapsed_s: f64, conn: u64) -> u64 {
        self.events
            .iter()
            .filter(|e| e.active(replica, elapsed_s))
            .map(|e| match e.kind {
                ChaosKind::Delay { ms } => ms,
                ChaosKind::BimodalDelay {
                    fast_ms,
                    slow_ms,
                    slow_nth,
                } => {
                    if self.slow_conn(conn, slow_nth) {
                        slow_ms
                    } else {
                        fast_ms
                    }
                }
                _ => 0,
            })
            .max()
            .unwrap_or(0)
    }

    /// The expanded schedule as one JSON object — embedded in
    /// `BENCH_fleet.json` so a run's artifact carries the exact fault
    /// script it survived (byte-identical per seed + builder calls).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut o = Object::new();
        o.u64("seed", self.seed);
        let mut events = String::from("[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                events.push(',');
            }
            let mut eo = Object::new();
            eo.u64("replica", e.replica as u64);
            eo.str("kind", e.kind.name());
            eo.f64("from_s", e.from_s);
            if e.to_s.is_finite() {
                eo.f64("to_s", e.to_s);
            }
            match e.kind {
                ChaosKind::Delay { ms } => eo.u64("ms", ms),
                ChaosKind::BimodalDelay {
                    fast_ms,
                    slow_ms,
                    slow_nth,
                } => {
                    eo.u64("fast_ms", fast_ms);
                    eo.u64("slow_ms", slow_ms);
                    eo.u64("slow_nth", u64::from(slow_nth));
                }
                _ => {}
            }
            events.push_str(&eo.finish());
        }
        events.push(']');
        o.raw("events", &events);
        o.finish()
    }
}

/// How often pump threads re-check stop flags and chaos windows while a
/// socket is quiet.
const PUMP_TICK: Duration = Duration::from_millis(25);

/// An in-process chaos proxy fronting one replica: a TCP forwarder that
/// applies the schedule's active windows for its replica index.
pub struct ChaosProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Bind an ephemeral local port and forward connections to `upstream`,
    /// impaired per `schedule` for `replica`, with windows measured from
    /// `epoch`.
    ///
    /// # Errors
    /// Propagates bind/spawn I/O errors.
    pub fn start(
        replica: usize,
        upstream: SocketAddr,
        schedule: Arc<ChaosSchedule>,
        epoch: Instant,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name(format!("chaos-proxy-{replica}"))
                .spawn(move || accept_loop(&listener, replica, upstream, &schedule, epoch, &stop))?
        };
        Ok(Self {
            addr,
            stop: Arc::clone(&stop),
            accept: Some(accept),
        })
    }

    /// The proxy's listen address (what the gateway should dial).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    replica: usize,
    upstream: SocketAddr,
    schedule: &Arc<ChaosSchedule>,
    epoch: Instant,
    stop: &Arc<AtomicBool>,
) {
    let mut conn_no = 0u64;
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((client, _peer)) => {
                let conn = conn_no;
                conn_no += 1;
                let elapsed = epoch.elapsed().as_secs_f64();
                if schedule.kill_active(replica, elapsed) || schedule.reset_active(replica, elapsed)
                {
                    // Closing immediately after accept is the client-visible
                    // "reset": the in-flight request dies with a broken read.
                    drop(client);
                    continue;
                }
                let Ok(server) = TcpStream::connect_timeout(&upstream, Duration::from_millis(500))
                else {
                    drop(client);
                    continue;
                };
                spawn_pumps(replica, conn, client, server, schedule, epoch, stop);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// Two relay threads per connection (client→upstream and upstream→client).
/// They are detached: each exits within one [`PUMP_TICK`] of the stop flag,
/// a kill window, or either side closing (`Shutdown::Both` cuts the twin).
fn spawn_pumps(
    replica: usize,
    conn: u64,
    client: TcpStream,
    server: TcpStream,
    schedule: &Arc<ChaosSchedule>,
    epoch: Instant,
    stop: &Arc<AtomicBool>,
) {
    let _ = client.set_nodelay(true);
    let _ = server.set_nodelay(true);
    let (Ok(client_r), Ok(server_r)) = (client.try_clone(), server.try_clone()) else {
        return;
    };
    {
        // client → upstream: plain relay, cut on kill.
        let (schedule, stop) = (Arc::clone(schedule), Arc::clone(stop));
        let _ = std::thread::Builder::new()
            .name(format!("chaos-c2u-{replica}"))
            .spawn(move || {
                pump(
                    &schedule, replica, conn, epoch, &stop, client_r, server, false,
                );
            });
    }
    {
        // upstream → client: the impaired direction (delay, black-hole).
        let (schedule, stop) = (Arc::clone(schedule), Arc::clone(stop));
        let _ = std::thread::Builder::new()
            .name(format!("chaos-u2c-{replica}"))
            .spawn(move || {
                pump(
                    &schedule, replica, conn, epoch, &stop, server_r, client, true,
                );
            });
    }
}

#[allow(clippy::too_many_arguments)]
fn pump(
    schedule: &ChaosSchedule,
    replica: usize,
    conn: u64,
    epoch: Instant,
    stop: &AtomicBool,
    mut from: TcpStream,
    mut to: TcpStream,
    impaired: bool,
) {
    let _ = from.set_read_timeout(Some(PUMP_TICK));
    let mut chunk = [0u8; 4096];
    loop {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        let elapsed = epoch.elapsed().as_secs_f64();
        if schedule.kill_active(replica, elapsed) {
            break;
        }
        match from.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                if impaired {
                    let elapsed = epoch.elapsed().as_secs_f64();
                    if schedule.black_hole_active(replica, elapsed) {
                        continue; // swallowed
                    }
                    let ms = schedule.delay_ms(replica, elapsed, conn);
                    if ms > 0 {
                        std::thread::sleep(Duration::from_millis(ms));
                    }
                }
                if to.write_all(&chunk[..n]).is_err() {
                    break;
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
    // Cut both directions so the twin pump (and the peer) unblock.
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_schedule(seed: u64) -> ChaosSchedule {
        ChaosSchedule::new(seed)
            .kill_between(1, 2.0, 3.5)
            .conn_reset(0, 0.5, 0.75)
            .delay(2, 1.0, 4.0, 30)
            .bimodal_delay(0, 1.0, 2.0, 1, 80, 4)
            .black_hole(2, 5.0, 6.0)
    }

    #[test]
    fn schedule_replays_bit_identically_per_seed() {
        assert_eq!(sample_schedule(42).to_json(), sample_schedule(42).to_json());
        assert_ne!(sample_schedule(42).to_json(), sample_schedule(43).to_json());
    }

    #[test]
    fn windows_are_half_open_and_per_replica() {
        let s = ChaosSchedule::new(7).kill_between(1, 2.0, 3.0);
        assert!(!s.kill_active(1, 1.99));
        assert!(s.kill_active(1, 2.0));
        assert!(s.kill_active(1, 2.99));
        assert!(!s.kill_active(1, 3.0), "restart at window end");
        assert!(!s.kill_active(0, 2.5), "other replicas untouched");
    }

    #[test]
    fn forever_kill_never_restarts() {
        let s = ChaosSchedule::new(7).kill(0, 1.0);
        assert!(s.kill_active(0, 1e9));
    }

    #[test]
    fn bimodal_selection_is_deterministic_and_seed_dependent() {
        let a = ChaosSchedule::new(1);
        let b = ChaosSchedule::new(1);
        let c = ChaosSchedule::new(2);
        let slow_a: Vec<bool> = (0..64).map(|n| a.slow_conn(n, 4)).collect();
        let slow_b: Vec<bool> = (0..64).map(|n| b.slow_conn(n, 4)).collect();
        let slow_c: Vec<bool> = (0..64).map(|n| c.slow_conn(n, 4)).collect();
        assert_eq!(slow_a, slow_b, "same seed, same slow connections");
        assert_ne!(slow_a, slow_c, "different seed reshuffles the slow set");
        let slow_count = slow_a.iter().filter(|&&s| s).count();
        assert!(
            (4..=28).contains(&slow_count),
            "roughly 1-in-4 slow, got {slow_count}/64"
        );
    }

    #[test]
    fn delay_takes_the_worst_active_window() {
        let s = ChaosSchedule::new(0)
            .delay(0, 0.0, 10.0, 20)
            .delay(0, 5.0, 10.0, 50);
        assert_eq!(s.delay_ms(0, 1.0, 0), 20);
        assert_eq!(s.delay_ms(0, 6.0, 0), 50);
        assert_eq!(s.delay_ms(0, 11.0, 0), 0);
        assert_eq!(s.delay_ms(1, 6.0, 0), 0);
    }

    #[test]
    fn to_json_names_every_kind() {
        let j = sample_schedule(9).to_json();
        for kind in ["kill", "conn_reset", "delay", "bimodal_delay", "black_hole"] {
            assert!(j.contains(kind), "{kind} missing from {j}");
        }
        assert!(!j.contains("inf"), "infinite windows must omit to_s: {j}");
    }
}
