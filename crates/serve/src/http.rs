//! Minimal HTTP/1.1 framing: incremental parsing for the event loop,
//! blocking helpers for clients.
//!
//! This is not a general HTTP implementation — it is the smallest subset
//! the planning daemon and its load generator need: request-line + header
//! parsing, `Content-Length`-framed bodies, keep-alive by default with
//! `Connection: close` honored, and single-buffer responses (one write
//! per response makes responses atomic from the peer's perspective).
//! Chunked encoding, trailers, pipelining, and TLS are deliberately out
//! of scope.
//!
//! The server side parses **incrementally** via [`try_parse`]: the event
//! loop appends whatever the nonblocking socket yields to a per-connection
//! buffer and asks whether a complete request is in it yet — no thread
//! ever blocks on a slow or idle peer. The blocking [`read_request`] path
//! remains for tests and simple tools; the client half
//! ([`read_response`]/[`format_request`]) is used by the load generator.

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Upper bound on the request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on a request body.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// One parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method, e.g. `GET`, `POST`.
    pub method: String,
    /// Request path (query strings are not split off; the API does not use
    /// them).
    pub path: String,
    /// Headers with lowercased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First header value with lowercased name `name`.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the connection should close after this request
    /// (`Connection: close`, or an HTTP/1.0 peer without keep-alive).
    #[must_use]
    pub fn wants_close(&self) -> bool {
        matches!(self.header("connection"), Some(v) if v.eq_ignore_ascii_case("close"))
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed the connection before sending any bytes — the
    /// normal end of a keep-alive session, not an error.
    Closed,
    /// The socket read timed out (idle keep-alive connection or a stalled
    /// sender).
    TimedOut,
    /// The bytes on the wire were not a well-formed request, or exceeded
    /// the head/body caps.
    Malformed(String),
    /// Transport failure.
    Io(io::Error),
}

/// Read and parse one request from `stream`. Blocking; honors the stream's
/// configured read timeout.
///
/// # Errors
/// See [`ReadError`]; `Closed` on clean EOF before the first byte.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, ReadError> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(ReadError::Malformed("request head too large".into()));
        }
        let n = stream.read(&mut chunk).map_err(classify_io)?;
        if n == 0 {
            if buf.is_empty() {
                return Err(ReadError::Closed);
            }
            return Err(ReadError::Malformed("EOF inside request head".into()));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let (method, path, headers) = parse_head(&buf[..head_end]).map_err(ReadError::Malformed)?;
    let content_length = parse_content_length(&headers).map_err(ReadError::Malformed)?;

    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk).map_err(classify_io)?;
        if n == 0 {
            return Err(ReadError::Malformed("EOF inside request body".into()));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);

    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

/// Try to parse one complete request from the front of `buf` (the event
/// loop's per-connection read buffer).
///
/// Returns `Ok(Some((request, consumed)))` when a full request (head +
/// body) is present — the caller drains `consumed` bytes and may call
/// again for a pipelined follow-up. Returns `Ok(None)` when more bytes
/// are needed.
///
/// # Errors
/// A message describing why the buffered bytes can never become a valid
/// request (malformed head, oversized head/body) — the connection should
/// answer 400 and close.
pub fn try_parse(buf: &[u8]) -> Result<Option<(Request, usize)>, String> {
    let Some(head_end) = find_head_end(buf) else {
        if buf.len() > MAX_HEAD_BYTES {
            return Err("request head too large".into());
        }
        return Ok(None);
    };
    let (method, path, headers) = parse_head(&buf[..head_end])?;
    let content_length = parse_content_length(&headers)?;
    let consumed = head_end + 4 + content_length;
    if buf.len() < consumed {
        return Ok(None);
    }
    let body = buf[head_end + 4..consumed].to_vec();
    Ok(Some((
        Request {
            method,
            path,
            headers,
            body,
        },
        consumed,
    )))
}

/// Parsed request head: `(method, path, lowercased headers)`.
type ParsedHead = (String, String, Vec<(String, String)>);

/// Parse a request head (everything before the `\r\n\r\n`).
fn parse_head(head: &[u8]) -> Result<ParsedHead, String> {
    let head = std::str::from_utf8(head).map_err(|_| "request head is not UTF-8".to_owned())?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or_else(|| "empty request".to_owned())?;
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && p.starts_with('/') => (m, p, v),
        _ => return Err(format!("bad request line {request_line:?}")),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(format!("bad version {version:?}"));
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (k, v) = line
            .split_once(':')
            .ok_or_else(|| format!("bad header {line:?}"))?;
        headers.push((k.trim().to_ascii_lowercase(), v.trim().to_owned()));
    }
    Ok((method.to_owned(), path.to_owned(), headers))
}

fn parse_content_length(headers: &[(String, String)]) -> Result<usize, String> {
    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| format!("bad content-length {v:?}"))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err("request body too large".into());
    }
    Ok(content_length)
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn classify_io(e: io::Error) -> ReadError {
    match e.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => ReadError::TimedOut,
        _ => ReadError::Io(e),
    }
}

/// One response to write. Always JSON-bodied (the API speaks nothing
/// else). `Clone` so a single-flight error can answer every waiter.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// JSON body text.
    pub body: String,
    /// Optional `Retry-After` header (seconds) — set on 503 rejections.
    pub retry_after_s: Option<u64>,
    /// Whether to advertise and perform connection close.
    pub close: bool,
}

impl Response {
    /// A JSON response with `status`.
    #[must_use]
    pub fn json(status: u16, body: String) -> Self {
        Self {
            status,
            body,
            retry_after_s: None,
            close: false,
        }
    }

    /// A JSON error response `{"error": message}`.
    #[must_use]
    pub fn error(status: u16, message: &str) -> Self {
        let mut o = hecmix_obs::json::Object::new();
        o.str("error", message);
        Self::json(status, o.finish())
    }

    /// Serialize to one contiguous wire buffer (status line + headers +
    /// body). The event loop writes this incrementally as the socket
    /// accepts bytes.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = String::with_capacity(self.body.len() + 128);
        out.push_str(&format!(
            "HTTP/1.1 {} {}\r\n",
            self.status,
            status_text(self.status)
        ));
        out.push_str("Content-Type: application/json\r\n");
        out.push_str(&format!("Content-Length: {}\r\n", self.body.len()));
        if let Some(s) = self.retry_after_s {
            out.push_str(&format!("Retry-After: {s}\r\n"));
        }
        out.push_str(if self.close {
            "Connection: close\r\n"
        } else {
            "Connection: keep-alive\r\n"
        });
        out.push_str("\r\n");
        out.push_str(&self.body);
        out.into_bytes()
    }

    /// Serialize and send the whole response as a single `write_all`
    /// (blocking; used for admission rejections and by tests).
    ///
    /// # Errors
    /// Propagates the underlying socket error.
    pub fn write_to(&self, stream: &mut TcpStream) -> io::Result<()> {
        stream.write_all(&self.to_bytes())?;
        stream.flush()
    }
}

/// Reason phrase for the status codes the daemon emits.
#[must_use]
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// A parsed client-side response: status, lowercased headers, body.
pub type ClientResponse = (u16, Vec<(String, String)>, Vec<u8>);

/// Client-side half: read one response, returning `(status, headers,
/// body)`. Used by the load generator and the integration tests.
///
/// # Errors
/// I/O errors and malformed responses surface as `io::Error`.
pub fn read_response(stream: &mut TcpStream) -> io::Result<ClientResponse> {
    let bad = |m: &str| io::Error::new(io::ErrorKind::InvalidData, m.to_owned());
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(bad("response head too large"));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(bad("EOF inside response head"));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head =
        std::str::from_utf8(&buf[..head_end]).map_err(|_| bad("response head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or_else(|| bad("empty response"))?;
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("bad status line"))?;
    let mut headers = Vec::new();
    for line in lines {
        if let Some((k, v)) = line.split_once(':') {
            headers.push((k.trim().to_ascii_lowercase(), v.trim().to_owned()));
        }
    }
    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok())
        .unwrap_or(0);
    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(bad("EOF inside response body"));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok((status, headers, body))
}

/// Format a request the way the load generator sends them.
#[must_use]
pub fn format_request(method: &str, path: &str, body: &str) -> String {
    format!(
        "{method} {path} HTTP/1.1\r\nHost: hecmix\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn try_parse_is_incremental_over_arbitrary_splits() {
        let wire = format_request("POST", "/plan", r#"{"workload":"ep"}"#).into_bytes();
        // Feeding any prefix must yield None; the full buffer must parse.
        for cut in 0..wire.len() {
            assert!(
                try_parse(&wire[..cut])
                    .expect("prefix never malformed")
                    .is_none(),
                "prefix of {cut} bytes parsed early"
            );
        }
        let (req, consumed) = try_parse(&wire)
            .expect("well-formed")
            .expect("complete request");
        assert_eq!(consumed, wire.len());
        assert_eq!((req.method.as_str(), req.path.as_str()), ("POST", "/plan"));
        assert_eq!(req.body, br#"{"workload":"ep"}"#);
    }

    #[test]
    fn try_parse_leaves_pipelined_bytes_for_the_next_call() {
        let mut wire = format_request("GET", "/healthz", "").into_bytes();
        let second = format_request("GET", "/statz", "").into_bytes();
        wire.extend_from_slice(&second);
        let (req, consumed) = try_parse(&wire).expect("ok").expect("first");
        assert_eq!(req.path, "/healthz");
        let (req2, consumed2) = try_parse(&wire[consumed..]).expect("ok").expect("second");
        assert_eq!(req2.path, "/statz");
        assert_eq!(consumed + consumed2, wire.len());
    }

    #[test]
    fn try_parse_rejects_hopeless_buffers() {
        assert!(
            try_parse(b"NOT A REQUEST\r\n\r\n").is_err(),
            "bad request line"
        );
        let oversized = vec![b'x'; MAX_HEAD_BYTES + 1];
        assert!(try_parse(&oversized).is_err(), "unbounded head");
        let huge_body = format!(
            "POST /plan HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(try_parse(huge_body.as_bytes()).is_err(), "oversized body");
    }

    #[test]
    fn response_bytes_round_trip_headers() {
        let mut resp = Response::error(503, "busy");
        resp.retry_after_s = Some(2);
        resp.close = true;
        let text = String::from_utf8(resp.to_bytes()).expect("ascii");
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Retry-After: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("{\"error\":\"busy\"}"));
    }
}
