//! The replica fleet: health-checked routing, circuit breakers, retries,
//! hedging, and failover re-warm for the gateway.
//!
//! A [`Fleet`] is the gateway's view of N replica daemons. Routing is by
//! the consistent-hash [`Ring`] over the *plan-cache key* (the hash of
//! the model bundles and the compute spec — the same key the replicas
//! memoize under), so each replica's LRU holds a disjoint shard of the
//! hot set. Around that core the fleet layers four defenses, each
//! observable through its own event:
//!
//! * **Health**: an active prober `GET /healthz`es every replica on an
//!   interval, and every forwarded attempt reports passively into the
//!   same accounting. `fail_threshold` consecutive failures mark a
//!   replica down, `revive_threshold` consecutive successes bring it
//!   back ([`hecmix_obs::Event::ReplicaHealthChange`]).
//! * **Circuit breakers**: per replica, closed → open on consecutive
//!   forward failures, half-open after a cooldown, closed again on the
//!   first trial success ([`hecmix_obs::Event::BreakerTransition`]). An
//!   open breaker takes the replica out of the candidate rotation without
//!   waiting for the health prober.
//! * **Retries**: bounded attempts cascade along the ring's preference
//!   order with exponential backoff, deterministic jitter (seeded
//!   splitmix64 of `seed ⊕ key ⊕ attempt` — no RNG state, replayable),
//!   and `Retry-After` honored as a floor
//!   ([`hecmix_obs::Event::RequestRetry`]).
//! * **Hedging**: if the primary attempt outlives an adaptive delay (the
//!   fleet-wide p95 of upstream latencies, clamped to
//!   `[hedge_min, hedge_max]`), a duplicate races to the next distinct
//!   healthy replica and the first answer wins
//!   ([`hecmix_obs::Event::RequestHedged`]). One slow replica cannot own
//!   the tail.
//!
//! When a replica is marked down, its hash range implicitly re-maps to
//! the next preference entry — and the fleet *re-warms* the dead
//! replica's recorded hot keys through the normal forward path, so the
//! new owners compute (or single-flight-coalesce) each displaced plan
//! once, before clients ask ([`hecmix_obs::Event::FailoverRewarm`]). The
//! time from failover to the first cache hit on a displaced key is
//! tracked as `first_rehit_ms`, the number `BENCH_fleet.json` gates on.

use std::collections::HashSet;
use std::collections::VecDeque;
use std::io::Write as _;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use hecmix_obs::json::Object;
use hecmix_obs::{emit, Event};

use crate::hist::{self, Histogram};
use crate::http::{self, Response};
use crate::router::{splitmix64, Ring};

/// Tunables for one gateway's fleet.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Upstream replica addresses (`HOST:PORT`), index = replica id.
    pub replicas: Vec<String>,
    /// Active `/healthz` probe interval.
    pub probe_interval: Duration,
    /// Connect + read timeout for one probe.
    pub probe_timeout: Duration,
    /// Consecutive failures (probe or forward) that mark a replica down.
    pub fail_threshold: u32,
    /// Consecutive successes that mark a downed replica healthy again.
    pub revive_threshold: u32,
    /// How long an open breaker waits before letting a half-open trial by.
    pub breaker_cooldown: Duration,
    /// Consecutive forward failures that trip a breaker open.
    pub breaker_threshold: u32,
    /// Total upstream attempts per forwarded request (first try included).
    pub max_attempts: u32,
    /// Exponential backoff base, milliseconds (doubles per retry).
    pub backoff_base_ms: u64,
    /// Backoff ceiling, milliseconds.
    pub backoff_cap_ms: u64,
    /// Cap on how much of an upstream `Retry-After` is honored, ms — a
    /// recovering replica must not park the gateway for whole seconds.
    pub retry_after_cap_ms: u64,
    /// Floor for the adaptive hedge delay.
    pub hedge_min: Duration,
    /// Ceiling for the adaptive hedge delay (also used until enough
    /// latency samples exist to estimate a p95).
    pub hedge_max: Duration,
    /// Hard deadline for one raced attempt set (primary + hedge).
    pub attempt_timeout: Duration,
    /// TCP connect timeout per upstream attempt.
    pub connect_timeout: Duration,
    /// Virtual nodes per replica on the hash ring.
    pub vnodes: usize,
    /// Hot keys remembered per replica for failover re-warm.
    pub hot_keys_per_replica: usize,
    /// Seed for deterministic retry jitter.
    pub seed: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            replicas: Vec::new(),
            probe_interval: Duration::from_millis(250),
            probe_timeout: Duration::from_millis(500),
            fail_threshold: 2,
            revive_threshold: 2,
            breaker_cooldown: Duration::from_secs(1),
            breaker_threshold: 3,
            max_attempts: 4,
            backoff_base_ms: 10,
            backoff_cap_ms: 200,
            retry_after_cap_ms: 500,
            hedge_min: Duration::from_millis(20),
            hedge_max: Duration::from_millis(500),
            attempt_timeout: Duration::from_secs(2),
            connect_timeout: Duration::from_millis(250),
            vnodes: 64,
            hot_keys_per_replica: 64,
            seed: 42,
        }
    }
}

/// Circuit-breaker states (names as emitted in telemetry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerState {
    Closed,
    Open,
    HalfOpen,
}

impl BreakerState {
    fn name(self) -> &'static str {
        match self {
            Self::Closed => "closed",
            Self::Open => "open",
            Self::HalfOpen => "half_open",
        }
    }
}

struct Breaker {
    state: BreakerState,
    consec_failures: u32,
    opened_at: Option<Instant>,
}

impl Breaker {
    fn new() -> Self {
        Self {
            state: BreakerState::Closed,
            consec_failures: 0,
            opened_at: None,
        }
    }

    fn transition(&mut self, replica: usize, to: BreakerState) {
        if self.state == to {
            return;
        }
        let (from, failures) = (self.state, self.consec_failures);
        emit(|| Event::BreakerTransition {
            replica,
            from: from.name(),
            to: to.name(),
            failures,
        });
        self.state = to;
        self.opened_at = (to == BreakerState::Open).then(Instant::now);
    }

    /// May a request be sent through? Open breakers flip to half-open
    /// (one trial allowed) once the cooldown has elapsed.
    fn allow(&mut self, replica: usize, cooldown: Duration) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                if self.opened_at.is_some_and(|t| t.elapsed() >= cooldown) {
                    self.transition(replica, BreakerState::HalfOpen);
                    true
                } else {
                    false
                }
            }
        }
    }

    fn on_success(&mut self, replica: usize) {
        self.consec_failures = 0;
        self.transition(replica, BreakerState::Closed);
    }

    fn on_failure(&mut self, replica: usize, threshold: u32) {
        self.consec_failures += 1;
        match self.state {
            BreakerState::HalfOpen => self.transition(replica, BreakerState::Open),
            BreakerState::Closed if self.consec_failures >= threshold => {
                self.transition(replica, BreakerState::Open);
            }
            _ => {}
        }
    }
}

/// A hot request remembered for failover re-warm: enough to replay it.
#[derive(Clone)]
struct HotReq {
    path: &'static str,
    body: String,
}

/// Gateway-side state for one replica.
struct Replica {
    addr: String,
    sock: SocketAddr,
    healthy: AtomicBool,
    consec_fail: AtomicU64,
    consec_ok: AtomicU64,
    breaker: Mutex<Breaker>,
    /// Forwarded requests this replica answered definitively.
    forwards: AtomicU64,
    /// Transport/5xx failures attributed to this replica.
    failures: AtomicU64,
    /// Recently served keys, oldest first (bounded; drained on failover).
    hot: Mutex<VecDeque<(u64, HotReq)>>,
}

/// Keys displaced by a failover, watched for their first post-rewarm
/// cache hit.
struct RehitWatch {
    since: Instant,
    keys: HashSet<u64>,
}

/// One outcome of one upstream attempt. (Latency accounting happens in
/// the attempt thread itself, so losing racers still contribute.)
struct AttemptOutcome {
    replica: usize,
    result: Result<(u16, Option<u64>, Vec<u8>), String>,
}

/// The gateway's replica fleet. Shared (`Arc`) between the compute pool
/// (which runs [`Fleet::forward`]), the prober thread, and `/statz`.
pub struct Fleet {
    cfg: FleetConfig,
    ring: Ring,
    replicas: Vec<Replica>,
    upstream_hist: Histogram,
    stop: AtomicBool,
    prober: Mutex<Option<JoinHandle<()>>>,
    rehit: Mutex<Option<RehitWatch>>,
    /// Telemetry counters (exposed via `/statz` and `BENCH_fleet.json`).
    retries: AtomicU64,
    hedges: AtomicU64,
    failovers: AtomicU64,
    rewarmed: AtomicU64,
    /// Failover→first displaced-key cache hit, microseconds (0 = none yet).
    first_rehit_us: AtomicU64,
}

impl Fleet {
    /// Build a fleet over `cfg.replicas`. Addresses are resolved once.
    ///
    /// # Errors
    /// Fails when `cfg.replicas` is empty or an address does not resolve.
    pub fn new(cfg: FleetConfig) -> std::io::Result<Self> {
        if cfg.replicas.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "fleet needs at least one replica",
            ));
        }
        let mut replicas = Vec::with_capacity(cfg.replicas.len());
        for addr in &cfg.replicas {
            let sock = addr.to_socket_addrs()?.next().ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    format!("replica address `{addr}` resolves to nothing"),
                )
            })?;
            replicas.push(Replica {
                addr: addr.clone(),
                sock,
                healthy: AtomicBool::new(true),
                consec_fail: AtomicU64::new(0),
                consec_ok: AtomicU64::new(0),
                breaker: Mutex::new(Breaker::new()),
                forwards: AtomicU64::new(0),
                failures: AtomicU64::new(0),
                hot: Mutex::new(VecDeque::new()),
            });
        }
        let ring = Ring::new(replicas.len(), cfg.vnodes.max(1));
        Ok(Self {
            cfg,
            ring,
            replicas,
            upstream_hist: Histogram::new(),
            stop: AtomicBool::new(false),
            prober: Mutex::new(None),
            rehit: Mutex::new(None),
            retries: AtomicU64::new(0),
            hedges: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            rewarmed: AtomicU64::new(0),
            first_rehit_us: AtomicU64::new(0),
        })
    }

    /// Number of replicas.
    #[must_use]
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// Replicas currently considered healthy.
    #[must_use]
    pub fn healthy_count(&self) -> usize {
        self.replicas
            .iter()
            .filter(|r| r.healthy.load(Ordering::Relaxed))
            .count()
    }

    /// The ring owner of `key` (health-blind; tests use it to aim
    /// requests at a specific replica).
    #[must_use]
    pub fn owner(&self, key: u64) -> usize {
        self.ring.owner(key)
    }

    /// Retries fired so far.
    #[must_use]
    pub fn retry_count(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Hedged duplicates fired so far.
    #[must_use]
    pub fn hedge_count(&self) -> u64 {
        self.hedges.load(Ordering::Relaxed)
    }

    /// Healthy→down transitions observed so far.
    #[must_use]
    pub fn failover_count(&self) -> u64 {
        self.failovers.load(Ordering::Relaxed)
    }

    /// Hot keys successfully re-warmed onto new owners after failovers.
    #[must_use]
    pub fn rewarmed_count(&self) -> u64 {
        self.rewarmed.load(Ordering::Relaxed)
    }

    /// Milliseconds from the first failover to the first cache hit on a
    /// displaced key, once observed.
    #[must_use]
    pub fn first_rehit_ms(&self) -> Option<f64> {
        match self.first_rehit_us.load(Ordering::Relaxed) {
            0 => None,
            us => Some(us as f64 / 1e3),
        }
    }

    /// Spawn the active health prober. Idempotent; paired with
    /// [`Fleet::stop`].
    pub fn start_probing(self: &Arc<Self>) {
        let mut slot = self.prober.lock().expect("prober slot poisoned");
        if slot.is_some() {
            return;
        }
        let fleet = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name("hecmix-fleet-probe".to_owned())
            .spawn(move || {
                while !fleet.stop.load(Ordering::Relaxed) {
                    fleet.probe_all();
                    // Sleep in short ticks so stop() returns promptly.
                    let deadline = Instant::now() + fleet.cfg.probe_interval;
                    while Instant::now() < deadline && !fleet.stop.load(Ordering::Relaxed) {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                }
            })
            .expect("spawn prober");
        *slot = Some(handle);
    }

    /// Stop and join the prober thread.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
        let handle = self.prober.lock().expect("prober slot poisoned").take();
        if let Some(h) = handle {
            let _ = h.join();
        }
    }

    fn probe_all(self: &Arc<Self>) {
        for idx in 0..self.replicas.len() {
            let r = &self.replicas[idx];
            let outcome = attempt_once(
                &r.sock,
                "GET",
                "/healthz",
                "",
                self.cfg.probe_timeout,
                self.cfg.probe_timeout,
            );
            match outcome {
                Ok((status, _, _)) if status < 500 => self.note_success(idx, None),
                Ok((status, _, _)) => self.note_failure(idx, &format!("probe status {status}")),
                Err(why) => self.note_failure(idx, &format!("probe {why}")),
            }
        }
    }

    // ---- health accounting (shared by probes and forwards) ----

    fn note_success(self: &Arc<Self>, idx: usize, latency: Option<Duration>) {
        let r = &self.replicas[idx];
        if let Some(lat) = latency {
            self.upstream_hist.record(lat.as_nanos() as u64);
            r.forwards.fetch_add(1, Ordering::Relaxed);
        }
        r.breaker.lock().expect("breaker poisoned").on_success(idx);
        r.consec_fail.store(0, Ordering::Relaxed);
        let ok = r.consec_ok.fetch_add(1, Ordering::Relaxed) + 1;
        if !r.healthy.load(Ordering::Relaxed) && ok >= u64::from(self.cfg.revive_threshold) {
            r.healthy.store(true, Ordering::Relaxed);
            let (addr, consecutive) = (r.addr.clone(), ok as u32);
            emit(|| Event::ReplicaHealthChange {
                replica: idx,
                addr,
                healthy: true,
                reason: "revive threshold reached".to_owned(),
                consecutive,
            });
        }
    }

    fn note_failure(self: &Arc<Self>, idx: usize, why: &str) {
        let r = &self.replicas[idx];
        r.failures.fetch_add(1, Ordering::Relaxed);
        r.breaker
            .lock()
            .expect("breaker poisoned")
            .on_failure(idx, self.cfg.breaker_threshold);
        r.consec_ok.store(0, Ordering::Relaxed);
        let fails = r.consec_fail.fetch_add(1, Ordering::Relaxed) + 1;
        if r.healthy.load(Ordering::Relaxed) && fails >= u64::from(self.cfg.fail_threshold) {
            r.healthy.store(false, Ordering::Relaxed);
            self.failovers.fetch_add(1, Ordering::Relaxed);
            let (addr, reason, consecutive) = (r.addr.clone(), why.to_owned(), fails as u32);
            emit(|| Event::ReplicaHealthChange {
                replica: idx,
                addr,
                healthy: false,
                reason,
                consecutive,
            });
            self.failover(idx);
        }
    }

    /// A replica just went down: arm the rehit watch over its displaced
    /// hot keys and re-warm them onto their new ring owners in the
    /// background (the replicas' own single-flight absorbs any overlap
    /// with live client traffic).
    fn failover(self: &Arc<Self>, idx: usize) {
        let displaced: Vec<(u64, HotReq)> = self.replicas[idx]
            .hot
            .lock()
            .expect("hot set poisoned")
            .drain(..)
            .collect();
        {
            let mut watch = self.rehit.lock().expect("rehit watch poisoned");
            if watch.is_none() {
                *watch = Some(RehitWatch {
                    since: Instant::now(),
                    keys: displaced.iter().map(|(k, _)| *k).collect(),
                });
            }
        }
        if displaced.is_empty() {
            emit(|| Event::FailoverRewarm {
                from_replica: idx,
                keys: 0,
                rewarmed: 0,
                wall_s: 0.0,
            });
            return;
        }
        let fleet = Arc::clone(self);
        let _ = std::thread::Builder::new()
            .name("hecmix-fleet-rewarm".to_owned())
            .spawn(move || {
                let t0 = Instant::now();
                let keys = displaced.len();
                let mut ok = 0usize;
                for (key, req) in displaced {
                    if fleet.stop.load(Ordering::Relaxed) {
                        break;
                    }
                    if fleet.forward(key, req.path, &req.body).status == 200 {
                        ok += 1;
                    }
                }
                fleet.rewarmed.fetch_add(ok as u64, Ordering::Relaxed);
                let wall_s = t0.elapsed().as_secs_f64();
                emit(|| Event::FailoverRewarm {
                    from_replica: idx,
                    keys,
                    rewarmed: ok,
                    wall_s,
                });
            });
    }

    // ---- the forward path ----

    /// Candidate replicas for `key`: the ring preference order filtered
    /// to healthy replicas, or (when nothing is healthy) the raw
    /// preference order — trying a flapping replica beats refusing.
    fn candidates(&self, key: u64) -> Vec<usize> {
        let pref = self.ring.preference(key, self.replicas.len());
        let healthy: Vec<usize> = pref
            .iter()
            .copied()
            .filter(|&r| self.replicas[r].healthy.load(Ordering::Relaxed))
            .collect();
        if healthy.is_empty() {
            pref
        } else {
            healthy
        }
    }

    /// First candidate (rotated by `attempt`) whose breaker lets traffic
    /// through.
    fn pick(&self, cands: &[usize], attempt: u32) -> Option<usize> {
        let cooldown = self.cfg.breaker_cooldown;
        (0..cands.len())
            .map(|i| cands[(attempt as usize + i) % cands.len()])
            .find(|&r| {
                self.replicas[r]
                    .breaker
                    .lock()
                    .expect("breaker poisoned")
                    .allow(r, cooldown)
            })
    }

    /// Deterministic jittered backoff before retry `attempt` (≥ 1):
    /// exponential base capped at `backoff_cap_ms`, floored by any
    /// upstream `Retry-After` hint (itself capped), then jittered to
    /// `[base/2, 1.5·base)` by a seeded hash so synchronized clients
    /// fan out instead of stampeding.
    fn backoff_ms(&self, key: u64, attempt: u32, retry_after_s: Option<u64>) -> u64 {
        let exp = self
            .cfg
            .backoff_base_ms
            .saturating_mul(1 << attempt.saturating_sub(1).min(6))
            .min(self.cfg.backoff_cap_ms);
        let base = match retry_after_s {
            Some(ra) => exp.max(ra.saturating_mul(1000).min(self.cfg.retry_after_cap_ms)),
            None => exp,
        }
        .max(1);
        let jitter = splitmix64(self.cfg.seed ^ key ^ u64::from(attempt)) % base;
        base / 2 + jitter
    }

    /// The adaptive hedge delay: fleet-wide p95 of upstream latencies,
    /// clamped to `[hedge_min, hedge_max]`; `hedge_max` until enough
    /// samples exist for the estimate to mean anything.
    fn hedge_delay(&self) -> Duration {
        let lat = hist::summarize(std::slice::from_ref(&self.upstream_hist));
        if lat.count < 32 {
            return self.cfg.hedge_max;
        }
        Duration::from_nanos(lat.p95).clamp(self.cfg.hedge_min, self.cfg.hedge_max)
    }

    /// Forward one request through the fleet: bounded retries along the
    /// candidate rotation, each attempt raced against a hedged duplicate
    /// if it outlives the adaptive delay. Returns the upstream answer
    /// (2xx/4xx pass through) or a gateway `503` + `Retry-After` once
    /// every attempt is exhausted. Runs on a compute-pool thread.
    pub fn forward(self: &Arc<Self>, key: u64, path: &'static str, body: &str) -> Response {
        let mut last_why = String::from("no candidate replica");
        let mut retry_after_hint: Option<u64> = None;
        for attempt in 0..self.cfg.max_attempts {
            let cands = self.candidates(key);
            let Some(primary) = self.pick(&cands, attempt) else {
                last_why = "all breakers open".to_owned();
                std::thread::sleep(Duration::from_millis(self.backoff_ms(
                    key,
                    attempt.max(1),
                    retry_after_hint,
                )));
                continue;
            };
            if attempt > 0 {
                let backoff = self.backoff_ms(key, attempt, retry_after_hint);
                self.retries.fetch_add(1, Ordering::Relaxed);
                {
                    let (path, why) = (path.to_owned(), last_why.clone());
                    emit(move || Event::RequestRetry {
                        path,
                        replica: primary,
                        attempt,
                        backoff_ms: backoff,
                        why,
                    });
                }
                std::thread::sleep(Duration::from_millis(backoff));
            }
            let hedge = self.pick_hedge(&cands, primary);
            match self.race(primary, hedge, path, body) {
                Ok(outcome) => {
                    let (status, retry_after, resp_body) =
                        outcome.result.expect("race returns transport successes");
                    if status == 503 {
                        // Admission backpressure, not death: honor the
                        // advertised Retry-After on the next backoff.
                        retry_after_hint = retry_after;
                        last_why = "upstream 503".to_owned();
                        continue;
                    }
                    if status >= 500 {
                        last_why = format!("upstream status {status}");
                        continue;
                    }
                    let text = String::from_utf8_lossy(&resp_body).into_owned();
                    if status == 200 {
                        self.record_hot(outcome.replica, key, path, body);
                        self.check_rehit(key, &text);
                    }
                    let mut resp = Response::json(status, text);
                    resp.retry_after_s = retry_after;
                    return resp;
                }
                Err(why) => {
                    last_why = why;
                }
            }
        }
        let mut resp = Response::error(503, &format!("fleet exhausted retries: {last_why}"));
        resp.retry_after_s = Some(1);
        resp
    }

    /// The next distinct breaker-approved candidate after `primary`.
    fn pick_hedge(&self, cands: &[usize], primary: usize) -> Option<usize> {
        let cooldown = self.cfg.breaker_cooldown;
        cands.iter().copied().find(|&r| {
            r != primary
                && self.replicas[r]
                    .breaker
                    .lock()
                    .expect("breaker poisoned")
                    .allow(r, cooldown)
        })
    }

    /// Race one attempt against an optional hedge: the primary gets
    /// [`Fleet::hedge_delay`] to answer alone; then the hedge (if any)
    /// fires and the first transport-level success wins. Health and
    /// breaker accounting happens inside the attempt threads, so even a
    /// losing attempt's failure is recorded.
    fn race(
        self: &Arc<Self>,
        primary: usize,
        hedge: Option<usize>,
        path: &'static str,
        body: &str,
    ) -> Result<AttemptOutcome, String> {
        let (tx, rx) = mpsc::channel::<AttemptOutcome>();
        self.spawn_attempt(primary, path, body, tx.clone());
        let mut in_flight = 1usize;
        let mut received = 0usize;
        let mut last_err: Option<String> = None;

        match rx.recv_timeout(self.hedge_delay()) {
            Ok(outcome) => {
                received += 1;
                match outcome.result {
                    Ok(_) => return Ok(outcome),
                    Err(ref e) => last_err = Some(e.clone()),
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                if let Some(h) = hedge {
                    let delay_ms = self.hedge_delay().as_millis() as u64;
                    self.hedges.fetch_add(1, Ordering::Relaxed);
                    {
                        let path = path.to_owned();
                        emit(move || Event::RequestHedged {
                            path,
                            primary,
                            hedge: h,
                            delay_ms,
                        });
                    }
                    self.spawn_attempt(h, path, body, tx.clone());
                    in_flight += 1;
                }
            }
            Err(RecvTimeoutError::Disconnected) => {}
        }
        drop(tx);

        let deadline = Instant::now() + self.cfg.attempt_timeout;
        while received < in_flight {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                break;
            }
            match rx.recv_timeout(remaining) {
                Ok(outcome) => {
                    received += 1;
                    match outcome.result {
                        Ok(_) => return Ok(outcome),
                        Err(ref e) => last_err = Some(e.clone()),
                    }
                }
                Err(_) => break,
            }
        }
        Err(last_err.unwrap_or_else(|| "attempt timeout".to_owned()))
    }

    /// One upstream attempt on its own thread; reports into the fleet's
    /// health accounting and sends its outcome back on `tx`. The send can
    /// fail (the race already has a winner) — accounting still happened.
    fn spawn_attempt(
        self: &Arc<Self>,
        replica: usize,
        path: &'static str,
        body: &str,
        tx: mpsc::Sender<AttemptOutcome>,
    ) {
        let fleet = Arc::clone(self);
        let body = body.to_owned();
        let _ = std::thread::Builder::new()
            .name("hecmix-fleet-attempt".to_owned())
            .spawn(move || {
                let t0 = Instant::now();
                let result = attempt_once(
                    &fleet.replicas[replica].sock,
                    "POST",
                    path,
                    &body,
                    fleet.cfg.connect_timeout,
                    fleet.cfg.attempt_timeout,
                );
                let latency = t0.elapsed();
                match &result {
                    Ok((status, ..)) if *status == 503 => {
                        // Alive but shedding: neither a health nor a
                        // breaker signal.
                    }
                    Ok((status, ..)) if *status >= 500 => {
                        fleet.note_failure(replica, &format!("status {status}"));
                    }
                    Ok(_) => fleet.note_success(replica, Some(latency)),
                    Err(why) => {
                        let why = why.clone();
                        fleet.note_failure(replica, &why);
                    }
                }
                let _ = tx.send(AttemptOutcome { replica, result });
            });
    }

    /// Remember that `replica` served `key` (bounded LRU; the newest keys
    /// are what failover re-warms).
    fn record_hot(&self, replica: usize, key: u64, path: &'static str, body: &str) {
        let mut hot = self.replicas[replica].hot.lock().expect("hot set poisoned");
        if let Some(pos) = hot.iter().position(|(k, _)| *k == key) {
            hot.remove(pos);
        }
        hot.push_back((
            key,
            HotReq {
                path,
                body: body.to_owned(),
            },
        ));
        while hot.len() > self.cfg.hot_keys_per_replica.max(1) {
            hot.pop_front();
        }
    }

    /// If a rehit watch is armed and this response is a cache hit on a
    /// displaced key, the cold-start cliff is officially closed — record
    /// the failover→rehit time.
    fn check_rehit(&self, key: u64, body: &str) {
        if !body.contains("\"cached\":true") {
            return;
        }
        let mut watch = self.rehit.lock().expect("rehit watch poisoned");
        let Some(w) = watch.as_ref() else { return };
        if !w.keys.contains(&key) {
            return;
        }
        let us = (w.since.elapsed().as_micros() as u64).max(1);
        let _ = self
            .first_rehit_us
            .compare_exchange(0, us, Ordering::Relaxed, Ordering::Relaxed);
        *watch = None;
    }

    // ---- fan-out control plane ----

    /// Broadcast `POST /reload` to every replica (serially; reloads are
    /// heavy). Answers 200 only if every replica reloaded.
    #[must_use]
    pub fn broadcast_reload(&self) -> Response {
        let mut rows = String::from("[");
        let mut all_ok = true;
        for (idx, r) in self.replicas.iter().enumerate() {
            let status = match attempt_once(
                &r.sock,
                "POST",
                "/reload",
                "",
                self.cfg.connect_timeout,
                Duration::from_secs(60),
            ) {
                Ok((status, ..)) => status,
                Err(_) => 0,
            };
            all_ok &= status == 200;
            if idx > 0 {
                rows.push(',');
            }
            let mut ro = Object::new();
            ro.u64("replica", idx as u64);
            ro.str("addr", &r.addr);
            ro.u64("status", u64::from(status));
            rows.push_str(&ro.finish());
        }
        rows.push(']');
        let mut o = Object::new();
        o.bool("reloaded", all_ok);
        o.u64("replicas", self.replicas.len() as u64);
        o.raw("results", &rows);
        Response::json(if all_ok { 200 } else { 502 }, o.finish())
    }

    /// The fleet section of the gateway's `/statz` (one JSON object).
    #[must_use]
    pub fn statz_object(&self) -> String {
        let lat = hist::summarize(std::slice::from_ref(&self.upstream_hist));
        let mut o = Object::new();
        o.u64("replicas", self.replicas.len() as u64);
        o.u64("healthy", self.healthy_count() as u64);
        o.u64("retries", self.retries.load(Ordering::Relaxed));
        o.u64("hedges", self.hedges.load(Ordering::Relaxed));
        o.u64("failovers", self.failovers.load(Ordering::Relaxed));
        o.u64("rewarmed", self.rewarmed.load(Ordering::Relaxed));
        if let Some(ms) = self.first_rehit_ms() {
            o.f64("first_rehit_ms", ms);
        }
        let ns_to_us = |v: u64| v as f64 / 1e3;
        let mut l = Object::new();
        l.u64("count", lat.count);
        l.f64("p50", ns_to_us(lat.p50));
        l.f64("p95", ns_to_us(lat.p95));
        l.f64("p99", ns_to_us(lat.p99));
        o.raw("upstream_us", &l.finish());
        let mut rows = String::from("[");
        for (idx, r) in self.replicas.iter().enumerate() {
            if idx > 0 {
                rows.push(',');
            }
            let mut ro = Object::new();
            ro.u64("replica", idx as u64);
            ro.str("addr", &r.addr);
            ro.bool("healthy", r.healthy.load(Ordering::Relaxed));
            ro.str(
                "breaker",
                r.breaker.lock().expect("breaker poisoned").state.name(),
            );
            ro.u64("forwards", r.forwards.load(Ordering::Relaxed));
            ro.u64("failures", r.failures.load(Ordering::Relaxed));
            rows.push_str(&ro.finish());
        }
        rows.push(']');
        o.raw("members", &rows);
        o.finish()
    }
}

/// One blocking HTTP exchange on a fresh connection. Returns
/// `(status, Retry-After seconds, body)` or a transport error string.
fn attempt_once(
    addr: &SocketAddr,
    method: &str,
    path: &str,
    body: &str,
    connect_timeout: Duration,
    read_timeout: Duration,
) -> Result<(u16, Option<u64>, Vec<u8>), String> {
    let mut conn =
        TcpStream::connect_timeout(addr, connect_timeout).map_err(|e| format!("connect: {e}"))?;
    let _ = conn.set_nodelay(true);
    conn.set_read_timeout(Some(read_timeout))
        .map_err(|e| format!("timeout: {e}"))?;
    conn.write_all(http::format_request(method, path, body).as_bytes())
        .map_err(|e| format!("send: {e}"))?;
    let (status, headers, resp_body) =
        http::read_response(&mut conn).map_err(|e| format!("read: {e:?}"))?;
    let retry_after = headers
        .iter()
        .find(|(k, _)| k == "retry-after")
        .and_then(|(_, v)| v.trim().parse().ok());
    Ok((status, retry_after, resp_body))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet(n: usize) -> Arc<Fleet> {
        let cfg = FleetConfig {
            replicas: (0..n).map(|i| format!("127.0.0.1:{}", 49000 + i)).collect(),
            ..FleetConfig::default()
        };
        Arc::new(Fleet::new(cfg).expect("fleet builds"))
    }

    #[test]
    fn breaker_walks_closed_open_half_open_closed() {
        let mut b = Breaker::new();
        let cooldown = Duration::from_millis(20);
        assert_eq!(b.state, BreakerState::Closed);
        b.on_failure(0, 2);
        assert_eq!(b.state, BreakerState::Closed, "one failure is tolerated");
        b.on_failure(0, 2);
        assert_eq!(b.state, BreakerState::Open, "threshold trips it open");
        assert!(!b.allow(0, cooldown), "open rejects before cooldown");
        std::thread::sleep(Duration::from_millis(25));
        assert!(b.allow(0, cooldown), "cooldown admits a half-open trial");
        assert_eq!(b.state, BreakerState::HalfOpen);
        b.on_failure(0, 2);
        assert_eq!(b.state, BreakerState::Open, "a failed trial reopens");
        std::thread::sleep(Duration::from_millis(25));
        assert!(b.allow(0, cooldown));
        b.on_success(0);
        assert_eq!(b.state, BreakerState::Closed, "a good trial closes");
        assert_eq!(b.consec_failures, 0);
    }

    #[test]
    fn backoff_is_deterministic_jittered_and_honors_retry_after() {
        let f = fleet(2);
        let a = f.backoff_ms(99, 1, None);
        let b = f.backoff_ms(99, 1, None);
        assert_eq!(a, b, "same (seed, key, attempt) → same backoff");
        assert_ne!(
            f.backoff_ms(99, 1, None),
            f.backoff_ms(100, 1, None),
            "different keys de-synchronize"
        );
        // Exponential-with-jitter stays in [base/2, 1.5·base).
        let base = f.cfg.backoff_base_ms;
        assert!(a >= base / 2 && a < base + base / 2, "{a} vs base {base}");
        // A Retry-After hint floors the wait but is capped.
        let hinted = f.backoff_ms(99, 1, Some(30));
        let cap = f.cfg.retry_after_cap_ms;
        assert!(
            hinted >= cap / 2 && hinted < cap + cap / 2,
            "{hinted} vs cap {cap}"
        );
    }

    #[test]
    fn candidates_skip_unhealthy_but_never_go_empty() {
        let f = fleet(3);
        let key = 0xDEAD_BEEF;
        let all = f.candidates(key);
        assert_eq!(all.len(), 3);
        for r in &f.replicas {
            r.healthy.store(false, Ordering::Relaxed);
        }
        f.replicas[1].healthy.store(true, Ordering::Relaxed);
        assert_eq!(f.candidates(key), vec![1], "only the healthy survivor");
        f.replicas[1].healthy.store(false, Ordering::Relaxed);
        assert_eq!(
            f.candidates(key).len(),
            3,
            "nothing healthy → raw preference order, not an empty set"
        );
    }

    #[test]
    fn hedge_delay_clamps_and_defaults_to_max() {
        let f = fleet(2);
        assert_eq!(
            f.hedge_delay(),
            f.cfg.hedge_max,
            "no samples → conservative max"
        );
        for _ in 0..100 {
            f.upstream_hist.record(1_000); // 1 µs, far below hedge_min
        }
        assert_eq!(f.hedge_delay(), f.cfg.hedge_min, "clamped to the floor");
    }

    #[test]
    fn hot_set_is_bounded_and_deduped() {
        let f = fleet(1);
        for round in 0..3u64 {
            for key in 0..100u64 {
                let _ = round;
                f.record_hot(0, key, "/frontier", "{}");
            }
        }
        let hot = f.replicas[0].hot.lock().unwrap();
        assert_eq!(hot.len(), f.cfg.hot_keys_per_replica);
        let mut keys: Vec<u64> = hot.iter().map(|(k, _)| *k).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), hot.len(), "no duplicate keys in the hot set");
    }

    #[test]
    fn rehit_watch_records_only_displaced_cached_hits() {
        let f = fleet(1);
        *f.rehit.lock().unwrap() = Some(RehitWatch {
            since: Instant::now(),
            keys: [7u64].into_iter().collect(),
        });
        f.check_rehit(7, r#"{"cached":false}"#);
        assert!(f.first_rehit_ms().is_none(), "cold responses don't count");
        f.check_rehit(8, r#"{"cached":true}"#);
        assert!(f.first_rehit_ms().is_none(), "other keys don't count");
        f.check_rehit(7, r#"{"cached":true}"#);
        assert!(
            f.first_rehit_ms().is_some(),
            "displaced hit closes the watch"
        );
        assert!(f.rehit.lock().unwrap().is_none());
    }
}
