//! # hecmix-serve
//!
//! The online face of the configuration-space model: a long-running
//! planning daemon that answers the operator question — *"given this
//! workload, deadline, and power budget, which heterogeneous mix do I
//! provision?"* — over plain HTTP, at interactive latency, from a warm
//! plan cache.
//!
//! Everything in this crate is `std`-only, consistent with the workspace's
//! vendored-stubs rule: no tokio, no hyper, no serde_json. The protocol is
//! a deliberately minimal hand-rolled HTTP/1.1 + JSON subset ([`http`],
//! with JSON encoding/decoding from `hecmix-obs::json`), parsed
//! **incrementally** so no thread ever blocks on a slow peer.
//!
//! The connection layer is a **readiness-based event loop** ([`server`],
//! `event_loop`): a few I/O threads multiplex thousands of nonblocking
//! keep-alive connections over `poll(2)` (via the vendored `poll` stub),
//! while plan sweeps run on a separate bounded **compute pool**. Admission
//! control answers `503 Service Unavailable` with `Retry-After` past the
//! connection cap, and a full compute queue sheds with the same contract —
//! backpressure, never invisible backlog.
//!
//! The hot path is memoized: rate tables and Pareto frontiers live in a
//! **sharded LRU keyed by the FNV-1a content hash of the model bundles
//! plus the query shape** ([`cache`]), so a repeated `/frontier` query
//! skips the sweep entirely. Concurrent misses on the same key are
//! **single-flight coalesced** ([`singleflight`]): one compute answers
//! every waiter. `POST /reload` swaps the model set and **re-warms** the
//! hot set against the new models before the swap, so a reload does not
//! reopen the cold-start latency cliff. Per-I/O-thread lock-free latency
//! histograms ([`hist`]) are merged on demand by `GET /statz`.
//!
//! Endpoints (see [`api`]): `POST /plan`, `POST /frontier` (optional
//! `resilient_k`), `POST /whatif`, `POST /reload`, `GET /healthz`,
//! `GET /statz` — plus, when the live scheduler is configured
//! ([`submit`]), `POST /submit` and `GET /jobz` for streaming job
//! admission onto a shared heterogeneous pool.
//!
//! [`loadgen`] is the load harness that drives the daemon over real
//! sockets — closed-loop or open-loop (Poisson-free fixed-rate arrivals
//! with coordinated-omission correction), with warmup exclusion and
//! per-endpoint percentiles. It doubles as the serving-path benchmark
//! (cold vs warm cache, tail-latency gate) and as the end-to-end test.
//!
//! Above a single daemon sits the **replica fleet**: `hecmix gateway`
//! routes `/plan`, `/frontier`, and `/whatif` across N replica daemons by
//! consistent hashing over the plan-cache key ([`router`]), so each
//! replica's LRU holds a disjoint shard of the hot set. The fleet layer
//! ([`fleet`]) adds active + passive health checking, per-replica circuit
//! breakers, bounded jittered retries that honor `Retry-After`, hedged
//! requests after an adaptive p95 delay, and failover re-warm of a dead
//! replica's hot keys. Robustness is proven, not asserted: a seeded
//! [`chaos`] schedule drives an in-process TCP proxy that injects
//! connection resets, delays, black-holes, and kill windows
//! deterministically, and [`fleetbench`] scripts a replica crash under
//! load while gating on zero client-visible errors.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod api;
pub mod cache;
pub mod chaos;
mod event_loop;
pub mod fleet;
pub mod fleetbench;
pub mod hist;
pub mod http;
pub mod loadgen;
pub mod router;
pub mod server;
pub mod signal;
pub mod singleflight;
pub mod store;
pub mod submit;

pub use api::AppState;
pub use server::{start, ServeConfig, ServerHandle};
pub use store::ModelStore;
pub use submit::{OnlineSched, SchedParams};
