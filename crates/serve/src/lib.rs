//! # hecmix-serve
//!
//! The online face of the configuration-space model: a long-running
//! planning daemon that answers the operator question — *"given this
//! workload, deadline, and power budget, which heterogeneous mix do I
//! provision?"* — over plain HTTP, at interactive latency, from a warm
//! plan cache.
//!
//! Everything in this crate is `std`-only, consistent with the workspace's
//! vendored-stubs rule: no tokio, no hyper, no serde_json. The protocol is
//! a deliberately minimal hand-rolled HTTP/1.1 + JSON subset ([`http`],
//! with JSON encoding/decoding from `hecmix-obs::json`), served by a fixed
//! pool of worker threads behind a **bounded accept queue with admission
//! control** — when the queue is full the accept loop answers
//! `503 Service Unavailable` with a `Retry-After` header instead of
//! building an invisible backlog ([`server`]).
//!
//! The hot path is memoized: rate tables and Pareto frontiers live in a
//! **sharded LRU keyed by the FNV-1a content hash of the model bundles
//! plus the query shape** ([`cache`]), so a repeated `/frontier` query
//! skips the sweep entirely; `POST /reload` swaps the model set and
//! invalidates every cached plan. Per-worker lock-free latency histograms
//! ([`hist`]) are merged on demand by `GET /statz`.
//!
//! Endpoints (see [`api`]): `POST /plan`, `POST /frontier` (optional
//! `resilient_k`), `POST /whatif`, `POST /reload`, `GET /healthz`,
//! `GET /statz`.
//!
//! [`loadgen`] is the closed-loop load harness that drives the daemon over
//! real sockets — it doubles as the serving-path benchmark (cold vs warm
//! cache) and as the end-to-end test.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod api;
pub mod cache;
pub mod hist;
pub mod http;
pub mod loadgen;
pub mod server;
pub mod signal;
pub mod store;

pub use api::AppState;
pub use server::{start, ServeConfig, ServerHandle};
pub use store::ModelStore;
