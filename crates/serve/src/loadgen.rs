//! Load generator for the planning daemon: closed-loop or open-loop,
//! fixed-count or steady-state, with a tail-latency gate.
//!
//! Two arrival models:
//!
//! * **Closed-loop** (default): a fixed number of client threads each keep
//!   exactly one request in flight over a keep-alive connection, so
//!   offered load adapts to the daemon's service rate — the right harness
//!   for measuring latency percentiles under a concurrency level.
//! * **Open-loop** (`open_loop_rps`): requests are *scheduled* on a fixed
//!   global cadence (ticket *i* fires at `i/rate`) regardless of how fast
//!   earlier ones complete, and latency is measured **from the scheduled
//!   time**, not from the actual send — the standard correction for
//!   coordinated omission, so a stalled server inflates the tail instead
//!   of silently thinning the arrival stream.
//!
//! Runs are bounded either by a request count (`requests`) or by wall
//! clock (`duration_s`). A **warmup window** (`warmup_s`) excludes the
//! cold start from the aggregate — connection setup, first-touch cache
//! misses — so steady-state percentiles measure the steady state.
//! Percentiles are reported in aggregate **and per endpoint**
//! (`/plan`, `/frontier`, `/whatif`): the three do different amounts of
//! work and a blended p99 hides which one regressed.
//!
//! The endpoint mix is deterministic: a global ticket counter assigns each
//! request its endpoint by `ticket % (plan+frontier+whatif)`, so the same
//! configuration issues exactly the same request sequence every time,
//! regardless of thread interleaving.
//!
//! Besides client-observed wall latency, the harness parses the
//! `compute_us`/`cached` fields the daemon embeds in every response and
//! reports the cold-vs-warm `/frontier` compute medians — the honest basis
//! for the plan cache's speedup claim, immune to loopback RTT noise — and
//! scrapes `GET /statz` before and after the run to report server-side
//! deltas (computes, coalesced answers, warmed entries, cache hits).
//! [`LoadReport::gate`] turns a run into a pass/fail check for CI.

use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use hecmix_obs::json::{self, Object, Value};

use crate::http;

/// Relative request frequencies per endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MixRatio {
    /// Weight of `POST /plan`.
    pub plan: u32,
    /// Weight of `POST /frontier`.
    pub frontier: u32,
    /// Weight of `POST /whatif`.
    pub whatif: u32,
}

impl MixRatio {
    /// Parse `"P:F:W"` (e.g. `"2:2:1"`).
    ///
    /// # Errors
    /// Malformed syntax or an all-zero mix.
    pub fn parse(s: &str) -> Result<Self, String> {
        let parts: Vec<&str> = s.split(':').collect();
        if parts.len() != 3 {
            return Err(format!("mix must be plan:frontier:whatif, got `{s}`"));
        }
        let num = |p: &str| -> Result<u32, String> {
            p.trim()
                .parse::<u32>()
                .map_err(|_| format!("bad mix weight `{p}`"))
        };
        let mix = Self {
            plan: num(parts[0])?,
            frontier: num(parts[1])?,
            whatif: num(parts[2])?,
        };
        if mix.total() == 0 {
            return Err("mix weights cannot all be zero".into());
        }
        Ok(mix)
    }

    fn total(self) -> u64 {
        u64::from(self.plan) + u64::from(self.frontier) + u64::from(self.whatif)
    }
}

impl Default for MixRatio {
    fn default() -> Self {
        Self {
            plan: 2,
            frontier: 2,
            whatif: 1,
        }
    }
}

/// One load run's parameters.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Daemon address, `HOST:PORT`.
    pub addr: String,
    /// Concurrent client threads (each with one request in flight).
    pub concurrency: usize,
    /// Total requests to issue (ignored when `duration_s` is set).
    pub requests: u64,
    /// Run for this many seconds of wall clock instead of a fixed count.
    pub duration_s: Option<f64>,
    /// Exclude requests issued in the first `warmup_s` seconds from the
    /// aggregated percentiles (they still count toward `sent`/`ok`).
    pub warmup_s: f64,
    /// Open-loop arrival rate, requests/second. `None` = closed loop.
    pub open_loop_rps: Option<f64>,
    /// Endpoint mix.
    pub mix: MixRatio,
    /// Workload name sent in every request.
    pub workload: String,
    /// ARM node cap for `/plan` and `/frontier`.
    pub arm: u32,
    /// When set, `/plan` and `/frontier` sweep `arm` over `1..=n` by
    /// ticket instead of using the fixed cap — n distinct cache keys, so
    /// a fleet gateway's consistent-hash routing (and failover re-warm)
    /// is exercised across replicas instead of hammering one key.
    pub arm_sweep: Option<u32>,
    /// AMD node cap for `/plan` and `/frontier`.
    pub amd: u32,
    /// Power budget for `/whatif`, watts.
    pub budget_w: f64,
    /// Deadline for `/plan` and `/whatif`, milliseconds.
    pub deadline_ms: f64,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7077".to_owned(),
            concurrency: 8,
            requests: 500,
            duration_s: None,
            warmup_s: 0.0,
            open_loop_rps: None,
            mix: MixRatio::default(),
            workload: "ep".to_owned(),
            arm: 10,
            arm_sweep: None,
            amd: 10,
            budget_w: 400.0,
            deadline_ms: 120_000.0,
        }
    }
}

/// Latency percentiles for one endpoint's measured (post-warmup) samples.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EndpointStats {
    /// Measured samples.
    pub count: u64,
    /// Median, microseconds.
    pub p50_us: u64,
    /// 90th percentile, microseconds.
    pub p90_us: u64,
    /// 99th percentile, microseconds.
    pub p99_us: u64,
    /// Maximum, microseconds.
    pub max_us: u64,
}

/// Server-side counter deltas across the run (from `GET /statz` scraped
/// before and after).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerDelta {
    /// Plan computations executed on the compute pool.
    pub computes: u64,
    /// Requests answered from another connection's in-flight compute.
    pub coalesced: u64,
    /// Cache entries recomputed by warm reloads.
    pub warmed: u64,
    /// Plan-cache hits.
    pub cache_hits: u64,
    /// Plan-cache misses.
    pub cache_misses: u64,
}

/// Aggregated outcome of one run.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Requests issued.
    pub sent: u64,
    /// `200 OK` responses.
    pub ok: u64,
    /// 503 rejections absorbed by retry (the requests still completed;
    /// this counts the extra attempts).
    pub rejected_retries: u64,
    /// Requests that never completed successfully.
    pub errors: u64,
    /// Wall time of the whole run, seconds.
    pub wall_s: f64,
    /// Measured (post-warmup) completions per second of measured window.
    pub throughput_rps: f64,
    /// Samples included in the percentiles (post-warmup `200`s).
    pub measured: u64,
    /// Samples excluded by the warmup window.
    pub warmup_excluded: u64,
    /// Aggregate latency percentiles, microseconds.
    pub p50_us: u64,
    /// 90th percentile, microseconds.
    pub p90_us: u64,
    /// 99th percentile, microseconds.
    pub p99_us: u64,
    /// 99.9th percentile, microseconds.
    pub p999_us: u64,
    /// Maximum, microseconds.
    pub max_us: u64,
    /// `p99 / p50` of the aggregate (0 when there are no samples) — the
    /// number the CI tail gate checks.
    pub tail_ratio: f64,
    /// `/plan` percentiles.
    pub plan: EndpointStats,
    /// `/frontier` percentiles.
    pub frontier: EndpointStats,
    /// `/whatif` percentiles.
    pub whatif: EndpointStats,
    /// Median server-side compute of **uncached** `/frontier` answers, µs.
    pub frontier_cold_us: u64,
    /// Median server-side compute of **cached** `/frontier` answers, µs,
    /// floored at 1 when any samples exist (hits often round to 0 µs).
    pub frontier_warm_us: u64,
    /// `frontier_cold_us / frontier_warm_us` (0 when either is missing).
    pub cache_speedup: f64,
    /// Server counter deltas, when `/statz` was reachable on both ends.
    pub server: Option<ServerDelta>,
}

/// One completed request: which endpoint, when it was issued (offset from
/// run start, scheduled time under open loop), and its latency.
struct Sample {
    endpoint: usize,
    start_offset_s: f64,
    lat_us: u64,
}

struct WorkerOut {
    ok: u64,
    rejected_retries: u64,
    errors: u64,
    samples: Vec<Sample>,
    frontier_cold_us: Vec<u64>,
    frontier_warm_us: Vec<u64>,
}

enum Endpoint {
    Plan,
    Frontier,
    Whatif,
}

impl Endpoint {
    fn index(&self) -> usize {
        match self {
            Self::Plan => 0,
            Self::Frontier => 1,
            Self::Whatif => 2,
        }
    }
}

fn endpoint_for(ticket: u64, mix: MixRatio) -> Endpoint {
    let m = ticket % mix.total();
    if m < u64::from(mix.plan) {
        Endpoint::Plan
    } else if m < u64::from(mix.plan) + u64::from(mix.frontier) {
        Endpoint::Frontier
    } else {
        Endpoint::Whatif
    }
}

fn request_for(cfg: &LoadgenConfig, ticket: u64) -> (Endpoint, &'static str, String) {
    let endpoint = endpoint_for(ticket, cfg.mix);
    let arm = cfg
        .arm_sweep
        .map_or(cfg.arm, |n| 1 + (ticket % u64::from(n.max(1))) as u32);
    match endpoint {
        Endpoint::Plan => {
            let mut o = Object::new();
            o.str("workload", &cfg.workload);
            o.u64("arm", u64::from(arm));
            o.u64("amd", u64::from(cfg.amd));
            o.f64("deadline_ms", cfg.deadline_ms);
            (endpoint, "/plan", o.finish())
        }
        Endpoint::Frontier => {
            let mut o = Object::new();
            o.str("workload", &cfg.workload);
            o.u64("arm", u64::from(arm));
            o.u64("amd", u64::from(cfg.amd));
            (endpoint, "/frontier", o.finish())
        }
        Endpoint::Whatif => {
            let mut o = Object::new();
            o.str("workload", &cfg.workload);
            o.f64("budget_w", cfg.budget_w);
            o.f64("deadline_ms", cfg.deadline_ms);
            (endpoint, "/whatif", o.finish())
        }
    }
}

fn connect(addr: &str) -> std::io::Result<TcpStream> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    Ok(stream)
}

/// One request/response exchange; returns `(status, retry_after_s, body)`.
fn exchange(
    conn: &mut TcpStream,
    path: &str,
    body: &str,
) -> std::io::Result<(u16, Option<u64>, Vec<u8>)> {
    use std::io::Write as _;
    let wire = http::format_request("POST", path, body);
    conn.write_all(wire.as_bytes())?;
    let (status, headers, resp_body) = http::read_response(conn)?;
    let retry_after = headers
        .iter()
        .find(|(k, _)| k == "retry-after")
        .and_then(|(_, v)| v.parse().ok());
    Ok((status, retry_after, resp_body))
}

/// Total 503 retries allowed per ticket before it counts as an error.
const MAX_503_RETRIES: u32 = 32;

/// How long to sleep before 503-retry number `attempt` (1-based) of
/// `ticket`, or `None` once the attempt budget is spent.
///
/// The base wait grows exponentially (5 ms, doubling, capped at 100 ms)
/// and is floored by the server's `Retry-After` (seconds, also capped at
/// 100 ms — a load generator that sleeps whole seconds measures nothing).
/// The result is then jittered to `[base/2, 1.5·base)` by a hash of
/// `(ticket, attempt)`: deterministic per ticket for replayable runs, but
/// de-synchronized *across* tickets, so a fleet of workers rejected in
/// the same instant cannot form a retry storm against a recovering
/// replica.
#[must_use]
pub fn retry_503_wait_ms(ticket: u64, attempt: u32, retry_after_s: Option<u64>) -> Option<u64> {
    if attempt > MAX_503_RETRIES {
        return None;
    }
    let exp = 5u64
        .saturating_mul(1 << attempt.saturating_sub(1).min(5))
        .min(100);
    let base = retry_after_s
        .map_or(exp, |s| exp.max((s * 1000).min(100)))
        .max(1);
    let jitter = crate::router::splitmix64(ticket ^ (u64::from(attempt) << 32)) % base;
    Some(base / 2 + jitter)
}

fn worker(cfg: &LoadgenConfig, tickets: &AtomicU64, start: Instant) -> WorkerOut {
    let mut out = WorkerOut {
        ok: 0,
        rejected_retries: 0,
        errors: 0,
        samples: Vec::new(),
        frontier_cold_us: Vec::new(),
        frontier_warm_us: Vec::new(),
    };
    let mut conn = connect(&cfg.addr).ok();
    'tickets: loop {
        let ticket = tickets.fetch_add(1, Ordering::Relaxed);
        // Stop criterion: wall clock in duration mode, count otherwise.
        // Open-loop tickets are judged by their *scheduled* time so the
        // arrival stream ends exactly at the configured duration.
        let scheduled = cfg
            .open_loop_rps
            .map(|rate| Duration::from_secs_f64(ticket as f64 / rate.max(1e-9)));
        match cfg.duration_s {
            Some(d) => {
                let offset = scheduled.unwrap_or_else(|| start.elapsed());
                if offset.as_secs_f64() >= d {
                    break;
                }
            }
            None => {
                if ticket >= cfg.requests {
                    break;
                }
            }
        }
        if let Some(s) = scheduled {
            // Open loop: hold the ticket until its scheduled instant.
            let target = start + s;
            let now = Instant::now();
            if target > now {
                std::thread::sleep(target - now);
            }
        }
        let (endpoint, path, body) = request_for(cfg, ticket);
        // Open-loop latency runs from the scheduled arrival, so time a
        // backed-up client spends waiting to send counts against the
        // server (coordinated-omission correction).
        let t0 = scheduled.map_or_else(Instant::now, |s| start + s);
        let start_offset_s = (t0 - start).as_secs_f64();
        let mut reconnects = 0u32;
        let mut backoffs = 0u32;
        loop {
            let Some(c) = conn.as_mut() else {
                match connect(&cfg.addr) {
                    Ok(c) => {
                        conn = Some(c);
                        continue;
                    }
                    Err(_) => {
                        out.errors += 1;
                        // The daemon is unreachable; stop burning tickets.
                        if reconnects >= 3 {
                            break 'tickets;
                        }
                        reconnects += 1;
                        std::thread::sleep(Duration::from_millis(20));
                        continue;
                    }
                }
            };
            match exchange(c, path, &body) {
                Ok((200, _, resp_body)) => {
                    out.ok += 1;
                    out.samples.push(Sample {
                        endpoint: endpoint.index(),
                        start_offset_s,
                        lat_us: t0.elapsed().as_micros() as u64,
                    });
                    // `/plan` answers come off the same memoized frontier,
                    // so both endpoints sample the cold/warm compute clock
                    // (whichever arrives first takes the cold hit).
                    if path == "/frontier" || path == "/plan" {
                        record_frontier_compute(&resp_body, &mut out);
                    }
                    break;
                }
                Ok((503, retry_after, _)) => {
                    // Admission control asked us to back off; honor it
                    // (capped — Retry-After is in whole seconds), jittered
                    // per ticket so every worker that got the same
                    // Retry-After does not re-arrive in the same instant
                    // and re-trip admission on a recovering daemon. 503
                    // closes the connection.
                    out.rejected_retries += 1;
                    conn = None;
                    backoffs += 1;
                    match retry_503_wait_ms(ticket, backoffs, retry_after) {
                        Some(wait) => std::thread::sleep(Duration::from_millis(wait)),
                        None => {
                            out.errors += 1;
                            break;
                        }
                    }
                }
                Ok((_status, _, _)) => {
                    out.errors += 1;
                    break;
                }
                Err(_) => {
                    // Connection died (e.g. server drain closed it); one
                    // reconnect retry per request before counting an error.
                    conn = None;
                    reconnects += 1;
                    if reconnects > 3 {
                        out.errors += 1;
                        break;
                    }
                }
            }
        }
    }
    out
}

fn record_frontier_compute(resp_body: &[u8], out: &mut WorkerOut) {
    let Ok(text) = std::str::from_utf8(resp_body) else {
        return;
    };
    let Ok(v) = json::parse(text) else { return };
    let Some(compute_us) = v.get("compute_us").and_then(Value::as_u64) else {
        return;
    };
    // Coalesced answers share the leader's compute — counting the same
    // sweep N times would skew the cold median, so they are skipped.
    if v.get("coalesced").and_then(Value::as_bool) == Some(true) {
        return;
    }
    match v.get("cached").and_then(Value::as_bool) {
        Some(true) => out.frontier_warm_us.push(compute_us),
        Some(false) => out.frontier_cold_us.push(compute_us),
        None => {}
    }
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn median(mut v: Vec<u64>) -> u64 {
    if v.is_empty() {
        return 0;
    }
    v.sort_unstable();
    v[v.len() / 2]
}

fn endpoint_stats(mut lats: Vec<u64>) -> EndpointStats {
    lats.sort_unstable();
    EndpointStats {
        count: lats.len() as u64,
        p50_us: percentile(&lats, 0.50),
        p90_us: percentile(&lats, 0.90),
        p99_us: percentile(&lats, 0.99),
        max_us: lats.last().copied().unwrap_or(0),
    }
}

/// Fold worker outputs into the report: drop warmup samples, split per
/// endpoint, compute aggregate percentiles and the cold/warm medians.
fn aggregate(outs: Vec<WorkerOut>, sent: u64, wall_s: f64, warmup_s: f64) -> LoadReport {
    let mut report = LoadReport {
        sent,
        wall_s,
        ..LoadReport::default()
    };
    let mut latencies = Vec::new();
    let mut per_endpoint: [Vec<u64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    let mut cold = Vec::new();
    let mut warm = Vec::new();
    for o in outs {
        report.ok += o.ok;
        report.rejected_retries += o.rejected_retries;
        report.errors += o.errors;
        for s in o.samples {
            if s.start_offset_s < warmup_s {
                report.warmup_excluded += 1;
                continue;
            }
            latencies.push(s.lat_us);
            per_endpoint[s.endpoint.min(2)].push(s.lat_us);
        }
        cold.extend(o.frontier_cold_us);
        warm.extend(o.frontier_warm_us);
    }
    latencies.sort_unstable();
    report.measured = latencies.len() as u64;
    let window_s = (wall_s - warmup_s).max(f64::EPSILON);
    report.throughput_rps = report.measured as f64 / window_s;
    report.p50_us = percentile(&latencies, 0.50);
    report.p90_us = percentile(&latencies, 0.90);
    report.p99_us = percentile(&latencies, 0.99);
    report.p999_us = percentile(&latencies, 0.999);
    report.max_us = latencies.last().copied().unwrap_or(0);
    report.tail_ratio = if report.p50_us > 0 {
        report.p99_us as f64 / report.p50_us as f64
    } else {
        0.0
    };
    let [plan, frontier, whatif] = per_endpoint;
    report.plan = endpoint_stats(plan);
    report.frontier = endpoint_stats(frontier);
    report.whatif = endpoint_stats(whatif);
    report.frontier_cold_us = median(cold);
    // Release-build cache hits routinely round to 0 µs; floor the median at
    // 1 µs so the reported ratio stays finite (and conservative).
    report.frontier_warm_us = if warm.is_empty() {
        0
    } else {
        median(warm).max(1)
    };
    report.cache_speedup = if report.frontier_warm_us > 0 && report.frontier_cold_us > 0 {
        report.frontier_cold_us as f64 / report.frontier_warm_us as f64
    } else {
        0.0
    };
    report
}

/// Scraped slice of `GET /statz`.
fn scrape_statz(addr: &str) -> Option<ServerDelta> {
    use std::io::Write as _;
    let mut conn = connect(addr).ok()?;
    conn.write_all(http::format_request("GET", "/statz", "").as_bytes())
        .ok()?;
    let (status, _headers, body) = http::read_response(&mut conn).ok()?;
    if status != 200 {
        return None;
    }
    let v = json::parse(std::str::from_utf8(&body).ok()?).ok()?;
    let u = |field: &str| v.get(field).and_then(Value::as_u64).unwrap_or(0);
    let cache = |field: &str| {
        v.get("cache")
            .and_then(|c| c.get(field))
            .and_then(Value::as_u64)
            .unwrap_or(0)
    };
    Some(ServerDelta {
        computes: u("computes"),
        coalesced: u("coalesced"),
        warmed: u("warmed"),
        cache_hits: cache("hits"),
        cache_misses: cache("misses"),
    })
}

/// Run the load against a live daemon and aggregate the report.
#[must_use]
pub fn run(cfg: &LoadgenConfig) -> LoadReport {
    let before = scrape_statz(&cfg.addr);
    let tickets = AtomicU64::new(0);
    let start = Instant::now();
    let outs: Vec<WorkerOut> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.concurrency.max(1))
            .map(|_| s.spawn(|| worker(cfg, &tickets, start)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen worker panicked"))
            .collect()
    });
    let wall_s = start.elapsed().as_secs_f64();
    let issued = tickets.load(Ordering::Relaxed);
    let sent = match cfg.duration_s {
        Some(_) => issued.saturating_sub(cfg.concurrency.max(1) as u64),
        None => issued.min(cfg.requests),
    };
    let mut report = aggregate(outs, sent, wall_s, cfg.warmup_s);
    report.server = match (before, scrape_statz(&cfg.addr)) {
        (Some(b), Some(a)) => Some(ServerDelta {
            computes: a.computes.saturating_sub(b.computes),
            coalesced: a.coalesced.saturating_sub(b.coalesced),
            warmed: a.warmed.saturating_sub(b.warmed),
            cache_hits: a.cache_hits.saturating_sub(b.cache_hits),
            cache_misses: a.cache_misses.saturating_sub(b.cache_misses),
        }),
        _ => None,
    };
    report
}

impl LoadReport {
    /// Pass/fail check for CI: no errors, at least `min_ok` successful
    /// requests, and `p99/p50 ≤ max_tail_ratio` (skipped when
    /// `max_tail_ratio` is 0).
    ///
    /// # Errors
    /// A message listing every violated condition.
    pub fn gate(&self, max_tail_ratio: f64, min_ok: u64) -> Result<(), String> {
        let mut problems = Vec::new();
        if self.errors > 0 {
            problems.push(format!("{} requests errored", self.errors));
        }
        if self.ok < min_ok {
            problems.push(format!("only {} ok (required {min_ok})", self.ok));
        }
        if max_tail_ratio > 0.0 && self.tail_ratio > max_tail_ratio {
            problems.push(format!(
                "tail ratio p99/p50 = {:.1} exceeds {max_tail_ratio:.1} (p50 {} µs, p99 {} µs)",
                self.tail_ratio, self.p50_us, self.p99_us
            ));
        }
        if problems.is_empty() {
            Ok(())
        } else {
            Err(problems.join("; "))
        }
    }

    /// Encode as the `BENCH_serve.json` artifact schema.
    #[must_use]
    pub fn to_json(&self, cfg: &LoadgenConfig) -> String {
        let endpoint = |e: &EndpointStats| {
            let mut o = Object::new();
            o.u64("count", e.count);
            o.u64("p50", e.p50_us);
            o.u64("p90", e.p90_us);
            o.u64("p99", e.p99_us);
            o.u64("max", e.max_us);
            o.finish()
        };
        let mut o = Object::new();
        o.str("schema", "hecmix-bench-serve-v3");
        o.str("workload", &cfg.workload);
        o.u64("concurrency", cfg.concurrency as u64);
        o.str(
            "mix_plan_frontier_whatif",
            &format!("{}:{}:{}", cfg.mix.plan, cfg.mix.frontier, cfg.mix.whatif),
        );
        if let Some(d) = cfg.duration_s {
            o.f64("duration_s", d);
        }
        o.f64("warmup_s", cfg.warmup_s);
        if let Some(r) = cfg.open_loop_rps {
            o.f64("open_loop_rps", r);
        }
        if let Some(n) = cfg.arm_sweep {
            o.u64("arm_sweep", u64::from(n));
        }
        o.u64("sent", self.sent);
        o.u64("ok", self.ok);
        o.u64("rejected_retries", self.rejected_retries);
        o.u64("errors", self.errors);
        o.f64("wall_s", self.wall_s);
        o.u64("measured", self.measured);
        o.u64("warmup_excluded", self.warmup_excluded);
        o.f64("throughput_rps", self.throughput_rps);
        let mut l = Object::new();
        l.u64("p50", self.p50_us);
        l.u64("p90", self.p90_us);
        l.u64("p99", self.p99_us);
        l.u64("p999", self.p999_us);
        l.u64("max", self.max_us);
        o.raw("latency_us", &l.finish());
        o.f64("tail_ratio", self.tail_ratio);
        let mut by = Object::new();
        by.raw("plan", &endpoint(&self.plan));
        by.raw("frontier", &endpoint(&self.frontier));
        by.raw("whatif", &endpoint(&self.whatif));
        o.raw("endpoints_us", &by.finish());
        let mut f = Object::new();
        f.u64("cold_us", self.frontier_cold_us);
        f.u64("warm_us", self.frontier_warm_us);
        f.f64("speedup", self.cache_speedup);
        o.raw("frontier_compute", &f.finish());
        if let Some(s) = &self.server {
            let mut so = Object::new();
            so.u64("computes", s.computes);
            so.u64("coalesced", s.coalesced);
            so.u64("warmed", s.warmed);
            so.u64("cache_hits", s.cache_hits);
            so.u64("cache_misses", s.cache_misses);
            o.raw("server", &so.finish());
        }
        o.finish()
    }

    /// Human-readable multi-line rendering for the CLI.
    #[must_use]
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "sent {}  ok {}  503-retries {}  errors {}\n",
            self.sent, self.ok, self.rejected_retries, self.errors
        ));
        s.push_str(&format!(
            "wall {:.2} s  measured {} (excluded {} warmup)  throughput {:.1} req/s\n",
            self.wall_s, self.measured, self.warmup_excluded, self.throughput_rps
        ));
        s.push_str(&format!(
            "latency µs  p50 {}  p90 {}  p99 {}  p99.9 {}  max {}  (p99/p50 {:.1}x)\n",
            self.p50_us, self.p90_us, self.p99_us, self.p999_us, self.max_us, self.tail_ratio
        ));
        for (name, e) in [
            ("/plan    ", &self.plan),
            ("/frontier", &self.frontier),
            ("/whatif  ", &self.whatif),
        ] {
            if e.count > 0 {
                s.push_str(&format!(
                    "{name}  n {}  p50 {}  p90 {}  p99 {}  max {}\n",
                    e.count, e.p50_us, e.p90_us, e.p99_us, e.max_us
                ));
            }
        }
        if self.frontier_cold_us > 0 {
            s.push_str(&format!(
                "frontier compute  cold {} µs  warm {} µs  speedup {:.1}x\n",
                self.frontier_cold_us, self.frontier_warm_us, self.cache_speedup
            ));
        }
        if let Some(d) = &self.server {
            s.push_str(&format!(
                "server  computes {}  coalesced {}  warmed {}  cache {}h/{}m\n",
                d.computes, d.coalesced, d.warmed, d.cache_hits, d.cache_misses
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_parse_and_deterministic_schedule() {
        let mix = MixRatio::parse("2:2:1").expect("parse");
        assert_eq!(
            mix,
            MixRatio {
                plan: 2,
                frontier: 2,
                whatif: 1
            }
        );
        // Over one period: exactly the declared weights.
        let mut counts = [0u32; 3];
        for t in 0..5 {
            counts[endpoint_for(t, mix).index()] += 1;
        }
        assert_eq!(counts, [2, 2, 1]);
        assert!(MixRatio::parse("0:0:0").is_err());
        assert!(MixRatio::parse("1:2").is_err());
        assert!(MixRatio::parse("a:b:c").is_err());
    }

    #[test]
    fn percentiles_are_exact_on_small_samples() {
        let sorted = vec![10, 20, 30, 40, 50, 60, 70, 80, 90, 100];
        assert_eq!(percentile(&sorted, 0.50), 50);
        assert_eq!(percentile(&sorted, 0.90), 90);
        assert_eq!(percentile(&sorted, 0.99), 100);
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(median(vec![3, 1, 2]), 2);
    }

    #[test]
    fn aggregate_excludes_warmup_and_splits_endpoints() {
        let mk = |endpoint: usize, start_offset_s: f64, lat_us: u64| Sample {
            endpoint,
            start_offset_s,
            lat_us,
        };
        let outs = vec![WorkerOut {
            ok: 6,
            rejected_retries: 0,
            errors: 0,
            samples: vec![
                // Two cold-start samples inside the 1 s warmup window:
                // excluded from every percentile.
                mk(0, 0.1, 90_000),
                mk(1, 0.5, 80_000),
                // Steady state: two /plan, one /frontier, one /whatif.
                mk(0, 1.5, 100),
                mk(0, 2.0, 200),
                mk(1, 2.5, 300),
                mk(2, 3.0, 400),
            ],
            frontier_cold_us: vec![9000],
            frontier_warm_us: vec![0, 0, 3],
        }];
        let report = aggregate(outs, 6, 4.0, 1.0);
        assert_eq!(report.measured, 4);
        assert_eq!(report.warmup_excluded, 2);
        assert_eq!(report.max_us, 400, "warmup outliers must not leak in");
        assert_eq!(report.plan.count, 2);
        assert_eq!(report.frontier.count, 1);
        assert_eq!(report.whatif.count, 1);
        assert_eq!(report.plan.p50_us, 100);
        assert_eq!(report.frontier.p50_us, 300);
        assert_eq!(report.whatif.max_us, 400);
        // Throughput covers the measured window only: 4 samples / 3 s.
        assert!((report.throughput_rps - 4.0 / 3.0).abs() < 1e-9);
        // Warm median floored at 1 µs.
        assert_eq!(report.frontier_warm_us, 1);
        assert_eq!(report.frontier_cold_us, 9000);
    }

    #[test]
    fn gate_checks_errors_volume_and_tail() {
        let good = LoadReport {
            ok: 100,
            p50_us: 100,
            p99_us: 1000,
            tail_ratio: 10.0,
            ..LoadReport::default()
        };
        assert!(good.gate(50.0, 100).is_ok());
        assert!(good.gate(0.0, 100).is_ok(), "0 disables the tail gate");
        assert!(good.gate(5.0, 100).is_err(), "tail 10x > allowed 5x");
        assert!(good.gate(50.0, 101).is_err(), "too few ok");
        let bad = LoadReport {
            ok: 100,
            errors: 1,
            ..LoadReport::default()
        };
        assert!(bad.gate(0.0, 0).is_err(), "any error fails the gate");
    }

    #[test]
    fn report_json_has_schema_and_counts() {
        let cfg = LoadgenConfig {
            duration_s: Some(3.0),
            warmup_s: 1.0,
            open_loop_rps: Some(500.0),
            ..LoadgenConfig::default()
        };
        let report = LoadReport {
            sent: 10,
            ok: 10,
            measured: 8,
            warmup_excluded: 2,
            frontier_cold_us: 8000,
            frontier_warm_us: 40,
            cache_speedup: 200.0,
            tail_ratio: 3.5,
            plan: EndpointStats {
                count: 4,
                p50_us: 11,
                p90_us: 12,
                p99_us: 13,
                max_us: 14,
            },
            server: Some(ServerDelta {
                computes: 2,
                coalesced: 5,
                warmed: 1,
                cache_hits: 90,
                cache_misses: 3,
            }),
            ..LoadReport::default()
        };
        let j = report.to_json(&cfg);
        let v = json::parse(&j).expect("valid JSON");
        assert_eq!(
            v.get("schema").and_then(Value::as_str),
            Some("hecmix-bench-serve-v3")
        );
        assert_eq!(v.get("ok").and_then(Value::as_u64), Some(10));
        assert_eq!(v.get("measured").and_then(Value::as_u64), Some(8));
        assert_eq!(v.get("tail_ratio").and_then(Value::as_f64), Some(3.5));
        assert_eq!(
            v.get("endpoints_us")
                .and_then(|e| e.get("plan"))
                .and_then(|p| p.get("count"))
                .and_then(Value::as_u64),
            Some(4)
        );
        assert_eq!(
            v.get("server")
                .and_then(|s| s.get("coalesced"))
                .and_then(Value::as_u64),
            Some(5)
        );
        assert!(v
            .get("frontier_compute")
            .and_then(|f| f.get("speedup"))
            .and_then(Value::as_f64)
            .is_some());
        assert!(!report.render().is_empty());
    }

    #[test]
    fn retry_503_wait_is_deterministic_bounded_and_capped() {
        // Same (ticket, attempt) → same wait; different tickets spread out.
        assert_eq!(
            retry_503_wait_ms(7, 1, Some(1)),
            retry_503_wait_ms(7, 1, Some(1))
        );
        let spread: std::collections::HashSet<u64> = (0..64)
            .filter_map(|t| retry_503_wait_ms(t, 1, Some(1)))
            .collect();
        assert!(
            spread.len() > 16,
            "jitter must de-synchronize tickets, got {} distinct waits",
            spread.len()
        );
        // Retry-After floors the base but is capped at 100 ms, and every
        // jittered wait stays inside [base/2, 1.5*base).
        for t in 0..200u64 {
            let w = retry_503_wait_ms(t, 3, Some(30)).unwrap();
            assert!((50..150).contains(&w), "wait {w} escaped the jitter band");
        }
        // The attempt budget is finite.
        assert!(retry_503_wait_ms(1, MAX_503_RETRIES, None).is_some());
        assert!(retry_503_wait_ms(1, MAX_503_RETRIES + 1, None).is_none());
    }
}
