//! Closed-loop load generator for the planning daemon.
//!
//! *Closed-loop*: a fixed number of client threads each keep exactly one
//! request in flight over a keep-alive connection, so offered load adapts
//! to the daemon's service rate instead of burying it (the right harness
//! for measuring latency percentiles under a concurrency level, as
//! opposed to an open-loop arrival process for overload studies — which
//! the bounded-queue admission path already covers via 503 retries).
//!
//! The endpoint mix is deterministic: a global ticket counter assigns each
//! request its endpoint by `ticket % (plan+frontier+whatif)`, so a run of
//! 500 requests at mix `2:2:1` issues exactly the same request sequence
//! every time, regardless of thread interleaving.
//!
//! Besides client-observed wall latency, the harness parses the
//! `compute_us`/`cached` fields the daemon embeds in every response and
//! reports the cold-vs-warm `/frontier` compute medians — the honest basis
//! for the plan cache's speedup claim, immune to loopback RTT noise.

use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use hecmix_obs::json::{self, Object, Value};

use crate::http;

/// Relative request frequencies per endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MixRatio {
    /// Weight of `POST /plan`.
    pub plan: u32,
    /// Weight of `POST /frontier`.
    pub frontier: u32,
    /// Weight of `POST /whatif`.
    pub whatif: u32,
}

impl MixRatio {
    /// Parse `"P:F:W"` (e.g. `"2:2:1"`).
    ///
    /// # Errors
    /// Malformed syntax or an all-zero mix.
    pub fn parse(s: &str) -> Result<Self, String> {
        let parts: Vec<&str> = s.split(':').collect();
        if parts.len() != 3 {
            return Err(format!("mix must be plan:frontier:whatif, got `{s}`"));
        }
        let num = |p: &str| -> Result<u32, String> {
            p.trim()
                .parse::<u32>()
                .map_err(|_| format!("bad mix weight `{p}`"))
        };
        let mix = Self {
            plan: num(parts[0])?,
            frontier: num(parts[1])?,
            whatif: num(parts[2])?,
        };
        if mix.total() == 0 {
            return Err("mix weights cannot all be zero".into());
        }
        Ok(mix)
    }

    fn total(self) -> u64 {
        u64::from(self.plan) + u64::from(self.frontier) + u64::from(self.whatif)
    }
}

impl Default for MixRatio {
    fn default() -> Self {
        Self {
            plan: 2,
            frontier: 2,
            whatif: 1,
        }
    }
}

/// One load run's parameters.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Daemon address, `HOST:PORT`.
    pub addr: String,
    /// Concurrent client threads (each with one request in flight).
    pub concurrency: usize,
    /// Total requests to issue across all threads.
    pub requests: u64,
    /// Endpoint mix.
    pub mix: MixRatio,
    /// Workload name sent in every request.
    pub workload: String,
    /// ARM node cap for `/plan` and `/frontier`.
    pub arm: u32,
    /// AMD node cap for `/plan` and `/frontier`.
    pub amd: u32,
    /// Power budget for `/whatif`, watts.
    pub budget_w: f64,
    /// Deadline for `/plan` and `/whatif`, milliseconds.
    pub deadline_ms: f64,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7077".to_owned(),
            concurrency: 8,
            requests: 500,
            mix: MixRatio::default(),
            workload: "ep".to_owned(),
            arm: 10,
            amd: 10,
            budget_w: 400.0,
            deadline_ms: 120_000.0,
        }
    }
}

/// Aggregated outcome of one run.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Requests issued.
    pub sent: u64,
    /// `200 OK` responses.
    pub ok: u64,
    /// 503 admission rejections absorbed by retry (the requests still
    /// completed; this counts the extra attempts).
    pub rejected_retries: u64,
    /// Requests that never completed successfully.
    pub errors: u64,
    /// Wall time of the whole run, seconds.
    pub wall_s: f64,
    /// Completed requests per second.
    pub throughput_rps: f64,
    /// Client-observed latency percentiles, microseconds.
    pub p50_us: u64,
    /// 90th percentile, microseconds.
    pub p90_us: u64,
    /// 99th percentile, microseconds.
    pub p99_us: u64,
    /// 99.9th percentile, microseconds.
    pub p999_us: u64,
    /// Maximum, microseconds.
    pub max_us: u64,
    /// Median server-side compute of **uncached** `/frontier` answers, µs.
    pub frontier_cold_us: u64,
    /// Median server-side compute of **cached** `/frontier` answers, µs,
    /// floored at 1 when any samples exist (hits often round to 0 µs).
    pub frontier_warm_us: u64,
    /// `frontier_cold_us / frontier_warm_us` (0 when either is missing).
    pub cache_speedup: f64,
}

struct WorkerOut {
    ok: u64,
    rejected_retries: u64,
    errors: u64,
    latencies_us: Vec<u64>,
    frontier_cold_us: Vec<u64>,
    frontier_warm_us: Vec<u64>,
}

enum Endpoint {
    Plan,
    Frontier,
    Whatif,
}

fn endpoint_for(ticket: u64, mix: MixRatio) -> Endpoint {
    let m = ticket % mix.total();
    if m < u64::from(mix.plan) {
        Endpoint::Plan
    } else if m < u64::from(mix.plan) + u64::from(mix.frontier) {
        Endpoint::Frontier
    } else {
        Endpoint::Whatif
    }
}

fn request_for(cfg: &LoadgenConfig, ticket: u64) -> (&'static str, String) {
    match endpoint_for(ticket, cfg.mix) {
        Endpoint::Plan => {
            let mut o = Object::new();
            o.str("workload", &cfg.workload);
            o.u64("arm", u64::from(cfg.arm));
            o.u64("amd", u64::from(cfg.amd));
            o.f64("deadline_ms", cfg.deadline_ms);
            ("/plan", o.finish())
        }
        Endpoint::Frontier => {
            let mut o = Object::new();
            o.str("workload", &cfg.workload);
            o.u64("arm", u64::from(cfg.arm));
            o.u64("amd", u64::from(cfg.amd));
            ("/frontier", o.finish())
        }
        Endpoint::Whatif => {
            let mut o = Object::new();
            o.str("workload", &cfg.workload);
            o.f64("budget_w", cfg.budget_w);
            o.f64("deadline_ms", cfg.deadline_ms);
            ("/whatif", o.finish())
        }
    }
}

fn connect(addr: &str) -> std::io::Result<TcpStream> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    Ok(stream)
}

/// One request/response exchange; returns `(status, retry_after_s, body)`.
fn exchange(
    conn: &mut TcpStream,
    path: &str,
    body: &str,
) -> std::io::Result<(u16, Option<u64>, Vec<u8>)> {
    use std::io::Write as _;
    let wire = http::format_request("POST", path, body);
    conn.write_all(wire.as_bytes())?;
    let (status, headers, resp_body) = http::read_response(conn)?;
    let retry_after = headers
        .iter()
        .find(|(k, _)| k == "retry-after")
        .and_then(|(_, v)| v.parse().ok());
    Ok((status, retry_after, resp_body))
}

fn worker(cfg: &LoadgenConfig, tickets: &AtomicU64) -> WorkerOut {
    let mut out = WorkerOut {
        ok: 0,
        rejected_retries: 0,
        errors: 0,
        latencies_us: Vec::new(),
        frontier_cold_us: Vec::new(),
        frontier_warm_us: Vec::new(),
    };
    let mut conn = connect(&cfg.addr).ok();
    'tickets: loop {
        let ticket = tickets.fetch_add(1, Ordering::Relaxed);
        if ticket >= cfg.requests {
            break;
        }
        let (path, body) = request_for(cfg, ticket);
        let mut reconnects = 0u32;
        let mut backoffs = 0u32;
        loop {
            let Some(c) = conn.as_mut() else {
                match connect(&cfg.addr) {
                    Ok(c) => {
                        conn = Some(c);
                        continue;
                    }
                    Err(_) => {
                        out.errors += 1;
                        // The daemon is unreachable; stop burning tickets.
                        if reconnects >= 3 {
                            break 'tickets;
                        }
                        reconnects += 1;
                        std::thread::sleep(Duration::from_millis(20));
                        continue;
                    }
                }
            };
            let start = Instant::now();
            match exchange(c, path, &body) {
                Ok((200, _, resp_body)) => {
                    out.ok += 1;
                    out.latencies_us.push(start.elapsed().as_micros() as u64);
                    // `/plan` answers come off the same memoized frontier,
                    // so both endpoints sample the cold/warm compute clock
                    // (whichever arrives first takes the cold hit).
                    if path == "/frontier" || path == "/plan" {
                        record_frontier_compute(&resp_body, &mut out);
                    }
                    break;
                }
                Ok((503, retry_after, _)) => {
                    // Admission control asked us to back off; honor it
                    // (capped — Retry-After is in whole seconds) and retry
                    // the same ticket. 503 closes the connection.
                    out.rejected_retries += 1;
                    conn = None;
                    backoffs += 1;
                    if backoffs > 200 {
                        out.errors += 1;
                        break;
                    }
                    let wait = retry_after.map_or(10, |s| (s * 1000).min(100));
                    std::thread::sleep(Duration::from_millis(wait));
                }
                Ok((_status, _, _)) => {
                    out.errors += 1;
                    break;
                }
                Err(_) => {
                    // Connection died (e.g. server drain closed it); one
                    // reconnect retry per request before counting an error.
                    conn = None;
                    reconnects += 1;
                    if reconnects > 3 {
                        out.errors += 1;
                        break;
                    }
                }
            }
        }
    }
    out
}

fn record_frontier_compute(resp_body: &[u8], out: &mut WorkerOut) {
    let Ok(text) = std::str::from_utf8(resp_body) else {
        return;
    };
    let Ok(v) = json::parse(text) else { return };
    let Some(compute_us) = v.get("compute_us").and_then(Value::as_u64) else {
        return;
    };
    match v.get("cached").and_then(Value::as_bool) {
        Some(true) => out.frontier_warm_us.push(compute_us),
        Some(false) => out.frontier_cold_us.push(compute_us),
        None => {}
    }
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn median(mut v: Vec<u64>) -> u64 {
    if v.is_empty() {
        return 0;
    }
    v.sort_unstable();
    v[v.len() / 2]
}

/// Run the closed loop against a live daemon and aggregate the report.
#[must_use]
pub fn run(cfg: &LoadgenConfig) -> LoadReport {
    let tickets = AtomicU64::new(0);
    let start = Instant::now();
    let outs: Vec<WorkerOut> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.concurrency.max(1))
            .map(|_| s.spawn(|| worker(cfg, &tickets)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen worker panicked"))
            .collect()
    });
    let wall_s = start.elapsed().as_secs_f64();

    let mut report = LoadReport {
        sent: tickets.load(Ordering::Relaxed).min(cfg.requests),
        wall_s,
        ..LoadReport::default()
    };
    let mut latencies = Vec::new();
    let mut cold = Vec::new();
    let mut warm = Vec::new();
    for o in outs {
        report.ok += o.ok;
        report.rejected_retries += o.rejected_retries;
        report.errors += o.errors;
        latencies.extend(o.latencies_us);
        cold.extend(o.frontier_cold_us);
        warm.extend(o.frontier_warm_us);
    }
    latencies.sort_unstable();
    report.throughput_rps = if wall_s > 0.0 {
        report.ok as f64 / wall_s
    } else {
        0.0
    };
    report.p50_us = percentile(&latencies, 0.50);
    report.p90_us = percentile(&latencies, 0.90);
    report.p99_us = percentile(&latencies, 0.99);
    report.p999_us = percentile(&latencies, 0.999);
    report.max_us = latencies.last().copied().unwrap_or(0);
    report.frontier_cold_us = median(cold);
    // Release-build cache hits routinely round to 0 µs; floor the median at
    // 1 µs so the reported ratio stays finite (and conservative).
    report.frontier_warm_us = if warm.is_empty() {
        0
    } else {
        median(warm).max(1)
    };
    report.cache_speedup = if report.frontier_warm_us > 0 && report.frontier_cold_us > 0 {
        report.frontier_cold_us as f64 / report.frontier_warm_us as f64
    } else {
        0.0
    };
    report
}

impl LoadReport {
    /// Encode as the `BENCH_serve.json` artifact schema.
    #[must_use]
    pub fn to_json(&self, cfg: &LoadgenConfig) -> String {
        let mut o = Object::new();
        o.str("schema", "hecmix-bench-serve-v1");
        o.str("workload", &cfg.workload);
        o.u64("concurrency", cfg.concurrency as u64);
        o.str(
            "mix_plan_frontier_whatif",
            &format!("{}:{}:{}", cfg.mix.plan, cfg.mix.frontier, cfg.mix.whatif),
        );
        o.u64("sent", self.sent);
        o.u64("ok", self.ok);
        o.u64("rejected_retries", self.rejected_retries);
        o.u64("errors", self.errors);
        o.f64("wall_s", self.wall_s);
        o.f64("throughput_rps", self.throughput_rps);
        let mut l = Object::new();
        l.u64("p50", self.p50_us);
        l.u64("p90", self.p90_us);
        l.u64("p99", self.p99_us);
        l.u64("p999", self.p999_us);
        l.u64("max", self.max_us);
        o.raw("latency_us", &l.finish());
        let mut f = Object::new();
        f.u64("cold_us", self.frontier_cold_us);
        f.u64("warm_us", self.frontier_warm_us);
        f.f64("speedup", self.cache_speedup);
        o.raw("frontier_compute", &f.finish());
        o.finish()
    }

    /// Human-readable multi-line rendering for the CLI.
    #[must_use]
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "sent {}  ok {}  503-retries {}  errors {}\n",
            self.sent, self.ok, self.rejected_retries, self.errors
        ));
        s.push_str(&format!(
            "wall {:.2} s  throughput {:.1} req/s\n",
            self.wall_s, self.throughput_rps
        ));
        s.push_str(&format!(
            "latency µs  p50 {}  p90 {}  p99 {}  p99.9 {}  max {}\n",
            self.p50_us, self.p90_us, self.p99_us, self.p999_us, self.max_us
        ));
        if self.frontier_cold_us > 0 {
            s.push_str(&format!(
                "frontier compute  cold {} µs  warm {} µs  speedup {:.1}x\n",
                self.frontier_cold_us, self.frontier_warm_us, self.cache_speedup
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_parse_and_deterministic_schedule() {
        let mix = MixRatio::parse("2:2:1").expect("parse");
        assert_eq!(
            mix,
            MixRatio {
                plan: 2,
                frontier: 2,
                whatif: 1
            }
        );
        // Over one period: exactly the declared weights.
        let mut counts = [0u32; 3];
        for t in 0..5 {
            match endpoint_for(t, mix) {
                Endpoint::Plan => counts[0] += 1,
                Endpoint::Frontier => counts[1] += 1,
                Endpoint::Whatif => counts[2] += 1,
            }
        }
        assert_eq!(counts, [2, 2, 1]);
        assert!(MixRatio::parse("0:0:0").is_err());
        assert!(MixRatio::parse("1:2").is_err());
        assert!(MixRatio::parse("a:b:c").is_err());
    }

    #[test]
    fn percentiles_are_exact_on_small_samples() {
        let sorted = vec![10, 20, 30, 40, 50, 60, 70, 80, 90, 100];
        assert_eq!(percentile(&sorted, 0.50), 50);
        assert_eq!(percentile(&sorted, 0.90), 90);
        assert_eq!(percentile(&sorted, 0.99), 100);
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(median(vec![3, 1, 2]), 2);
    }

    #[test]
    fn report_json_has_schema_and_counts() {
        let cfg = LoadgenConfig::default();
        let report = LoadReport {
            sent: 10,
            ok: 10,
            frontier_cold_us: 8000,
            frontier_warm_us: 40,
            cache_speedup: 200.0,
            ..LoadReport::default()
        };
        let j = report.to_json(&cfg);
        let v = json::parse(&j).expect("valid JSON");
        assert_eq!(
            v.get("schema").and_then(Value::as_str),
            Some("hecmix-bench-serve-v1")
        );
        assert_eq!(v.get("ok").and_then(Value::as_u64), Some(10));
        assert!(v
            .get("frontier_compute")
            .and_then(|f| f.get("speedup"))
            .and_then(Value::as_f64)
            .is_some());
        assert!(!report.render().is_empty());
    }
}
