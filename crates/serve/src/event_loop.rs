//! The readiness-based I/O loop: one thread, many connections.
//!
//! Each loop owns a `poll(2)`-backed [`poll::Poller`] and a map of
//! nonblocking connections keyed by a loop-local, monotonically increasing
//! token. The loop's whole job is bounded-time plumbing:
//!
//! 1. wait for readiness (or a mailbox notify from the accept thread or
//!    compute pool),
//! 2. drain the mailbox — register new connections, write out computed
//!    responses for parked waiters,
//! 3. for each readable connection, read to `WouldBlock`, incrementally
//!    parse ([`http::try_parse`]), and route: cache hits and reads are
//!    answered in place, cache misses join the single-flight registry and
//!    *park* the connection (`busy`, fd stays registered) while the pool
//!    computes,
//! 4. flush partially written responses when sockets become writable,
//! 5. periodically retire idle keep-alive connections.
//!
//! Tokens are never reused, so a response delivered for a connection that
//! has since closed (for example a coalescing leader that hung up
//! mid-compute) simply misses the map and is dropped — no dangling-socket
//! hazard, no stranded follower.
//!
//! During drain the loop answers everything already parsed or in flight
//! (with `Connection: close`), sheds *new* computes with 503 so the job
//! queue can empty, closes idle connections, and exits once its map is
//! empty.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use hecmix_obs::{emit, Event};

use crate::api::{PendingCompute, PendingForward, RespCtx, Routed};
use crate::http::{self, Response};
use crate::server::{Job, Msg, Shared, Waiter};

/// How often the idle sweep runs.
const SWEEP_EVERY: Duration = Duration::from_millis(500);
/// Poll timeout: the liveness backstop for shutdown and idle sweeps.
const WAIT_TIMEOUT: Duration = Duration::from_millis(100);

/// One multiplexed connection.
struct Conn {
    stream: TcpStream,
    /// Bytes read but not yet parsed into a request.
    buf_in: Vec<u8>,
    /// The response being written, when the socket pushed back.
    buf_out: Vec<u8>,
    out_pos: usize,
    /// A request from this connection is parked on the compute pool; no
    /// further requests are parsed until its answer is delivered.
    busy: bool,
    /// Close once `buf_out` is fully flushed.
    close_after: bool,
    /// The current request asked for `Connection: close`.
    close_requested: bool,
    last_active: Instant,
    /// When `buf_in` started holding a *partial* request (slowloris
    /// guard): `None` whenever the input buffer is empty, reset on every
    /// parse. A peer trickling a header one byte at a time keeps
    /// `last_active` fresh forever — this deadline does not refresh.
    head_since: Option<Instant>,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            buf_in: Vec::new(),
            buf_out: Vec::new(),
            out_pos: 0,
            busy: false,
            close_after: false,
            close_requested: false,
            last_active: Instant::now(),
            head_since: None,
        }
    }
}

/// Entry point for one I/O thread.
pub(crate) fn io_loop(shared: &Shared, idx: usize) {
    IoLoop {
        idx,
        shared,
        conns: HashMap::new(),
        next_token: 0,
        events: Vec::new(),
        last_sweep: Instant::now(),
    }
    .run();
}

struct IoLoop<'a> {
    idx: usize,
    shared: &'a Shared,
    conns: HashMap<usize, Conn>,
    next_token: usize,
    events: Vec<poll::Event>,
    last_sweep: Instant,
}

enum FlushOutcome {
    /// Everything written; back to read interest.
    Done,
    /// The socket pushed back; wait for writability.
    Pending,
    /// Write failure or flush of a closing response.
    Close,
}

impl IoLoop<'_> {
    fn poller(&self) -> &poll::Poller {
        &self.shared.loops[self.idx].poller
    }

    fn run(&mut self) {
        loop {
            if self.shared.shutting_down() {
                self.drain_tick();
                if self.conns.is_empty() {
                    break;
                }
            }
            self.events.clear();
            let mut events = std::mem::take(&mut self.events);
            let _ = self.poller().wait(&mut events, Some(WAIT_TIMEOUT));
            self.events = events;
            let draining = self.shared.shutting_down();

            let msgs = self.shared.loops[self.idx].take();
            let (n_events, n_msgs) = (self.events.len(), msgs.len());
            if n_events > 0 || n_msgs > 0 {
                let io_thread = self.idx;
                emit(|| Event::EventLoopWakeup {
                    io_thread,
                    events: n_events,
                    messages: n_msgs,
                });
            }
            for msg in msgs {
                self.on_msg(msg, draining);
            }
            let events = std::mem::take(&mut self.events);
            for ev in &events {
                self.on_event(*ev, draining);
            }
            self.events = events;
            self.sweep_idle(draining);
        }
    }

    /// One drain pass: force-process anything already buffered (answer or
    /// shed it), then retire every connection with nothing in flight.
    fn drain_tick(&mut self) {
        let tokens: Vec<usize> = self.conns.keys().copied().collect();
        for token in tokens {
            self.on_readable(token, true);
        }
        let idle: Vec<usize> = self
            .conns
            .iter()
            .filter(|(_, c)| !c.busy && c.buf_out.is_empty())
            .map(|(&t, _)| t)
            .collect();
        for token in idle {
            self.close(token);
        }
    }

    fn on_msg(&mut self, msg: Msg, draining: bool) {
        match msg {
            Msg::Conn(stream) => {
                if draining {
                    // Admitted by the accept thread just before the flag
                    // flipped; refuse rather than start new work.
                    self.shared
                        .state
                        .metrics
                        .connections
                        .fetch_sub(1, Ordering::Relaxed);
                    return;
                }
                let token = self.next_token;
                self.next_token += 1;
                if self
                    .poller()
                    .add(&stream, poll::Event::readable(token))
                    .is_err()
                {
                    self.shared
                        .state
                        .metrics
                        .connections
                        .fetch_sub(1, Ordering::Relaxed);
                    return;
                }
                self.conns.insert(token, Conn::new(stream));
            }
            Msg::Response {
                token,
                resp,
                start,
                path,
                cached,
            } => {
                if !self.conns.contains_key(&token) {
                    // The waiter's connection died mid-compute (leader or
                    // follower — tokens are never reused, so this is the
                    // only thing a stale token can mean). Discard.
                    return;
                }
                let state = Arc::clone(&self.shared.state);
                state.record_done(self.idx, path, &resp, start.elapsed(), cached);
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.busy = false;
                }
                self.send(token, resp, draining);
            }
        }
    }

    fn on_event(&mut self, ev: poll::Event, draining: bool) {
        if !self.conns.contains_key(&ev.key) {
            return;
        }
        if ev.writable {
            let pending = self
                .conns
                .get(&ev.key)
                .is_some_and(|c| !c.buf_out.is_empty());
            if pending {
                self.flush(ev.key, draining);
            }
        }
        if ev.readable {
            self.on_readable(ev.key, draining);
        }
    }

    /// Read everything the kernel has, then try to make progress parsing.
    fn on_readable(&mut self, token: usize, draining: bool) {
        let mut closed = false;
        {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            let mut chunk = [0u8; 4096];
            loop {
                match conn.stream.read(&mut chunk) {
                    Ok(0) => {
                        closed = true;
                        break;
                    }
                    Ok(n) => {
                        conn.buf_in.extend_from_slice(&chunk[..n]);
                        conn.last_active = Instant::now();
                        if conn.buf_in.len() > http::MAX_HEAD_BYTES + http::MAX_BODY_BYTES {
                            // A peer streaming garbage without ever forming
                            // a request does not get unbounded memory.
                            closed = true;
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        closed = true;
                        break;
                    }
                }
            }
            if !conn.buf_in.is_empty() && conn.head_since.is_none() {
                conn.head_since = Some(Instant::now());
            }
        }
        if closed {
            self.close(token);
            return;
        }
        self.pump(token, draining);
    }

    /// Parse and handle buffered requests until the connection parks,
    /// pushes back, or runs out of complete requests.
    fn pump(&mut self, token: usize, draining: bool) {
        loop {
            let parsed = {
                let Some(conn) = self.conns.get_mut(&token) else {
                    return;
                };
                if conn.busy || !conn.buf_out.is_empty() || conn.buf_in.is_empty() {
                    return;
                }
                match http::try_parse(&conn.buf_in) {
                    Ok(Some((req, consumed))) => {
                        conn.buf_in.drain(..consumed);
                        // A complete request resets the slowloris clock;
                        // pipelined leftovers start a fresh deadline.
                        conn.head_since = (!conn.buf_in.is_empty()).then(Instant::now);
                        conn.close_requested = req.wants_close();
                        Ok(req)
                    }
                    Ok(None) => return,
                    Err(msg) => Err(msg),
                }
            };
            match parsed {
                Ok(req) => self.handle_request(token, &req, draining),
                Err(msg) => {
                    let mut resp = Response::error(400, &msg);
                    resp.close = true;
                    self.send(token, resp, draining);
                    return;
                }
            }
        }
    }

    fn handle_request(&mut self, token: usize, req: &http::Request, draining: bool) {
        let start = Instant::now();
        let state = Arc::clone(&self.shared.state);
        let queue_depth = state.metrics.queue_depth.load(Ordering::Relaxed);
        {
            let path = req.path.clone();
            emit(move || Event::RequestStart { path, queue_depth });
        }
        match state.route(req) {
            Routed::Ready { resp, cached } => {
                state.record_done(self.idx, &req.path, &resp, start.elapsed(), cached);
                self.send(token, resp, draining);
            }
            Routed::Compute(pc) => {
                if draining {
                    self.shed_now(token, start, pc.ctx.path(), draining);
                    return;
                }
                let PendingCompute {
                    key,
                    spec,
                    store,
                    ctx,
                } = pc;
                let path = ctx.path();
                let waiter_store = Arc::clone(&store);
                let (idx, loop_token) = (self.idx, token);
                let is_leader = self.shared.flight.join_with(key, move |leader| Waiter {
                    loop_idx: idx,
                    token: loop_token,
                    ctx,
                    store: waiter_store,
                    start,
                    coalesced: !leader,
                });
                if is_leader {
                    let job = Job::Compute {
                        key,
                        spec,
                        store,
                        enqueued: Instant::now(),
                    };
                    match self.shared.jobs.push(job) {
                        Ok(()) => {
                            state
                                .metrics
                                .queue_depth
                                .store(self.shared.jobs.depth(), Ordering::Relaxed);
                        }
                        Err(_) => {
                            // Backpressure: fail the flight we just opened
                            // (it holds only this request) via the mailbox.
                            for waiter in self.shared.flight.complete(key) {
                                self.shared.shed(waiter, "compute queue full");
                            }
                        }
                    }
                } else {
                    state.metrics.coalesced.fetch_add(1, Ordering::Relaxed);
                    emit(|| Event::RequestCoalesced {
                        path: path.to_owned(),
                        key,
                    });
                }
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.busy = true;
                }
            }
            Routed::Forward(pf) => {
                if draining {
                    self.shed_now(token, start, pf.path, draining);
                    return;
                }
                let PendingForward { key, path, body } = pf;
                let waiter = Waiter {
                    loop_idx: self.idx,
                    token,
                    ctx: RespCtx::Proxy(path),
                    store: state.store(),
                    start,
                    coalesced: false,
                };
                let job = Job::Forward {
                    waiter,
                    key,
                    body,
                    enqueued: Instant::now(),
                };
                if let Err(job) = self.shared.jobs.push(job) {
                    if let Job::Forward { waiter, .. } = job {
                        self.shared.shed(waiter, "compute queue full");
                    }
                } else {
                    state
                        .metrics
                        .queue_depth
                        .store(self.shared.jobs.depth(), Ordering::Relaxed);
                }
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.busy = true;
                }
            }
            Routed::Reload => {
                if draining {
                    self.shed_now(token, start, "/reload", draining);
                    return;
                }
                let waiter = Waiter {
                    loop_idx: self.idx,
                    token,
                    ctx: RespCtx::Reload,
                    store: state.store(),
                    start,
                    coalesced: false,
                };
                if let Err(job) = self.shared.jobs.push(Job::Reload { waiter }) {
                    if let Job::Reload { waiter } = job {
                        self.shared.shed(waiter, "compute queue full");
                    }
                } else {
                    state
                        .metrics
                        .queue_depth
                        .store(self.shared.jobs.depth(), Ordering::Relaxed);
                }
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.busy = true;
                }
            }
        }
    }

    /// Answer a compute-needing request with 503 during drain, without
    /// touching the (already draining) job queue.
    fn shed_now(&mut self, token: usize, start: Instant, path: &'static str, draining: bool) {
        let state = Arc::clone(&self.shared.state);
        state.metrics.rejected.fetch_add(1, Ordering::Relaxed);
        let retry_after_s = self.shared.config.retry_after_s;
        let queue_depth = self.shared.jobs.depth();
        emit(|| Event::RequestRejected {
            queue_depth,
            retry_after_s,
        });
        let mut resp = Response::error(503, "draining");
        resp.retry_after_s = Some(retry_after_s);
        resp.close = true;
        state.record_done(self.idx, path, &resp, start.elapsed(), false);
        self.send(token, resp, draining);
    }

    /// Queue `resp` on the connection and write as much as the socket
    /// takes right now.
    fn send(&mut self, token: usize, mut resp: Response, draining: bool) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if draining || conn.close_requested {
            resp.close = true;
        }
        conn.close_after = resp.close;
        conn.buf_out = resp.to_bytes();
        conn.out_pos = 0;
        self.flush(token, draining);
    }

    fn flush(&mut self, token: usize, draining: bool) {
        let outcome = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            let mut outcome = FlushOutcome::Done;
            while conn.out_pos < conn.buf_out.len() {
                match conn.stream.write(&conn.buf_out[conn.out_pos..]) {
                    Ok(0) => {
                        outcome = FlushOutcome::Close;
                        break;
                    }
                    Ok(n) => {
                        conn.out_pos += n;
                        conn.last_active = Instant::now();
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        outcome = FlushOutcome::Pending;
                        break;
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        outcome = FlushOutcome::Close;
                        break;
                    }
                }
            }
            if matches!(outcome, FlushOutcome::Done) {
                conn.buf_out.clear();
                conn.out_pos = 0;
                if conn.close_after {
                    outcome = FlushOutcome::Close;
                }
            }
            outcome
        };
        match outcome {
            FlushOutcome::Close => self.close(token),
            FlushOutcome::Pending => {
                if let Some(conn) = self.conns.get(&token) {
                    let _ = self.poller().modify(&conn.stream, poll::Event::all(token));
                }
            }
            FlushOutcome::Done => {
                if let Some(conn) = self.conns.get(&token) {
                    let _ = self
                        .poller()
                        .modify(&conn.stream, poll::Event::readable(token));
                }
                // A pipelined follow-up may already be buffered.
                self.pump(token, draining);
            }
        }
    }

    /// Retire keep-alive connections idle past the read timeout. During
    /// drain this also bounds how long a stuck peer (parked compute whose
    /// client never reads) can hold up exit.
    fn sweep_idle(&mut self, draining: bool) {
        if self.last_sweep.elapsed() < SWEEP_EVERY {
            return;
        }
        self.last_sweep = Instant::now();
        // Slowloris guard: a connection that has held a partial request
        // head past the deadline is answered 408 and closed. (`busy` and
        // pending-write connections are excluded — they are making
        // progress elsewhere.)
        let head_deadline = self.shared.config.head_deadline;
        let slow: Vec<usize> = self
            .conns
            .iter()
            .filter(|(_, c)| {
                !c.busy
                    && c.buf_out.is_empty()
                    && c.head_since.is_some_and(|t| t.elapsed() > head_deadline)
            })
            .map(|(&t, _)| t)
            .collect();
        for token in slow {
            self.shared
                .state
                .metrics
                .timeouts
                .fetch_add(1, Ordering::Relaxed);
            let mut resp = Response::error(408, "timed out waiting for request head");
            resp.close = true;
            self.send(token, resp, draining);
        }
        let timeout = self.shared.config.read_timeout;
        let stale: Vec<usize> = self
            .conns
            .iter()
            .filter(|(_, c)| {
                c.last_active.elapsed() > timeout && (draining || (!c.busy && c.buf_out.is_empty()))
            })
            .map(|(&t, _)| t)
            .collect();
        for token in stale {
            self.close(token);
        }
    }

    fn close(&mut self, token: usize) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self.poller().delete(&conn.stream);
            self.shared
                .state
                .metrics
                .connections
                .fetch_sub(1, Ordering::Relaxed);
        }
    }
}
