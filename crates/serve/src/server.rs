//! The daemon: accept thread, readiness-based I/O loops, compute pool.
//!
//! Threading model (one picture):
//!
//! ```text
//!              ┌──────────┐  round-robin   ┌───────────────┐
//!  TCP ───────▶│  accept  │ ─────────────▶ │  I/O loop 0…I │◀── poll(2) readiness
//!  clients     │  thread  │  > max conns   │ (nonblocking, │     over every
//!              └──────────┘  → 503 + R-A   │  many conns)  │     registered conn
//!                                          └──────┬────────┘
//!                             cache miss → single-flight join
//!                                          ┌──────▼────────┐
//!                                          │ bounded job   │  full? → 503
//!                                          │ queue + cv    │
//!                                          └──────┬────────┘
//!                                          ┌──────▼────────┐
//!                                          │ compute 0…W   │ → result fans out to
//!                                          └───────────────┘   every parked waiter
//!                                                              via the loop mailbox
//! ```
//!
//! * The **accept thread** is the admission controller: past
//!   `max_connections` it answers `503 Service Unavailable` with
//!   `Retry-After` itself, so overload is visible to clients immediately.
//!   Admitted sockets are made nonblocking and round-robined across the
//!   I/O loops.
//! * Each **I/O loop** (the private `event_loop` module) multiplexes hundreds to
//!   thousands of keep-alive connections over one `poll(2)` registration
//!   set. Everything it does is bounded-time: parse, cache lookup, format,
//!   buffered writes. A connection whose request misses the plan cache is
//!   *parked* (marked busy, fd stays registered) and its compute goes to
//!   the pool — the loop never blocks on a sweep.
//! * Concurrent misses on the same cache key **coalesce**
//!   ([`crate::singleflight`]): the first joiner enqueues one job, later
//!   joiners just park. The pool computes once and the result is fanned
//!   out to every waiter through its loop's mailbox. Waiters are
//!   addressed by loop + token, never by socket, so a waiter (even the
//!   leader) disconnecting mid-compute is discarded at delivery without
//!   affecting the rest of the flight.
//! * The **compute pool** pulls from a bounded job queue (a full queue
//!   503s the whole flight immediately — backpressure, not backlog) and
//!   sheds jobs that waited past `queue_deadline`. `POST /reload` runs
//!   here too, so a model rebuild + cache warm never stalls an I/O loop.
//! * **Shutdown** is a relaxed [`AtomicBool`] plus a wakeup broadcast: the
//!   accept thread closes the listener, I/O loops answer whatever is
//!   parsed or in flight (with `Connection: close`), shed new computes,
//!   and retire idle connections; the pool drains every queued job so no
//!   parked waiter is ever stranded. [`ServerHandle::join`] returns when
//!   every thread is gone.

use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use hecmix_obs::{emit, Event};

use crate::api::{self, AppState, ComputeSpec, RespCtx};
use crate::http::Response;
use crate::singleflight::SingleFlight;
use crate::store::ModelStore;

/// Tunables for one daemon instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, `HOST:PORT` (port 0 picks an ephemeral port).
    pub addr: String,
    /// Readiness-driven I/O threads; each multiplexes its share of the
    /// connections.
    pub io_threads: usize,
    /// Compute-pool threads (plan sweeps and reloads).
    pub workers: usize,
    /// Open-connection cap; beyond it, admission control rejects.
    pub max_connections: usize,
    /// Bounded compute-job queue capacity; a full queue 503s new misses.
    pub queue_capacity: usize,
    /// Idle timeout: keep-alive connections quiet for longer are retired.
    pub read_timeout: Duration,
    /// Slowloris guard: a connection holding a *partial* request head for
    /// longer than this is answered `408` and closed (idle keep-alive
    /// connections with empty buffers get the full `read_timeout`).
    pub head_deadline: Duration,
    /// Compute jobs that waited longer than this in the queue are shed
    /// with a 503 instead of computed (their clients have likely timed
    /// out anyway).
    pub queue_deadline: Duration,
    /// `Retry-After` seconds advertised on 503 rejections.
    pub retry_after_s: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let cpus = std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get);
        Self {
            addr: "127.0.0.1:0".to_owned(),
            io_threads: cpus.min(2),
            workers: cpus.min(8),
            max_connections: 1024,
            queue_capacity: 256,
            read_timeout: Duration::from_secs(5),
            head_deadline: Duration::from_secs(2),
            queue_deadline: Duration::from_secs(2),
            retry_after_s: 1,
        }
    }
}

/// A message to an I/O loop (new connection, or a computed response for a
/// parked waiter).
pub(crate) enum Msg {
    /// A freshly admitted nonblocking connection.
    Conn(TcpStream),
    /// A finished response for the waiter parked under `token`.
    Response {
        /// The loop-local connection token.
        token: usize,
        /// The fully formatted response.
        resp: Response,
        /// When the request started (for latency accounting).
        start: Instant,
        /// Endpoint path (for telemetry).
        path: &'static str,
        /// Whether the answer came from the cache.
        cached: bool,
    },
}

/// One I/O loop's inbox plus the poller that wakes it.
pub(crate) struct Mailbox {
    msgs: Mutex<Vec<Msg>>,
    pub(crate) poller: poll::Poller,
}

impl Mailbox {
    fn new(poller: poll::Poller) -> Self {
        Self {
            msgs: Mutex::new(Vec::new()),
            poller,
        }
    }

    pub(crate) fn send(&self, msg: Msg) {
        self.msgs.lock().expect("mailbox poisoned").push(msg);
        let _ = self.poller.notify();
    }

    pub(crate) fn take(&self) -> Vec<Msg> {
        std::mem::take(&mut *self.msgs.lock().expect("mailbox poisoned"))
    }
}

/// A request parked while its compute is in flight: where to deliver the
/// answer and how to format it. Holds no socket — delivery to a token
/// whose connection has since closed is a no-op.
pub(crate) struct Waiter {
    pub(crate) loop_idx: usize,
    pub(crate) token: usize,
    pub(crate) ctx: RespCtx,
    pub(crate) store: Arc<ModelStore>,
    pub(crate) start: Instant,
    pub(crate) coalesced: bool,
}

/// Work for the compute pool.
pub(crate) enum Job {
    /// One single-flight plan computation; completion fans out to every
    /// waiter registered under `key`.
    Compute {
        key: u64,
        spec: ComputeSpec,
        store: Arc<ModelStore>,
        enqueued: Instant,
    },
    /// A model reload + cache warm, answered to one waiter.
    Reload { waiter: Waiter },
    /// Gateway mode: forward one request through the fleet (blocking
    /// through retries and hedges), answered to one waiter.
    Forward {
        waiter: Waiter,
        key: u64,
        body: String,
        enqueued: Instant,
    },
}

/// Bounded MPMC job queue for the compute pool.
pub(crate) struct JobQueue {
    q: Mutex<VecDeque<Job>>,
    cv: Condvar,
    capacity: usize,
}

impl JobQueue {
    fn new(capacity: usize) -> Self {
        Self {
            q: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            capacity,
        }
    }

    /// Enqueue `job`, or hand it back if the queue is at capacity.
    // The large Err is the point: a shed job returns to the caller so the
    // waiter inside it can be answered 503 — boxing would be pure churn.
    #[allow(clippy::result_large_err)]
    pub(crate) fn push(&self, job: Job) -> Result<(), Job> {
        let mut q = self.q.lock().expect("job queue poisoned");
        if q.len() >= self.capacity {
            return Err(job);
        }
        q.push_back(job);
        drop(q);
        self.cv.notify_one();
        Ok(())
    }

    /// Dequeue the next job; `None` once shutdown is flagged **and** the
    /// queue is empty (pop-before-check, so jobs pushed right before the
    /// flag are still drained and no waiter is stranded).
    fn pop(&self, shutdown: &AtomicBool) -> Option<Job> {
        let mut q = self.q.lock().expect("job queue poisoned");
        loop {
            if let Some(job) = q.pop_front() {
                return Some(job);
            }
            if shutdown.load(Ordering::Relaxed) {
                return None;
            }
            // The timeout is a liveness backstop against a lost
            // notification; the condvar is the fast path.
            let (guard, _timeout) = self
                .cv
                .wait_timeout(q, Duration::from_millis(100))
                .expect("job queue poisoned");
            q = guard;
        }
    }

    pub(crate) fn depth(&self) -> usize {
        self.q.lock().expect("job queue poisoned").len()
    }

    fn wake_all(&self) {
        self.cv.notify_all();
    }
}

/// Everything the accept thread, I/O loops, and compute pool share.
pub(crate) struct Shared {
    pub(crate) config: ServeConfig,
    pub(crate) state: Arc<AppState>,
    pub(crate) flight: SingleFlight<Waiter>,
    pub(crate) jobs: JobQueue,
    pub(crate) loops: Vec<Mailbox>,
    shutdown: AtomicBool,
}

impl Shared {
    pub(crate) fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    /// Route a finished response back to the waiter's I/O loop.
    pub(crate) fn deliver(&self, waiter: Waiter, resp: Response, cached: bool) {
        self.loops[waiter.loop_idx].send(Msg::Response {
            token: waiter.token,
            resp,
            start: waiter.start,
            path: waiter.ctx.path(),
            cached,
        });
    }

    /// Shed one waiter with a 503 (queue full, queue deadline, or drain).
    pub(crate) fn shed(&self, waiter: Waiter, why: &str) {
        self.state.metrics.rejected.fetch_add(1, Ordering::Relaxed);
        let retry_after_s = self.config.retry_after_s;
        let queue_depth = self.jobs.depth();
        emit(|| Event::RequestRejected {
            queue_depth,
            retry_after_s,
        });
        let mut resp = Response::error(503, why);
        resp.retry_after_s = Some(retry_after_s);
        self.deliver(waiter, resp, false);
    }
}

/// A running daemon. Dropping the handle does **not** stop the server;
/// call [`ServerHandle::shutdown`] then [`ServerHandle::join`].
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    io: Vec<JoinHandle<()>>,
    compute: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the actual ephemeral port).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Compute jobs currently waiting for a pool thread.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.shared.jobs.depth()
    }

    /// Currently open client connections.
    #[must_use]
    pub fn connections(&self) -> usize {
        self.shared
            .state
            .metrics
            .connections
            .load(Ordering::Relaxed)
    }

    /// Begin graceful shutdown: stop admitting, answer or shed everything
    /// in flight, drain the job queue. Returns immediately; pair with
    /// [`ServerHandle::join`].
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        self.shared.jobs.wake_all();
        for mailbox in &self.shared.loops {
            let _ = mailbox.poller.notify();
        }
    }

    /// Block until every thread has drained and exited. Implies
    /// [`ServerHandle::shutdown`].
    pub fn join(mut self) {
        self.shutdown();
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        for t in self.compute.drain(..) {
            let _ = t.join();
        }
        for t in self.io.drain(..) {
            let _ = t.join();
        }
    }
}

/// Bind, spawn the I/O loops, compute pool, and accept thread, and return
/// the handle.
///
/// # Errors
/// Propagates bind/poller/thread-spawn I/O errors.
pub fn start(config: ServeConfig, state: Arc<AppState>) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let io_threads = config.io_threads.max(1);
    let mut loops = Vec::with_capacity(io_threads);
    for _ in 0..io_threads {
        loops.push(Mailbox::new(poll::Poller::new()?));
    }

    let shared = Arc::new(Shared {
        config: config.clone(),
        state,
        flight: SingleFlight::new(),
        jobs: JobQueue::new(config.queue_capacity.max(1)),
        loops,
        shutdown: AtomicBool::new(false),
    });

    let mut compute = Vec::with_capacity(config.workers.max(1));
    for worker in 0..config.workers.max(1) {
        let shared = Arc::clone(&shared);
        compute.push(
            std::thread::Builder::new()
                .name(format!("hecmix-compute-{worker}"))
                .spawn(move || compute_loop(&shared))?,
        );
    }

    let mut io = Vec::with_capacity(io_threads);
    for idx in 0..io_threads {
        let shared = Arc::clone(&shared);
        io.push(
            std::thread::Builder::new()
                .name(format!("hecmix-io-{idx}"))
                .spawn(move || crate::event_loop::io_loop(&shared, idx))?,
        );
    }

    let accept = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("hecmix-accept".to_owned())
            .spawn(move || accept_loop(&listener, &shared))?
    };

    Ok(ServerHandle {
        addr,
        shared,
        accept: Some(accept),
        io,
        compute,
    })
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    let mut next = 0usize;
    while !shared.shutting_down() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let open = shared.state.metrics.connections.load(Ordering::Relaxed);
                if open >= shared.config.max_connections {
                    reject(stream, shared);
                    continue;
                }
                let _ = stream.set_nodelay(true);
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                shared
                    .state
                    .metrics
                    .connections
                    .fetch_add(1, Ordering::Relaxed);
                shared.loops[next % shared.loops.len()].send(Msg::Conn(stream));
                next += 1;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                // Nonblocking accept doubles as the shutdown poll point.
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    // Listener drops here: new connects are refused while everyone drains.
    shared.jobs.wake_all();
    for mailbox in &shared.loops {
        let _ = mailbox.poller.notify();
    }
}

/// Admission-control rejection: written by the accept thread itself so the
/// client learns about overload with zero queueing delay.
fn reject(mut stream: TcpStream, shared: &Shared) {
    let retry_after_s = shared.config.retry_after_s;
    let queue_depth = shared.jobs.depth();
    shared
        .state
        .metrics
        .rejected
        .fetch_add(1, Ordering::Relaxed);
    emit(|| Event::RequestRejected {
        queue_depth,
        retry_after_s,
    });
    // Accepted sockets inherit the listener's nonblocking mode; this one
    // write is blocking on purpose (tiny, and the accept thread has
    // nothing better to do under overload).
    let _ = stream.set_nonblocking(false);
    let mut resp = Response::error(503, "connection limit reached");
    resp.retry_after_s = Some(retry_after_s);
    resp.close = true;
    let _ = resp.write_to(&mut stream);
}

/// One compute-pool thread: pull jobs until shutdown *and* empty, compute
/// once per flight, fan the result out to every parked waiter.
fn compute_loop(shared: &Shared) {
    while let Some(job) = shared.jobs.pop(&shared.shutdown) {
        shared
            .state
            .metrics
            .queue_depth
            .store(shared.jobs.depth(), Ordering::Relaxed);
        match job {
            Job::Compute {
                key,
                spec,
                store,
                enqueued,
            } => {
                if enqueued.elapsed() > shared.config.queue_deadline && !shared.shutting_down() {
                    // Stale work: the clients have waited past the deadline,
                    // shed the whole flight rather than burn a sweep on it.
                    // (During drain we compute anyway — answering parked
                    // waiters beats 503ing them on the way out.)
                    for waiter in shared.flight.complete(key) {
                        shared.shed(waiter, "compute queue deadline exceeded");
                    }
                    continue;
                }
                let result = shared.state.compute(&spec, &store);
                // Complete *after* the cache insert: a request that missed
                // the cache an instant ago either joined this flight (and
                // is in `waiters`) or will now hit the cache.
                let waiters = shared.flight.complete(key);
                match result {
                    Ok(plan) => {
                        for waiter in waiters {
                            let resp = api::format_response(
                                &waiter.ctx,
                                &waiter.store,
                                &plan,
                                false,
                                waiter.coalesced,
                                plan.compute_us,
                            );
                            shared.deliver(waiter, resp, false);
                        }
                    }
                    Err(err) => {
                        for waiter in waiters {
                            shared.deliver(waiter, err.clone(), false);
                        }
                    }
                }
            }
            Job::Reload { waiter } => {
                let resp = shared.state.do_reload();
                shared.deliver(waiter, resp, false);
            }
            Job::Forward {
                waiter,
                key,
                body,
                enqueued,
            } => {
                if enqueued.elapsed() > shared.config.queue_deadline && !shared.shutting_down() {
                    shared.shed(waiter, "forward queue deadline exceeded");
                    continue;
                }
                let resp = shared.state.forward(key, waiter.ctx.path(), &body);
                // The replica, not the gateway, knows whether it answered
                // from cache; recover the flag for telemetry parity.
                let cached = resp.body.contains("\"cached\":true");
                shared.deliver(waiter, resp, cached);
            }
        }
    }
}
