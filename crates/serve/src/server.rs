//! The daemon: accept loop, bounded queue, worker pool, graceful drain.
//!
//! Threading model (one picture):
//!
//! ```text
//!             ┌──────────┐   bounded VecDeque + Condvar   ┌──────────┐
//!  TCP ──────▶│  accept  │ ─────────────────────────────▶ │ worker 0 │
//!  clients    │  thread  │   full? → 503 + Retry-After    │    …     │
//!             └──────────┘                                │ worker N │
//!                                                         └──────────┘
//! ```
//!
//! * The accept thread is the **admission controller**: when the queue is
//!   at capacity it answers `503 Service Unavailable` with a `Retry-After`
//!   header itself, so overload is visible to clients immediately instead
//!   of accumulating as an invisible backlog.
//! * Workers own connections for their keep-alive lifetime. Per-request
//!   socket read timeouts bound how long an idle or stalled peer can hold
//!   a worker; a **queue deadline** sheds connections that waited too long
//!   to be worth serving.
//! * Shutdown is a relaxed [`AtomicBool`]: the accept thread stops
//!   admitting and closes the listener, workers finish their in-flight
//!   request (answering it with `Connection: close`), drain what is
//!   already queued, and exit. [`ServerHandle::join`] returns when every
//!   thread is gone — no in-flight response is ever dropped.

use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use hecmix_obs::{emit, Event};

use crate::api::AppState;
use crate::http::{self, ReadError, Request, Response};

/// Tunables for one daemon instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, `HOST:PORT` (port 0 picks an ephemeral port).
    pub addr: String,
    /// Worker threads (each owns one connection at a time).
    pub workers: usize,
    /// Bounded accept-queue capacity; beyond it, admission control rejects.
    pub queue_capacity: usize,
    /// Per-read socket timeout: bounds idle keep-alive connections and
    /// stalled senders.
    pub read_timeout: Duration,
    /// Connections that waited longer than this in the queue are shed with
    /// a 503 instead of served (their client has likely timed out anyway).
    pub queue_deadline: Duration,
    /// `Retry-After` seconds advertised on 503 rejections.
    pub retry_after_s: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let cpus = std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get);
        Self {
            addr: "127.0.0.1:0".to_owned(),
            workers: cpus.min(8),
            queue_capacity: 64,
            read_timeout: Duration::from_secs(5),
            queue_deadline: Duration::from_secs(2),
            retry_after_s: 1,
        }
    }
}

struct Queued {
    stream: TcpStream,
    enqueued: Instant,
}

struct Shared {
    queue: Mutex<VecDeque<Queued>>,
    cv: Condvar,
    shutdown: AtomicBool,
    config: ServeConfig,
    state: Arc<AppState>,
}

impl Shared {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }
}

/// A running daemon. Dropping the handle does **not** stop the server;
/// call [`ServerHandle::shutdown`] then [`ServerHandle::join`].
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the actual ephemeral port).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections currently waiting in the bounded queue.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.shared
            .queue
            .lock()
            .expect("accept queue poisoned")
            .len()
    }

    /// Begin graceful shutdown: stop admitting, drain queued and in-flight
    /// work. Returns immediately; pair with [`ServerHandle::join`].
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        self.shared.cv.notify_all();
    }

    /// Block until every thread has drained and exited. Implies
    /// [`ServerHandle::shutdown`].
    pub fn join(mut self) {
        self.shutdown();
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
    }
}

/// Bind, spawn the worker pool and accept thread, and return the handle.
///
/// # Errors
/// Propagates bind/configuration I/O errors.
pub fn start(config: ServeConfig, state: Arc<AppState>) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        cv: Condvar::new(),
        shutdown: AtomicBool::new(false),
        config: config.clone(),
        state,
    });

    let mut workers = Vec::with_capacity(config.workers.max(1));
    for worker in 0..config.workers.max(1) {
        let shared = Arc::clone(&shared);
        workers.push(
            std::thread::Builder::new()
                .name(format!("hecmix-worker-{worker}"))
                .spawn(move || worker_loop(&shared, worker))?,
        );
    }

    let accept = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("hecmix-accept".to_owned())
            .spawn(move || accept_loop(&listener, &shared))?
    };

    Ok(ServerHandle {
        addr,
        shared,
        accept: Some(accept),
        workers,
    })
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    while !shared.shutting_down() {
        match listener.accept() {
            Ok((stream, _peer)) => admit(stream, shared),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                // Nonblocking accept doubles as the shutdown poll point.
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    // Listener drops here: new connects are refused while workers drain.
    shared.cv.notify_all();
}

fn admit(stream: TcpStream, shared: &Shared) {
    // Accepted sockets may inherit the listener's nonblocking mode.
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    let _ = stream.set_nodelay(true);

    let capacity = shared.config.queue_capacity;
    let mut queue = shared.queue.lock().expect("accept queue poisoned");
    if queue.len() >= capacity {
        drop(queue);
        reject(stream, shared);
        return;
    }
    queue.push_back(Queued {
        stream,
        enqueued: Instant::now(),
    });
    let depth = queue.len();
    drop(queue);
    shared
        .state
        .metrics
        .queue_depth
        .store(depth, Ordering::Relaxed);
    shared.cv.notify_one();
}

/// Admission-control rejection: written by the accept thread itself so the
/// client learns about overload with zero queueing delay.
fn reject(mut stream: TcpStream, shared: &Shared) {
    let capacity = shared.config.queue_capacity;
    let retry_after_s = shared.config.retry_after_s;
    shared
        .state
        .metrics
        .rejected
        .fetch_add(1, Ordering::Relaxed);
    emit(|| Event::RequestRejected {
        queue_depth: capacity,
        retry_after_s,
    });
    let mut resp = Response::error(503, "accept queue full");
    resp.retry_after_s = Some(retry_after_s);
    resp.close = true;
    let _ = resp.write_to(&mut stream);
}

fn worker_loop(shared: &Shared, worker: usize) {
    loop {
        let queued = {
            let mut queue = shared.queue.lock().expect("accept queue poisoned");
            loop {
                if let Some(q) = queue.pop_front() {
                    shared
                        .state
                        .metrics
                        .queue_depth
                        .store(queue.len(), Ordering::Relaxed);
                    break Some(q);
                }
                if shared.shutting_down() {
                    break None;
                }
                // The timeout is a liveness backstop against a lost
                // notification; the condvar is the fast path.
                let (guard, _timeout) = shared
                    .cv
                    .wait_timeout(queue, Duration::from_millis(100))
                    .expect("accept queue poisoned");
                queue = guard;
            }
        };
        let Some(queued) = queued else { break };
        if queued.enqueued.elapsed() > shared.config.queue_deadline {
            // Stale work: the client has waited past the deadline, shed it
            // like an admission rejection rather than burn compute on it.
            reject(queued.stream, shared);
            continue;
        }
        handle_connection(queued.stream, shared, worker);
    }
}

/// Serve one keep-alive connection until the peer closes, errors, idles
/// past the read timeout, or the daemon begins draining.
fn handle_connection(mut stream: TcpStream, shared: &Shared, worker: usize) {
    loop {
        let req: Request = match http::read_request(&mut stream) {
            Ok(req) => req,
            Err(ReadError::Closed) => break,
            Err(ReadError::TimedOut) => break,
            Err(ReadError::Malformed(msg)) => {
                let mut resp = Response::error(400, &msg);
                resp.close = true;
                let _ = resp.write_to(&mut stream);
                break;
            }
            Err(ReadError::Io(_)) => break,
        };
        let mut resp = shared.state.handle(worker, &req);
        // Draining: answer the in-flight request, then close so the peer
        // reconnects elsewhere (or gives up) instead of idling on us.
        if shared.shutting_down() || req.wants_close() {
            resp.close = true;
        }
        if resp.write_to(&mut stream).is_err() {
            break;
        }
        if resp.close {
            break;
        }
    }
}
