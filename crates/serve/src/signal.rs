//! Minimal SIGINT/SIGTERM latch for graceful shutdown.
//!
//! The workspace is `std`-only (no `ctrlc`, no `signal-hook`), but `std`
//! already links libc, so the classic `signal(2)` registration is one
//! `extern "C"` declaration away. The handler does the only
//! async-signal-safe thing it needs to: set a relaxed [`AtomicBool`] that
//! the daemon's main loop polls to begin draining.
//!
//! On non-Unix targets installation is a no-op and [`interrupted`] is
//! always `false`; the daemon then only stops via its programmatic
//! [`crate::ServerHandle::shutdown`].

use std::sync::atomic::{AtomicBool, Ordering};

static INTERRUPTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use super::{Ordering, INTERRUPTED};

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Only async-signal-safe work here: one relaxed store.
        INTERRUPTED.store(true, Ordering::Relaxed);
    }

    pub(super) fn install() {
        // SAFETY: `signal` with a handler that only touches an AtomicBool
        // is the textbook-safe use; the previous disposition is discarded
        // deliberately (the daemon owns these signals).
        unsafe {
            let handler = on_signal as *const () as usize;
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub(super) fn install() {}
}

/// Install the SIGINT/SIGTERM handler (idempotent; no-op off Unix).
pub fn install() {
    imp::install();
}

/// Whether a termination signal has been received since [`install`].
#[must_use]
pub fn interrupted() -> bool {
    INTERRUPTED.load(Ordering::Relaxed)
}

/// Reset the latch. Exists for tests; the daemon exits after one signal.
pub fn reset() {
    INTERRUPTED.store(false, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latch_starts_clear_and_resets() {
        // Cannot portably raise a real signal in the test harness without
        // killing the process group; exercise the latch directly.
        reset();
        assert!(!interrupted());
        INTERRUPTED.store(true, Ordering::Relaxed);
        assert!(interrupted());
        reset();
        assert!(!interrupted());
    }
}
