//! The fleet chaos bench: boot replicas behind chaos proxies, crash one
//! mid-load, and *prove* the gateway absorbed it.
//!
//! This is the closed loop that turns the fleet layer's claims into a
//! gated artifact. One [`run`] call:
//!
//! 1. boots `replicas` in-process daemons, each with its own copy of the
//!    model store (ephemeral ports, tiny compute pools);
//! 2. wraps every replica in a [`crate::chaos::ChaosProxy`] driven by a
//!    seeded [`crate::chaos::ChaosSchedule`] — by default, a hard kill of
//!    one replica at `kill_at_s` that never lifts;
//! 3. boots a gateway routing across the *proxy* addresses;
//! 4. drives the gateway with loadgen (closed loop, `arm_sweep` so the
//!    key space spreads across the ring) for `duration_s`;
//! 5. gates: **zero client-visible errors**, a minimum success count, a
//!    bounded p99/p50 tail ratio, at least one observed failover, and —
//!    when the killed replica held hot keys — a recorded
//!    failover→first-rehit time;
//! 6. encodes everything (chaos schedule included, byte-identical per
//!    seed) as the `hecmix-bench-fleet-v1` JSON artifact.
//!
//! The schedule JSON in the artifact is the replay contract: the same
//! seed and scenario re-produce the same injected faults at the same
//! offsets, so a failed CI run can be re-run locally bit-for-bit.

use std::sync::Arc;
use std::time::{Duration, Instant};

use hecmix_obs::json::Object;

use crate::api::{AppState, ReloadFn};
use crate::chaos::{ChaosProxy, ChaosSchedule};
use crate::fleet::{Fleet, FleetConfig};
use crate::loadgen::{self, LoadgenConfig};
use crate::server::{self, ServeConfig};

/// Scenario knobs for one fleet chaos run.
#[derive(Debug, Clone)]
pub struct FleetBenchConfig {
    /// Replica daemons to boot.
    pub replicas: usize,
    /// Which replica the default scenario kills.
    pub kill_replica: usize,
    /// When the kill fires, seconds after the proxies come up.
    pub kill_at_s: f64,
    /// Chaos + retry-jitter seed (same seed → same injected faults).
    pub seed: u64,
    /// Steady-state load duration, seconds.
    pub duration_s: f64,
    /// Loadgen warmup exclusion, seconds.
    pub warmup_s: f64,
    /// Concurrent closed-loop clients.
    pub concurrency: usize,
    /// Distinct `arm` values loadgen sweeps (distinct cache keys).
    pub arm_sweep: u32,
    /// Gate: maximum p99/p50 tail ratio (0 disables).
    pub max_tail_ratio: f64,
    /// Gate: minimum successful requests.
    pub min_ok: u64,
}

impl Default for FleetBenchConfig {
    fn default() -> Self {
        Self {
            replicas: 3,
            kill_replica: 1,
            kill_at_s: 2.0,
            seed: 42,
            duration_s: 5.0,
            warmup_s: 0.5,
            concurrency: 8,
            arm_sweep: 8,
            max_tail_ratio: 0.0,
            min_ok: 100,
        }
    }
}

/// What one fleet chaos run produced.
pub struct FleetBenchOutcome {
    /// The `hecmix-bench-fleet-v1` artifact.
    pub json: String,
    /// Human-readable run summary.
    pub summary: String,
    /// `Ok` if every gate held, `Err` listing every violation.
    pub gate: Result<(), String>,
}

/// Run the scripted-crash scenario end to end. `build_store` is invoked
/// once per replica plus once for the gateway, so every daemon serves the
/// same model bundles (which is what makes the gateway's routing keys
/// equal the replicas' cache keys).
///
/// # Errors
/// Setup failures only (store build, bind, resolve). Gate violations are
/// reported in [`FleetBenchOutcome::gate`], never as an `Err` — the
/// artifact is always produced.
pub fn run(cfg: &FleetBenchConfig, build_store: &ReloadFn) -> Result<FleetBenchOutcome, String> {
    let replicas = cfg.replicas.max(1);
    let kill_replica = cfg.kill_replica.min(replicas - 1);

    // 1. Replica daemons.
    let mut handles = Vec::with_capacity(replicas);
    for _ in 0..replicas {
        let state = Arc::new(AppState::new(build_store()?, 2, 256));
        let sc = ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            io_threads: 2,
            workers: 2,
            queue_capacity: 64,
            ..ServeConfig::default()
        };
        handles.push(server::start(sc, state).map_err(|e| format!("replica boot: {e}"))?);
    }

    // 2. Chaos proxies, all sharing one epoch. The kill offset is
    //    measured from this instant; setup between here and load start is
    //    recorded as skew so the artifact stays honest.
    let schedule = Arc::new(ChaosSchedule::new(cfg.seed).kill(kill_replica, cfg.kill_at_s));
    let epoch = Instant::now();
    let mut proxies = Vec::with_capacity(replicas);
    for (idx, handle) in handles.iter().enumerate() {
        let proxy = ChaosProxy::start(idx, handle.addr(), Arc::clone(&schedule), epoch)
            .map_err(|e| format!("chaos proxy {idx}: {e}"))?;
        proxies.push(proxy);
    }

    // 3. Gateway over the proxy addresses.
    let fleet_cfg = FleetConfig {
        replicas: proxies.iter().map(|p| p.addr().to_string()).collect(),
        probe_interval: Duration::from_millis(100),
        probe_timeout: Duration::from_millis(250),
        seed: cfg.seed,
        ..FleetConfig::default()
    };
    let fleet = Arc::new(Fleet::new(fleet_cfg).map_err(|e| format!("fleet: {e}"))?);
    fleet.start_probing();
    let gateway_state = Arc::new(AppState::new_gateway(build_store()?, 2, Arc::clone(&fleet)));
    let gw_cfg = ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        io_threads: 2,
        workers: 8,
        queue_capacity: 128,
        queue_deadline: Duration::from_secs(5),
        ..ServeConfig::default()
    };
    let gateway = server::start(gw_cfg, gateway_state).map_err(|e| format!("gateway boot: {e}"))?;

    // 4. Load through the gateway.
    let load_cfg = LoadgenConfig {
        addr: gateway.addr().to_string(),
        concurrency: cfg.concurrency,
        duration_s: Some(cfg.duration_s),
        warmup_s: cfg.warmup_s,
        arm_sweep: Some(cfg.arm_sweep.max(1)),
        ..LoadgenConfig::default()
    };
    let setup_skew_s = epoch.elapsed().as_secs_f64();
    let report = loadgen::run(&load_cfg);

    // 5. Gates.
    let failovers = fleet.failover_count();
    let first_rehit_ms = fleet.first_rehit_ms();
    let mut problems = Vec::new();
    if let Err(e) = report.gate(cfg.max_tail_ratio, cfg.min_ok) {
        problems.push(e);
    }
    if failovers == 0 {
        problems.push("chaos killed a replica but no failover was observed".to_owned());
    }
    let gate = if problems.is_empty() {
        Ok(())
    } else {
        Err(problems.join("; "))
    };

    // 6. Artifact, then teardown.
    let mut o = Object::new();
    o.str("schema", "hecmix-bench-fleet-v1");
    o.u64("seed", cfg.seed);
    o.u64("replicas", replicas as u64);
    o.u64("kill_replica", kill_replica as u64);
    o.f64("kill_at_s", cfg.kill_at_s);
    o.f64("setup_skew_s", setup_skew_s);
    o.raw("chaos", &schedule.to_json());
    o.raw("load", &report.to_json(&load_cfg));
    o.raw("fleet", &fleet.statz_object());
    o.bool("gate_ok", gate.is_ok());
    let json = o.finish();

    let summary = format!(
        "fleet bench: {} replicas, killed replica {} at t={:.1}s (seed {}): \
         {} ok, {} errors, {} retries, {} hedges, {} failovers, {} rewarmed, \
         first rehit {} — {}",
        replicas,
        kill_replica,
        cfg.kill_at_s,
        cfg.seed,
        report.ok,
        report.errors,
        fleet.retry_count(),
        fleet.hedge_count(),
        failovers,
        fleet.rewarmed_count(),
        first_rehit_ms.map_or("n/a".to_owned(), |ms| format!("{ms:.1} ms")),
        if gate.is_ok() { "PASS" } else { "FAIL" },
    );

    gateway.shutdown();
    gateway.join();
    fleet.stop();
    drop(proxies);
    for handle in handles {
        handle.shutdown();
        handle.join();
    }

    Ok(FleetBenchOutcome {
        json,
        summary,
        gate,
    })
}
