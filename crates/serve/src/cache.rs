//! Sharded LRU plan cache.
//!
//! The daemon's hot path — building a pruned rate table and folding it
//! into a Pareto frontier — is pure: its output depends only on the model
//! bundle and the query shape. Both are hashable, so repeated queries are
//! served from this cache. Sixteen shards keep lock contention negligible
//! at the daemon's worker counts; each shard is an independent LRU over
//! its slice of the key space.
//!
//! Keys are produced by [`crate::api`] from the FNV-1a content hash of the
//! model bundle mixed with a query-shape tag and parameters, so a model
//! reload (new hash) can never alias a stale entry — and `POST /reload`
//! additionally calls [`ShardedLru::invalidate_all`] to free the memory.
//!
//! Hits, misses, and evictions are counted with atomics and emitted as
//! [`Event::CacheHit`]/[`Event::CacheMiss`]/[`Event::CacheEvict`]
//! telemetry.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use hecmix_obs::{emit, Event};

/// Number of independent shards. Power of two; the shard is chosen from
/// the top bits of a Fibonacci-mixed key so sequential keys spread evenly.
pub const SHARDS: usize = 16;

struct Entry<V> {
    value: Arc<V>,
    last_used: u64,
}

struct Shard<V> {
    map: HashMap<u64, Entry<V>>,
    tick: u64,
}

/// A sharded least-recently-used cache from `u64` keys to shared values.
pub struct ShardedLru<V> {
    shards: Vec<Mutex<Shard<V>>>,
    per_shard_cap: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// Counter snapshot for `GET /statz`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries removed under capacity pressure.
    pub evictions: u64,
    /// Live entries across all shards.
    pub entries: usize,
}

impl CacheStats {
    /// Hits over total lookups, 0.0 when nothing has been looked up.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl<V> ShardedLru<V> {
    /// A cache holding at most `capacity` entries (split evenly across
    /// shards; each shard holds at least one).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let per_shard_cap = (capacity / SHARDS).max(1);
        Self {
            shards: (0..SHARDS)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::new(),
                        tick: 0,
                    })
                })
                .collect(),
            per_shard_cap,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: u64) -> &Mutex<Shard<V>> {
        // Fibonacci hashing: multiply by 2^64/φ and take the top 4 bits.
        let idx = (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 60) as usize;
        &self.shards[idx]
    }

    /// Look `key` up, refreshing its recency on a hit.
    #[must_use]
    pub fn get(&self, key: u64) -> Option<Arc<V>> {
        let mut guard = self.shard(key).lock().expect("cache shard poisoned");
        let shard = &mut *guard;
        shard.tick += 1;
        let tick = shard.tick;
        match shard.map.get_mut(&key) {
            Some(entry) => {
                entry.last_used = tick;
                let value = Arc::clone(&entry.value);
                drop(guard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                emit(|| Event::CacheHit { key });
                Some(value)
            }
            None => {
                drop(guard);
                self.misses.fetch_add(1, Ordering::Relaxed);
                emit(|| Event::CacheMiss { key });
                None
            }
        }
    }

    /// Insert `value` under `key`, evicting the shard's least-recently-used
    /// entry if the shard is full. Re-inserting an existing key refreshes
    /// its value and recency without evicting.
    pub fn insert(&self, key: u64, value: Arc<V>) {
        let mut evicted = None;
        {
            let mut guard = self.shard(key).lock().expect("cache shard poisoned");
            let shard = &mut *guard;
            shard.tick += 1;
            let tick = shard.tick;
            if shard.map.len() >= self.per_shard_cap && !shard.map.contains_key(&key) {
                if let Some((&victim, _)) =
                    shard.map.iter().min_by_key(|(_, entry)| entry.last_used)
                {
                    shard.map.remove(&victim);
                    evicted = Some(victim);
                }
            }
            shard.map.insert(
                key,
                Entry {
                    value,
                    last_used: tick,
                },
            );
        }
        if let Some(victim) = evicted {
            self.evictions.fetch_add(1, Ordering::Relaxed);
            emit(|| Event::CacheEvict { key: victim });
        }
    }

    /// Drop every entry (counters are kept). Called on model reload: the
    /// model content hash in the key already prevents stale reads, this
    /// frees the memory behind them.
    pub fn invalidate_all(&self) {
        for shard in &self.shards {
            shard.lock().expect("cache shard poisoned").map.clear();
        }
    }

    /// Shared handles to every live value, most-recently-used first within
    /// each shard. This is the "hot set" the warm-reload path recomputes
    /// against a freshly loaded model store before swapping it in.
    #[must_use]
    pub fn snapshot(&self) -> Vec<Arc<V>> {
        let mut values = Vec::new();
        for shard in &self.shards {
            let guard = shard.lock().expect("cache shard poisoned");
            let mut entries: Vec<_> = guard.map.values().collect();
            entries.sort_by_key(|e| std::cmp::Reverse(e.last_used));
            values.extend(entries.into_iter().map(|e| Arc::clone(&e.value)));
        }
        values
    }

    /// Current counters and live-entry count.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let entries = self
            .shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").map.len())
            .sum();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert_miss_before() {
        let cache: ShardedLru<u32> = ShardedLru::new(64);
        assert!(cache.get(7).is_none());
        cache.insert(7, Arc::new(42));
        assert_eq!(*cache.get(7).expect("hit"), 42);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_least_recently_used_within_shard() {
        // Capacity 16 → one slot per shard: any two distinct keys landing
        // in the same shard must evict the older one.
        let cache: ShardedLru<u64> = ShardedLru::new(SHARDS);
        // Find two keys that share a shard.
        let base = 1u64;
        let mut other = 2u64;
        let shard_of = |k: u64| (k.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 60) as usize;
        while shard_of(other) != shard_of(base) {
            other += 1;
        }
        cache.insert(base, Arc::new(base));
        cache.insert(other, Arc::new(other));
        assert!(cache.get(base).is_none(), "older entry must be evicted");
        assert_eq!(*cache.get(other).expect("newer entry stays"), other);
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn reinserting_a_key_does_not_evict() {
        let cache: ShardedLru<u64> = ShardedLru::new(SHARDS);
        cache.insert(3, Arc::new(1));
        cache.insert(3, Arc::new(2));
        assert_eq!(*cache.get(3).expect("hit"), 2);
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn snapshot_returns_every_live_value() {
        let cache: ShardedLru<u64> = ShardedLru::new(256);
        for k in 0..20u64 {
            cache.insert(k, Arc::new(k * 10));
        }
        let mut values: Vec<u64> = cache.snapshot().iter().map(|v| **v).collect();
        values.sort_unstable();
        let expect: Vec<u64> = (0..20).map(|k| k * 10).collect();
        assert_eq!(values, expect);
    }

    #[test]
    fn invalidate_all_empties_every_shard() {
        let cache: ShardedLru<u64> = ShardedLru::new(256);
        for k in 0..100u64 {
            cache.insert(k, Arc::new(k));
        }
        assert!(cache.stats().entries > 0);
        cache.invalidate_all();
        assert_eq!(cache.stats().entries, 0);
        assert!(cache.get(5).is_none());
    }
}
