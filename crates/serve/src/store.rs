//! The daemon's model inventory.
//!
//! A [`ModelStore`] maps workload names to characterization bundles —
//! `[low-power, high-performance]` pairs of [`WorkloadModel`]s, the same
//! shape every planner API in `hecmix-core` consumes. Bundles are loaded
//! from `.model` files (the `hecmix-core::persist` text format the
//! `experiments` harness writes) or inserted programmatically, and each
//! carries the FNV-1a content hash of its serialized form: the hash keys
//! the plan cache, names the bundle in `/statz`, and lands in run
//! manifests, so a silent model edit can never be mistaken for the run it
//! replaced.
//!
//! The store itself is immutable after construction; `POST /reload` swaps
//! a whole new store behind the server's `RwLock` rather than mutating in
//! place.

use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

use hecmix_core::persist::{self, models_hash};
use hecmix_core::profile::WorkloadModel;
use hecmix_workloads::workload_by_name;

/// Platform file-name suffixes recognized by [`ModelStore::from_dir`], in
/// the `{workload}-{platform}.model` naming scheme the experiment harness
/// uses.
pub const PLATFORM_SUFFIXES: [&str; 2] = ["cortex-a9", "k10"];

/// Default job size when a workload is unknown to the registry (so a
/// hand-authored model file still serves).
const FALLBACK_UNITS: f64 = 1_000_000.0;

/// One workload's serving bundle.
#[derive(Debug)]
pub struct ModelEntry {
    /// Model pair in `[low-power, high-performance]` order (ascending
    /// effective peak power) — the order `ConfigSpace::two_type` and the
    /// split evaluators expect.
    pub models: Arc<Vec<WorkloadModel>>,
    /// Job size (`w_units`) used when a request does not specify one; the
    /// workload registry's analysis size where known.
    pub default_units: f64,
    /// Order-sensitive FNV-1a content hash of the serialized bundle.
    pub hash: u64,
}

/// Immutable map from workload name to serving bundle.
#[derive(Debug, Default)]
pub struct ModelStore {
    entries: HashMap<String, ModelEntry>,
}

impl ModelStore {
    /// An empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a bundle for `name`. `models` are sorted into
    /// `[low, high]` order by effective peak power; the default job size
    /// comes from the workload registry when `name` is a paper workload.
    pub fn insert(&mut self, name: &str, mut models: Vec<WorkloadModel>) {
        models.sort_by(|a, b| {
            a.platform
                .effective_peak_power_w()
                .total_cmp(&b.platform.effective_peak_power_w())
        });
        let hash = models_hash(&models);
        let default_units =
            workload_by_name(name).map_or(FALLBACK_UNITS, |w| w.analysis_units() as f64);
        self.entries.insert(
            name.to_owned(),
            ModelEntry {
                models: Arc::new(models),
                default_units,
                hash,
            },
        );
    }

    /// Load every complete `{workload}-{platform}.model` pair under `dir`.
    /// When `only` is non-empty, other workloads are skipped. Files with
    /// unrecognized platform suffixes are ignored; a workload with fewer
    /// than two platform models is an error (the planner needs a pair).
    ///
    /// # Errors
    /// I/O or parse failures, and incomplete pairs, as a human-readable
    /// message.
    pub fn from_dir(dir: &Path, only: &[String]) -> Result<Self, String> {
        let mut by_workload: HashMap<String, Vec<WorkloadModel>> = HashMap::new();
        let rd = std::fs::read_dir(dir).map_err(|e| format!("read {}: {e}", dir.display()))?;
        for dirent in rd {
            let dirent = dirent.map_err(|e| format!("read {}: {e}", dir.display()))?;
            let path = dirent.path();
            if path.extension().and_then(|e| e.to_str()) != Some("model") {
                continue;
            }
            let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            let Some(workload) = PLATFORM_SUFFIXES
                .iter()
                .find_map(|sfx| stem.strip_suffix(sfx).and_then(|p| p.strip_suffix('-')))
            else {
                continue;
            };
            if !only.is_empty() && !only.iter().any(|w| w == workload) {
                continue;
            }
            let model =
                persist::load(&path).map_err(|e| format!("load {}: {e}", path.display()))?;
            by_workload
                .entry(workload.to_owned())
                .or_default()
                .push(model);
        }
        let mut store = Self::new();
        for (workload, models) in by_workload {
            if models.len() < 2 {
                return Err(format!(
                    "workload `{workload}` has {} model file(s) in {}; a \
                     low/high pair is required",
                    models.len(),
                    dir.display()
                ));
            }
            store.insert(&workload, models);
        }
        Ok(store)
    }

    /// The bundle for `name`, if loaded.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&ModelEntry> {
        self.entries.get(name)
    }

    /// Loaded workload names, sorted.
    #[must_use]
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.entries.keys().cloned().collect();
        names.sort();
        names
    }

    /// `"{workload}:{hash:016x}"` lines, sorted — the `/statz` and
    /// manifest rendering of the inventory.
    #[must_use]
    pub fn hashes(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .entries
            .iter()
            .map(|(name, entry)| format!("{name}:{:016x}", entry.hash))
            .collect();
        out.sort();
        out
    }

    /// Number of loaded workloads.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store holds no workloads.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hecmix_core::types::Platform;

    fn pair() -> Vec<WorkloadModel> {
        let arm = Platform::reference_arm();
        let amd = Platform::reference_amd();
        vec![
            // Deliberately high-power first: insert() must reorder.
            WorkloadModel::synthetic_cpu_bound(&amd, "ep", 40.0),
            WorkloadModel::synthetic_cpu_bound(&arm, "ep", 60.0),
        ]
    }

    #[test]
    fn insert_orders_low_power_first_and_hashes() {
        let mut store = ModelStore::new();
        store.insert("ep", pair());
        let entry = store.get("ep").expect("entry");
        assert!(
            entry.models[0].platform.effective_peak_power_w()
                < entry.models[1].platform.effective_peak_power_w()
        );
        assert!(entry.default_units > 1.0, "ep is a registry workload");
        assert_ne!(entry.hash, 0);
        assert_eq!(store.names(), vec!["ep".to_owned()]);
        let hashes = store.hashes();
        assert_eq!(hashes.len(), 1);
        assert!(hashes[0].starts_with("ep:"), "{}", hashes[0]);
        assert_eq!(hashes[0].len(), "ep:".len() + 16);
    }

    #[test]
    fn ladder_bundles_load_and_hash_their_opp_tables() {
        use hecmix_core::dvfs::NodeDvfs;

        let mk = |sleep_frac: f64| {
            let models = pair();
            models
                .into_iter()
                .map(|m| {
                    let dvfs = NodeDvfs::synthetic_ladder(&m.power, m.platform.cores, sleep_frac);
                    m.with_dvfs(dvfs)
                })
                .collect::<Vec<_>>()
        };

        let dir = std::env::temp_dir().join(format!("hecmix-ladder-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let models = mk(0.1);
        persist::save(&models[1], &dir.join("ep-cortex-a9.model")).expect("save arm");
        persist::save(&models[0], &dir.join("ep-k10.model")).expect("save amd");
        let store = ModelStore::from_dir(&dir, &[]).expect("ladder bundle loads");
        let entry = store.get("ep").expect("ep loaded");
        assert!(
            entry.models.iter().all(|m| m.dvfs.is_some()),
            "ladders must survive the round trip"
        );
        let _ = std::fs::remove_dir_all(&dir);

        // The content hash covers the OPP tables: a bundle that differs
        // only in its DVFS extension must hash differently.
        let mut plain = ModelStore::new();
        plain.insert("ep", pair());
        let mut laddered = ModelStore::new();
        laddered.insert("ep", mk(0.1));
        let mut laddered2 = ModelStore::new();
        laddered2.insert("ep", mk(0.2));
        let (h_plain, h_l1, h_l2) = (
            plain.get("ep").unwrap().hash,
            laddered.get("ep").unwrap().hash,
            laddered2.get("ep").unwrap().hash,
        );
        assert_ne!(h_plain, h_l1, "ladder must change the bundle hash");
        assert_ne!(h_l1, h_l2, "OPP/domain edits must change the hash");
        // And the file path reproduces the programmatic hash.
        assert_eq!(entry.hash, h_l1);
    }

    #[test]
    fn from_dir_round_trips_saved_pairs_and_rejects_singletons() {
        let dir = std::env::temp_dir().join(format!("hecmix-store-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let models = pair();
        persist::save(&models[1], &dir.join("ep-cortex-a9.model")).expect("save arm");
        persist::save(&models[0], &dir.join("ep-k10.model")).expect("save amd");
        std::fs::write(dir.join("notes.txt"), "ignored").expect("write");

        let store = ModelStore::from_dir(&dir, &[]).expect("load pair");
        assert_eq!(store.len(), 1);
        let entry = store.get("ep").expect("ep loaded");
        // Content hash matches the programmatic path for the same bundle.
        let mut direct = ModelStore::new();
        direct.insert("ep", pair());
        assert_eq!(entry.hash, direct.get("ep").expect("direct").hash);

        // Filter that excludes everything.
        let none = ModelStore::from_dir(&dir, &["memcached".to_owned()]).expect("filtered");
        assert!(none.is_empty());

        // A singleton pair is a hard error.
        std::fs::remove_file(dir.join("ep-k10.model")).expect("rm");
        let err = ModelStore::from_dir(&dir, &[]).expect_err("singleton must fail");
        assert!(err.contains("ep"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
