//! Dispatch edge cases: empty menus, slots no configuration can serve,
//! and near-zero arrival rates. The policy must degrade loudly (violation
//! flags, `usize::MAX` sentinel) rather than panic or fabricate energy.

use hecmix_queueing::dispatch::{
    best_choice, best_choice_resilient, run_day, run_day_resilient, ConfigChoice, DiurnalProfile,
    ResilientChoice,
};

fn fast() -> ConfigChoice {
    ConfigChoice {
        label: "fast".into(),
        service_s: 0.025,
        job_energy_j: 20.0,
        idle_power_w: 700.0,
    }
}

fn cheap() -> ConfigChoice {
    ConfigChoice {
        label: "cheap".into(),
        service_s: 0.40,
        job_energy_j: 7.5,
        idle_power_w: 25.0,
    }
}

#[test]
fn empty_menu_yields_no_choice_and_all_violations() {
    assert!(best_choice(&[], 1.0, 600.0, 0.5).unwrap().is_none());
    assert!(best_choice_resilient(&[], 1.0, 600.0, 0.5)
        .unwrap()
        .is_none());

    let p = DiurnalProfile::new(1.0, 0.5, 24, 600.0).unwrap();
    let day = run_day(&[], &p, 0.5).unwrap();
    assert_eq!(day.violations, 24);
    assert_eq!(day.energy_j, 0.0);
    assert!(day
        .slots
        .iter()
        .all(|s| s.choice == usize::MAX && s.violated && s.energy_j == 0.0));

    let day = run_day_resilient(&[], &p, 0.5).unwrap();
    assert_eq!(day.violations, 24);
    assert_eq!(day.energy_j, 0.0);
}

#[test]
fn saturated_slots_are_flagged_not_served() {
    // λ = 100/s against a 0.4 s service: every entry is unstable, every
    // slot a violation with the sentinel choice and zero energy.
    let menu = vec![cheap()];
    let p = DiurnalProfile::new(100.0, 0.1, 12, 600.0).unwrap();
    let day = run_day(&menu, &p, 0.5).unwrap();
    assert_eq!(day.violations, 12);
    assert_eq!(day.energy_j, 0.0);
    assert!(day.slots.iter().all(|s| s.choice == usize::MAX));
    assert!(day.slots.iter().all(|s| s.response_s.is_infinite()));
}

#[test]
fn infeasible_slo_falls_back_to_fastest_and_counts_violations() {
    // Stable queues, impossible SLO (1 ms): the fastest entry is chosen
    // for every slot and every slot is flagged.
    let menu = vec![fast(), cheap()];
    let p = DiurnalProfile::new(1.0, 0.5, 24, 600.0).unwrap();
    let day = run_day(&menu, &p, 0.001).unwrap();
    assert_eq!(day.violations, 24);
    assert!(day.slots.iter().all(|s| s.choice == 0 && s.violated));
    // Energy is still accounted: the operator runs the fast pool and eats
    // the misses.
    assert!(day.energy_j > 0.0);
}

#[test]
fn near_zero_arrivals_cost_idle_energy_only() {
    // λ → 0: jobs are vanishingly rare, so the slot's energy collapses to
    // the idle floor of the chosen (cheapest-idle) configuration.
    let menu = vec![fast(), cheap()];
    let window_s = 600.0;
    let lambda = 1e-9;
    let (idx, energy, _, violated) = best_choice(&menu, lambda, window_s, 1.0).unwrap().unwrap();
    assert_eq!(idx, 1, "cheap idle floor must win");
    assert!(!violated);
    let idle_floor = cheap().idle_power_w * window_s;
    assert!(
        (energy - idle_floor).abs() < 1e-3 * idle_floor,
        "energy {energy} vs idle floor {idle_floor}"
    );
}

#[test]
fn single_entry_menu_is_always_that_entry_or_nothing() {
    let menu = vec![fast()];
    // Feasible λ: entry 0, no violation at a sane SLO.
    let (idx, _, _, violated) = best_choice(&menu, 1.0, 600.0, 0.5).unwrap().unwrap();
    assert_eq!(idx, 0);
    assert!(!violated);
    // Beyond saturation (1/0.025 = 40/s): nothing.
    assert!(best_choice(&menu, 41.0, 600.0, 0.5).unwrap().is_none());
}

#[test]
fn resilient_entry_with_saturated_degraded_queue_survives_as_fallback() {
    // The only entry is nominally stable but saturated after a failure:
    // it must still be picked (there is nothing better), flagged as a
    // violation rather than dropped.
    let menu = vec![ResilientChoice {
        nominal: cheap(),
        degraded_service_s: 2.0, // saturation at λ = 0.5
        degraded_job_energy_j: 9.0,
    }];
    let (idx, energy, _, violated) = best_choice_resilient(&menu, 1.0, 600.0, 1.0)
        .unwrap()
        .unwrap();
    assert_eq!(idx, 0);
    assert!(violated, "degraded saturation cannot meet any SLO");
    assert!(energy > 0.0);
}

#[test]
fn non_finite_or_non_positive_slot_inputs_are_rejected() {
    // Regression: a NaN deadline used to compare false against every
    // response time and silently select the fastest entry as a
    // "violation"; it is now an InvalidInput error, like the rate_table
    // sweep entry points.
    let menu = vec![fast(), cheap()];
    for bad in [f64::NAN, f64::INFINITY, 0.0, -1.0] {
        assert!(best_choice(&menu, bad, 600.0, 0.5).is_err(), "λ = {bad}");
        assert!(best_choice(&menu, 1.0, bad, 0.5).is_err(), "window = {bad}");
        assert!(best_choice(&menu, 1.0, 600.0, bad).is_err(), "slo = {bad}");
        let rmenu = vec![ResilientChoice {
            nominal: cheap(),
            degraded_service_s: 0.8,
            degraded_job_energy_j: 9.0,
        }];
        assert!(best_choice_resilient(&rmenu, bad, 600.0, 0.5).is_err());
        assert!(best_choice_resilient(&rmenu, 1.0, 600.0, bad).is_err());
    }
    let p = DiurnalProfile::new(1.0, 0.5, 24, 600.0).unwrap();
    assert!(run_day(&menu, &p, f64::NAN).is_err());
    assert!(run_day_resilient(&[], &p, -0.5).is_err());
}

#[test]
fn corrupt_menu_entries_are_rejected() {
    let mut broken = fast();
    broken.service_s = f64::NAN;
    assert!(best_choice(&[broken], 1.0, 600.0, 0.5).is_err());

    let mut broken = cheap();
    broken.job_energy_j = f64::NEG_INFINITY;
    assert!(best_choice(&[broken], 1.0, 600.0, 0.5).is_err());

    let mut broken = cheap();
    broken.idle_power_w = -5.0;
    assert!(best_choice(&[broken], 1.0, 600.0, 0.5).is_err());

    // Resilient entries additionally require degraded ≥ nominal service.
    let shrunk = ResilientChoice {
        nominal: cheap(),
        degraded_service_s: 0.1, // faster after losing a node: nonsense
        degraded_job_energy_j: 9.0,
    };
    assert!(best_choice_resilient(&[shrunk], 1.0, 600.0, 0.5).is_err());
    let nan_degraded = ResilientChoice {
        nominal: cheap(),
        degraded_service_s: f64::NAN,
        degraded_job_energy_j: 9.0,
    };
    assert!(best_choice_resilient(&[nan_degraded], 1.0, 600.0, 0.5).is_err());
}
