//! Request-level discrete-event serving simulator (ROADMAP item 1).
//!
//! The analytical queueing layer ([`crate::MD1`], [`crate::MG1`]) predicts
//! *mean* delay; interactive sizing is about tails. This module simulates a
//! serving configuration at the request level — open-loop Poisson arrivals
//! at a configurable packet rate, RSS-style flow→core indirection, per-core
//! bounded FIFO queues with drop accounting, dedicated network cores vs
//! combined layouts, and constant/exponential/bimodal service-time
//! distributions — and emits the full sojourn-time CDF
//! (p50/p95/p99/p999) per configuration.
//!
//! Runs are seeded and bit-replayable like `hecmix-sim`: the same
//! [`DesConfig`] (including `seed`) reproduces the exact per-request
//! latency samples, so CDFs compare bit-for-bit across machines.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use hecmix_core::{Error, Result};

/// Number of entries in the RSS-style flow→core indirection table.
///
/// Real NICs hash the flow tuple into a small indirection table (128
/// entries on many devices) whose slots name the receive core; we model
/// the same two-level mapping so flow skew and core imbalance are visible.
pub const RSS_TABLE_ENTRIES: usize = 128;

/// Per-request service-time distribution at the application stage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ServiceDist {
    /// Every request takes exactly this many seconds (M/D/c-style).
    Constant(f64),
    /// Exponentially distributed with this mean, seconds (M/M/c-style).
    Exponential(f64),
    /// Two-point mixture: most requests are `fast_s`, a `slow_weight`
    /// fraction take `slow_s` (models the GET/SET or hit/miss split of
    /// the interactive workloads).
    Bimodal {
        /// Service time of the fast class, seconds.
        fast_s: f64,
        /// Service time of the slow class, seconds.
        slow_s: f64,
        /// Probability a request is slow, in `[0, 1]`.
        slow_weight: f64,
    },
}

impl ServiceDist {
    /// Validate the distribution parameters.
    pub fn validate(&self) -> Result<()> {
        let bad = |what: &str, v: f64| {
            Err(Error::InvalidInput(format!(
                "ServiceDist needs positive finite times, got {what}={v}"
            )))
        };
        match *self {
            ServiceDist::Constant(s) | ServiceDist::Exponential(s) => {
                if !(s > 0.0) || !s.is_finite() {
                    return bad("service_s", s);
                }
            }
            ServiceDist::Bimodal {
                fast_s,
                slow_s,
                slow_weight,
            } => {
                if !(fast_s > 0.0) || !fast_s.is_finite() {
                    return bad("fast_s", fast_s);
                }
                if !(slow_s > 0.0) || !slow_s.is_finite() {
                    return bad("slow_s", slow_s);
                }
                if !(0.0..=1.0).contains(&slow_weight) || !slow_weight.is_finite() {
                    return Err(Error::InvalidInput(format!(
                        "ServiceDist bimodal slow_weight must lie in [0, 1], got {slow_weight}"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Mean service time, seconds.
    #[must_use]
    pub fn mean_s(&self) -> f64 {
        match *self {
            ServiceDist::Constant(s) | ServiceDist::Exponential(s) => s,
            ServiceDist::Bimodal {
                fast_s,
                slow_s,
                slow_weight,
            } => (1.0 - slow_weight) * fast_s + slow_weight * slow_s,
        }
    }

    /// Squared coefficient of variation (`Var[S]/E[S]²`) — plugs straight
    /// into the [`crate::MG1`] Pollaczek–Khinchine screen.
    #[must_use]
    pub fn scv(&self) -> f64 {
        match *self {
            ServiceDist::Constant(_) => 0.0,
            ServiceDist::Exponential(_) => 1.0,
            ServiceDist::Bimodal {
                fast_s,
                slow_s,
                slow_weight,
            } => {
                let mean = (1.0 - slow_weight) * fast_s + slow_weight * slow_s;
                let ex2 = (1.0 - slow_weight) * fast_s * fast_s + slow_weight * slow_s * slow_s;
                let var = (ex2 - mean * mean).max(0.0);
                if mean > 0.0 {
                    var / (mean * mean)
                } else {
                    0.0
                }
            }
        }
    }

    fn sample(&self, rng: &mut SmallRng) -> f64 {
        match *self {
            ServiceDist::Constant(s) => s,
            ServiceDist::Exponential(mean) => {
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                -u.ln() * mean
            }
            ServiceDist::Bimodal {
                fast_s,
                slow_s,
                slow_weight,
            } => {
                if rng.gen_bool(slow_weight) {
                    slow_s
                } else {
                    fast_s
                }
            }
        }
    }
}

/// How cores are split between network and application processing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CoreLayout {
    /// Every core does both network and application work for its flows;
    /// one queue per core.
    Combined {
        /// Number of cores.
        cores: u32,
    },
    /// Dedicated network cores strip protocol headers (cost
    /// [`DesConfig::net_cost_s`] each), then hand requests to application
    /// cores through a second flow-hashed stage; one bounded queue per
    /// core at each stage.
    Dedicated {
        /// Cores running network processing (stage 1).
        net_cores: u32,
        /// Cores running application processing (stage 2).
        app_cores: u32,
    },
}

impl CoreLayout {
    fn validate(&self) -> Result<()> {
        let ok = match *self {
            CoreLayout::Combined { cores } => cores >= 1,
            CoreLayout::Dedicated {
                net_cores,
                app_cores,
            } => net_cores >= 1 && app_cores >= 1,
        };
        if ok {
            Ok(())
        } else {
            Err(Error::InvalidInput(format!(
                "CoreLayout needs at least one core per stage, got {self:?}"
            )))
        }
    }
}

/// One request-level simulation scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesConfig {
    /// Open-loop Poisson arrival rate, requests (packets) per second.
    pub pps: f64,
    /// Number of arrivals to generate.
    pub n_requests: u64,
    /// Core layout (combined, or dedicated network vs application cores).
    pub layout: CoreLayout,
    /// Application-stage service-time distribution.
    pub service: ServiceDist,
    /// Per-request network-processing cost, seconds (stage-1 work in
    /// dedicated layouts; folded into the single stage when combined).
    pub net_cost_s: f64,
    /// Maximum requests in system *per core* (in service + queued);
    /// arrivals beyond it are dropped. Use [`UNBOUNDED`] for no cap.
    pub queue_cap: usize,
    /// Number of distinct flows; each request belongs to one flow and
    /// flows pin to cores through the RSS indirection table.
    pub flows: u32,
    /// RNG seed; same config + seed ⇒ bit-identical latency samples.
    pub seed: u64,
}

/// Sentinel for [`DesConfig::queue_cap`]: never drop.
pub const UNBOUNDED: usize = usize::MAX;

impl DesConfig {
    /// Validate every field (positive finite rate, at least one request,
    /// valid layout/distribution, non-negative finite net cost, at least
    /// one flow and a queue capacity of at least one).
    pub fn validate(&self) -> Result<()> {
        if !(self.pps > 0.0) || !self.pps.is_finite() {
            return Err(Error::InvalidInput(format!(
                "DesConfig needs a positive finite pps, got {}",
                self.pps
            )));
        }
        if self.n_requests == 0 {
            return Err(Error::InvalidInput(
                "DesConfig needs n_requests >= 1".into(),
            ));
        }
        self.layout.validate()?;
        self.service.validate()?;
        if !(self.net_cost_s >= 0.0) || !self.net_cost_s.is_finite() {
            return Err(Error::InvalidInput(format!(
                "DesConfig needs a non-negative finite net_cost_s, got {}",
                self.net_cost_s
            )));
        }
        if self.queue_cap == 0 {
            return Err(Error::InvalidInput(
                "DesConfig needs queue_cap >= 1 (use UNBOUNDED for no cap)".into(),
            ));
        }
        if self.flows == 0 {
            return Err(Error::InvalidInput("DesConfig needs flows >= 1".into()));
        }
        Ok(())
    }
}

/// An empirical latency distribution: the sorted per-request samples plus
/// exact order-statistic quantiles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyCdf {
    samples: Vec<f64>,
}

impl LatencyCdf {
    fn from_samples(mut samples: Vec<f64>) -> Self {
        samples.sort_by(f64::total_cmp);
        Self { samples }
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no request completed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The sorted samples (the full empirical CDF).
    #[must_use]
    pub fn sorted(&self) -> &[f64] {
        &self.samples
    }

    /// Exact order-statistic quantile: the smallest sample `x` with at
    /// least `q·n` samples `≤ x`. Returns `None` on an empty CDF or
    /// `q` outside `(0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.samples.is_empty() || !(q > 0.0) || q > 1.0 {
            return None;
        }
        let n = self.samples.len();
        let rank = (q * n as f64).ceil() as usize;
        Some(self.samples[rank.clamp(1, n) - 1])
    }

    /// Median (p50).
    #[must_use]
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.50)
    }

    /// 95th percentile.
    #[must_use]
    pub fn p95(&self) -> Option<f64> {
        self.quantile(0.95)
    }

    /// 99th percentile.
    #[must_use]
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    #[must_use]
    pub fn p999(&self) -> Option<f64> {
        self.quantile(0.999)
    }

    /// Arithmetic mean of the samples.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
        }
    }
}

/// Result of one request-level simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesOutcome {
    /// Requests generated.
    pub offered: u64,
    /// Requests that completed both stages.
    pub completed: u64,
    /// Requests dropped at a full per-core queue (either stage).
    pub dropped: u64,
    /// Sojourn time (arrival → final departure) of completed requests.
    pub sojourn: LatencyCdf,
    /// Queueing-only wait (sojourn minus all service) of completed
    /// requests.
    pub wait: LatencyCdf,
    /// Simulated horizon: the last departure time, seconds.
    pub duration_s: f64,
}

/// Per-core single-server FIFO with a bounded in-system count.
///
/// Requests are fed in non-decreasing arrival order, so the in-system
/// count at each arrival is exact: departures are popped from the front
/// of a deque of scheduled departure times.
struct CoreQueue {
    in_system: std::collections::VecDeque<f64>,
    cap: usize,
}

impl CoreQueue {
    fn new(cap: usize) -> Self {
        Self {
            in_system: std::collections::VecDeque::new(),
            cap,
        }
    }

    /// Offer an arrival at time `t` needing `service` seconds. Returns the
    /// departure time, or `None` if the core's queue is full.
    fn offer(&mut self, t: f64, service: f64) -> Option<f64> {
        while self.in_system.front().is_some_and(|&d| d <= t) {
            self.in_system.pop_front();
        }
        if self.in_system.len() >= self.cap {
            return None;
        }
        let start = self.in_system.back().map_or(t, |&d| d.max(t));
        let depart = start + service;
        self.in_system.push_back(depart);
        Some(depart)
    }
}

/// Map a flow id onto a core through the RSS indirection table (slots
/// assigned round-robin over the cores, flows hashed by id).
fn rss_core(flow: u32, cores: u32) -> usize {
    (flow as usize % RSS_TABLE_ENTRIES) % cores as usize
}

/// Run the request-level simulation.
///
/// Arrivals are generated in time order, so each stage is simulated with
/// per-core deques instead of a global event heap; stage-2 arrivals are
/// re-sorted per application core by `(time, sequence)` to keep the run
/// deterministic. Same `cfg` ⇒ bit-identical [`DesOutcome`].
pub fn simulate(cfg: &DesConfig) -> Result<DesOutcome> {
    cfg.validate()?;
    let mut rng = SmallRng::seed_from_u64(cfg.seed);

    // Draw all arrivals up front: time, flow, and application service.
    // One pass in arrival order fixes the RNG stream regardless of how
    // the stages interleave.
    let n = cfg.n_requests as usize;
    let mut clock = 0.0f64;
    let mut arrivals = Vec::with_capacity(n);
    for _ in 0..n {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        clock += -u.ln() / cfg.pps; // exponential inter-arrival
        let flow = rng.gen_range(0..cfg.flows);
        let app_service = cfg.service.sample(&mut rng);
        arrivals.push((clock, flow, app_service));
    }

    let mut dropped = 0u64;
    let mut duration_s = 0.0f64;
    let mut sojourn = Vec::with_capacity(n);
    let mut wait = Vec::with_capacity(n);

    match cfg.layout {
        CoreLayout::Combined { cores } => {
            let mut queues: Vec<CoreQueue> =
                (0..cores).map(|_| CoreQueue::new(cfg.queue_cap)).collect();
            for &(t, flow, app_service) in &arrivals {
                let service = cfg.net_cost_s + app_service;
                match queues[rss_core(flow, cores)].offer(t, service) {
                    None => dropped += 1,
                    Some(depart) => {
                        sojourn.push(depart - t);
                        wait.push(depart - t - service);
                        duration_s = duration_s.max(depart);
                    }
                }
            }
        }
        CoreLayout::Dedicated {
            net_cores,
            app_cores,
        } => {
            // Stage 1: network cores, constant per-request cost.
            let mut net: Vec<CoreQueue> = (0..net_cores)
                .map(|_| CoreQueue::new(cfg.queue_cap))
                .collect();
            // (app arrival, sequence, original arrival, app service)
            let mut handoff: Vec<Vec<(f64, usize, f64, f64)>> =
                vec![Vec::new(); app_cores as usize];
            for (seq, &(t, flow, app_service)) in arrivals.iter().enumerate() {
                match net[rss_core(flow, net_cores)].offer(t, cfg.net_cost_s) {
                    None => dropped += 1,
                    Some(net_depart) => {
                        // Second flow-hashed stage: offset the table walk
                        // so net and app assignments decorrelate.
                        let app = (flow as usize / net_cores as usize + flow as usize)
                            % RSS_TABLE_ENTRIES
                            % app_cores as usize;
                        handoff[app].push((net_depart, seq, t, app_service));
                    }
                }
            }
            // Stage 2: application cores. Per-core arrivals are sorted by
            // (time, sequence) — stage-1 departures are not globally
            // ordered across net cores.
            let mut apps: Vec<CoreQueue> = (0..app_cores)
                .map(|_| CoreQueue::new(cfg.queue_cap))
                .collect();
            for (core, list) in handoff.iter_mut().enumerate() {
                list.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                for &(at, _seq, t0, app_service) in list.iter() {
                    match apps[core].offer(at, app_service) {
                        None => dropped += 1,
                        Some(depart) => {
                            sojourn.push(depart - t0);
                            wait.push(depart - t0 - cfg.net_cost_s - app_service);
                            duration_s = duration_s.max(depart);
                        }
                    }
                }
            }
        }
    }

    let completed = sojourn.len() as u64;
    let out = DesOutcome {
        offered: cfg.n_requests,
        completed,
        dropped,
        sojourn: LatencyCdf::from_samples(sojourn),
        wait: LatencyCdf::from_samples(wait),
        duration_s,
    };
    hecmix_obs::emit(|| hecmix_obs::Event::DesRun {
        pps: cfg.pps,
        requests: cfg.n_requests,
        completed: out.completed,
        dropped: out.dropped,
        p50_s: out.sojourn.p50().unwrap_or(f64::NAN),
        p99_s: out.sojourn.p99().unwrap_or(f64::NAN),
        duration_s: out.duration_s,
        seed: cfg.seed,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MD1, MG1};

    fn single_server(pps: f64, service: ServiceDist, n: u64, seed: u64) -> DesConfig {
        DesConfig {
            pps,
            n_requests: n,
            layout: CoreLayout::Combined { cores: 1 },
            service,
            net_cost_s: 0.0,
            queue_cap: UNBOUNDED,
            flows: 1,
            seed,
        }
    }

    #[test]
    fn seeded_runs_are_bit_identical() {
        let cfg = DesConfig {
            pps: 5_000.0,
            n_requests: 50_000,
            layout: CoreLayout::Dedicated {
                net_cores: 2,
                app_cores: 4,
            },
            service: ServiceDist::Bimodal {
                fast_s: 50e-6,
                slow_s: 500e-6,
                slow_weight: 0.1,
            },
            net_cost_s: 5e-6,
            queue_cap: 64,
            flows: 256,
            seed: 99,
        };
        let a = simulate(&cfg).unwrap();
        let b = simulate(&cfg).unwrap();
        // Bit-identical, not approximately equal: full sample vectors.
        assert_eq!(a, b);
        let c = simulate(&DesConfig { seed: 100, ..cfg }).unwrap();
        assert_ne!(a.sojourn, c.sojourn, "different seed must differ");
    }

    #[test]
    fn percentiles_are_monotone_in_utilization() {
        let service = 100e-6;
        let mut prev = 0.0f64;
        for rho in [0.3, 0.5, 0.7, 0.85] {
            let cfg = single_server(
                rho / service,
                ServiceDist::Exponential(service),
                200_000,
                11,
            );
            let out = simulate(&cfg).unwrap();
            let p99 = out.sojourn.p99().unwrap();
            assert!(
                p99 > prev,
                "p99 must grow with ρ: {p99} at ρ={rho} vs {prev}"
            );
            prev = p99;
        }
    }

    #[test]
    fn deterministic_service_has_smaller_tail_than_exponential() {
        // At equal ρ the M/D/1 sojourn tail sits strictly below M/M/1 —
        // service variance is the whole difference.
        let service = 100e-6;
        let rho = 0.7;
        let md = simulate(&single_server(
            rho / service,
            ServiceDist::Constant(service),
            200_000,
            3,
        ))
        .unwrap();
        let mm = simulate(&single_server(
            rho / service,
            ServiceDist::Exponential(service),
            200_000,
            3,
        ))
        .unwrap();
        assert!(
            md.sojourn.p99().unwrap() < mm.sojourn.p99().unwrap(),
            "M/D/1 p99 {} must undercut M/M/1 p99 {}",
            md.sojourn.p99().unwrap(),
            mm.sojourn.p99().unwrap()
        );
    }

    #[test]
    fn mean_wait_matches_pollaczek_khinchine() {
        // Single combined core, no net cost, unbounded: textbook M/G/1.
        for (dist, name) in [
            (ServiceDist::Constant(100e-6), "M/D/1"),
            (ServiceDist::Exponential(100e-6), "M/M/1"),
            (
                ServiceDist::Bimodal {
                    fast_s: 50e-6,
                    slow_s: 500e-6,
                    slow_weight: 0.1,
                },
                "bimodal",
            ),
        ] {
            let rho = 0.6;
            let lambda = rho / dist.mean_s();
            let out = simulate(&single_server(lambda, dist, 400_000, 17)).unwrap();
            let pk = MG1::new(lambda, dist.mean_s(), dist.scv())
                .unwrap()
                .mean_wait_s()
                .unwrap();
            let sim = out.wait.mean().unwrap();
            let rel = (sim - pk).abs() / pk;
            assert!(rel < 0.05, "{name}: sim {sim} vs P-K {pk} (rel {rel})");
        }
    }

    #[test]
    fn wait_p99_matches_md1_distribution() {
        let service = 100e-6;
        let rho = 0.7;
        let lambda = rho / service;
        let out = simulate(&single_server(
            lambda,
            ServiceDist::Constant(service),
            400_000,
            23,
        ))
        .unwrap();
        let analytic = MD1::new(lambda, service)
            .unwrap()
            .wait_quantile(0.99)
            .unwrap();
        let sim = out.wait.p99().unwrap();
        let rel = (sim - analytic).abs() / analytic;
        assert!(
            rel < 0.10,
            "sim p99 {sim} vs analytic {analytic} (rel {rel})"
        );
    }

    #[test]
    fn bounded_queues_drop_and_unbounded_does_not() {
        let service = 100e-6;
        let saturated = DesConfig {
            queue_cap: 8,
            ..single_server(1.5 / service, ServiceDist::Constant(service), 50_000, 5)
        };
        let out = simulate(&saturated).unwrap();
        assert!(out.dropped > 0, "ρ=1.5 with cap 8 must drop");
        assert_eq!(out.offered, out.completed + out.dropped);
        // Every sojourn is bounded by cap × service (+ slack for the
        // in-service request).
        let worst = out.sojourn.sorted().last().copied().unwrap();
        assert!(worst <= 9.0 * service + 1e-12, "worst sojourn {worst}");

        let open = single_server(0.5 / service, ServiceDist::Constant(service), 50_000, 5);
        let out = simulate(&open).unwrap();
        assert_eq!(out.dropped, 0);
        assert_eq!(out.completed, out.offered);
    }

    #[test]
    fn dedicated_layout_spreads_flows_and_adds_net_cost() {
        let cfg = DesConfig {
            pps: 1_000.0,
            n_requests: 20_000,
            layout: CoreLayout::Dedicated {
                net_cores: 2,
                app_cores: 2,
            },
            service: ServiceDist::Constant(100e-6),
            net_cost_s: 20e-6,
            queue_cap: UNBOUNDED,
            flows: 512,
            seed: 8,
        };
        let out = simulate(&cfg).unwrap();
        assert_eq!(out.completed, cfg.n_requests);
        // Minimum sojourn is the full pipeline cost.
        let min = out.sojourn.sorted()[0];
        assert!(min >= 120e-6 - 1e-12, "min sojourn {min}");
        // Light load: sojourns should mostly be near the no-wait cost.
        assert!(out.sojourn.p50().unwrap() < 200e-6);
    }

    #[test]
    fn config_validation_rejects_bad_inputs() {
        let ok = single_server(100.0, ServiceDist::Constant(1e-3), 10, 1);
        assert!(simulate(&ok).is_ok());
        assert!(simulate(&DesConfig { pps: 0.0, ..ok }).is_err());
        assert!(simulate(&DesConfig {
            pps: f64::INFINITY,
            ..ok
        })
        .is_err());
        assert!(simulate(&DesConfig {
            n_requests: 0,
            ..ok
        })
        .is_err());
        assert!(simulate(&DesConfig {
            layout: CoreLayout::Combined { cores: 0 },
            ..ok
        })
        .is_err());
        assert!(simulate(&DesConfig {
            service: ServiceDist::Constant(-1.0),
            ..ok
        })
        .is_err());
        assert!(simulate(&DesConfig {
            service: ServiceDist::Bimodal {
                fast_s: 1e-3,
                slow_s: 1e-2,
                slow_weight: 1.5
            },
            ..ok
        })
        .is_err());
        assert!(simulate(&DesConfig {
            net_cost_s: f64::NAN,
            ..ok
        })
        .is_err());
        assert!(simulate(&DesConfig { queue_cap: 0, ..ok }).is_err());
        assert!(simulate(&DesConfig { flows: 0, ..ok }).is_err());
    }

    #[test]
    fn quantiles_are_exact_order_statistics() {
        let cdf = LatencyCdf::from_samples((1..=100).map(f64::from).collect());
        assert_eq!(cdf.quantile(0.5), Some(50.0));
        assert_eq!(cdf.quantile(0.99), Some(99.0));
        assert_eq!(cdf.quantile(1.0), Some(100.0));
        assert_eq!(cdf.quantile(0.001), Some(1.0));
        assert_eq!(cdf.quantile(0.0), None);
        assert_eq!(cdf.quantile(1.1), None);
        assert_eq!(LatencyCdf::from_samples(vec![]).p99(), None);
        assert_eq!(cdf.mean(), Some(50.5));
    }
}
