//! Dispatch policies under time-varying load.
//!
//! The paper's introduction motivates heterogeneity with the "cyclic
//! variation in arrival rates" a datacenter sees. This module extends the
//! §IV-E analysis from one arrival rate to a *diurnal profile*: a day is
//! divided into slots, each with its own `λ`, and a dispatch policy picks
//! a cluster configuration per slot. Policies differ in the *menu* of
//! configurations they may choose from:
//!
//! * a homogeneous high-performance pool (related work's busy-hour mode);
//! * a homogeneous low-power pool (the quiet-hour mode);
//! * **switching** — the union of the two pools, one of them per slot
//!   (the KnightShift-style state of the art the paper argues against);
//! * **mix-and-match** — every heterogeneous configuration of the same
//!   hardware.
//!
//! Each slot is evaluated with the M/D/1 window-energy model; a slot whose
//! best feasible configuration still misses the response-time SLO counts
//! as a violation (the policy then picks the fastest configuration and
//! eats the miss, as an operator would).

use serde::{Deserialize, Serialize};

use hecmix_core::{Error, Result};

use crate::des::{self, DesConfig, ServiceDist};
use crate::{window_energy, window_energy_sleep, SleepPolicy, MD1};

/// One configuration a policy may choose: the outcome of a cluster
/// configuration for one job, plus the idle power of its powered nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigChoice {
    /// Display label (e.g. `ARM 16(4c@1.40 GHz) + AMD 2(6c@2.10 GHz)`).
    pub label: String,
    /// Job service time, seconds.
    pub service_s: f64,
    /// Energy per job, joules.
    pub job_energy_j: f64,
    /// Idle power of the powered nodes, watts (unused nodes are off).
    pub idle_power_w: f64,
}

/// A sinusoidal diurnal arrival profile:
/// `λ(slot) = base · (1 + amplitude · sin(2π · slot / slots))`, clipped
/// at a small positive floor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiurnalProfile {
    /// Mean arrival rate over the day, jobs/second.
    pub base_lambda: f64,
    /// Relative swing in `[0, 1)`: 0 = flat, 0.9 = strong day/night cycle.
    pub amplitude: f64,
    /// Number of slots per day (e.g. 24).
    pub slots: u32,
    /// Slot length in seconds.
    pub slot_s: f64,
}

impl DiurnalProfile {
    /// Validate and construct. `base_lambda` and `slot_s` must be finite
    /// and positive — an infinite slot length would pass a `> 0` check but
    /// poison the per-slot window-energy accounting downstream.
    ///
    /// # Errors
    /// [`Error::InvalidInput`] on a non-finite or non-positive rate or
    /// slot length, an amplitude outside `[0, 1)`, or zero slots.
    pub fn new(base_lambda: f64, amplitude: f64, slots: u32, slot_s: f64) -> Result<Self> {
        if !(base_lambda > 0.0)
            || !base_lambda.is_finite()
            || !(0.0..1.0).contains(&amplitude)
            || slots == 0
            || !(slot_s > 0.0)
            || !slot_s.is_finite()
        {
            return Err(Error::InvalidInput(format!(
                "bad diurnal profile: λ={base_lambda}, amp={amplitude}, slots={slots}, slot_s={slot_s}"
            )));
        }
        Ok(Self {
            base_lambda,
            amplitude,
            slots,
            slot_s,
        })
    }

    /// Arrival rate during `slot`.
    #[must_use]
    pub fn lambda_at(&self, slot: u32) -> f64 {
        let phase = std::f64::consts::TAU * f64::from(slot % self.slots) / f64::from(self.slots);
        (self.base_lambda * (1.0 + self.amplitude * phase.sin())).max(1e-9)
    }

    /// Length of one day, seconds.
    #[must_use]
    pub fn day_s(&self) -> f64 {
        f64::from(self.slots) * self.slot_s
    }

    /// Continuous arrival rate at an arbitrary instant: piecewise-linear
    /// interpolation between *slot midpoints*, wrapping around the day
    /// boundary (the last slot's midpoint connects to the first slot's —
    /// hour 23 interpolates into hour 0, not into a phantom hour 24).
    ///
    /// The per-slot [`Self::lambda_at`] used by `run_day`/`run_day_parking`
    /// treats each slot as a constant plateau and wraps by `slot % slots`;
    /// this is its continuous counterpart for trace replay (`hecmix-sched`
    /// synthesizes Poisson arrivals against it). At every slot midpoint
    /// the two agree exactly. Times outside `[0, day)` wrap via
    /// `rem_euclid`, so negative instants are safe too.
    #[must_use]
    pub fn lambda_at_time(&self, t_s: f64) -> f64 {
        let day = self.day_s();
        let t = t_s.rem_euclid(day);
        // Position in midpoint coordinates: slot k's midpoint sits at
        // (k + 0.5)·slot_s, i.e. midpoint coordinate k. For t inside the
        // first half of slot 0 this goes negative, which must select the
        // wrap segment (slots-1 → 0) — the day-boundary off-by-one a
        // plain `floor` + cast would get wrong (casting -0.3 to u32
        // saturates to 0 and would interpolate 0 → 1 instead).
        let pos = t / self.slot_s - 0.5;
        let lo = pos.floor();
        let frac = pos - lo;
        let slots = f64::from(self.slots);
        let s0 = lo.rem_euclid(slots) as u32;
        let s1 = (s0 + 1) % self.slots;
        let (a, b) = (self.lambda_at(s0), self.lambda_at(s1));
        (a + (b - a) * frac).max(1e-9)
    }
}

/// Result of one slot under a policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlotOutcome {
    /// Slot index.
    pub slot: u32,
    /// Arrival rate in the slot.
    pub lambda: f64,
    /// Index of the chosen configuration in the menu.
    pub choice: usize,
    /// Energy over the slot, joules.
    pub energy_j: f64,
    /// Mean response time in the slot, seconds.
    pub response_s: f64,
    /// Whether the SLO was violated in this slot.
    pub violated: bool,
}

/// Aggregated day under one policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DayOutcome {
    /// Total energy over the day, joules.
    pub energy_j: f64,
    /// Slots that missed the SLO (including saturated ones).
    pub violations: u32,
    /// Per-slot detail.
    pub slots: Vec<SlotOutcome>,
}

/// Validate the per-slot scalars every dispatch entry point shares: a
/// non-finite or non-positive `λ`, window, or SLO must be rejected up
/// front — a NaN deadline compares false against every response time and
/// would silently select an arbitrary configuration (the same hardening
/// PR 2 applied to the `rate_table` sweep entry points).
fn validate_slot_inputs(lambda: f64, window_s: f64, slo_response_s: f64) -> Result<()> {
    if !(lambda > 0.0) || !lambda.is_finite() {
        return Err(Error::InvalidInput(format!(
            "arrival rate must be finite and positive, got {lambda}"
        )));
    }
    if !(window_s > 0.0) || !window_s.is_finite() {
        return Err(Error::InvalidInput(format!(
            "window length must be finite and positive, got {window_s}"
        )));
    }
    if !(slo_response_s > 0.0) || !slo_response_s.is_finite() {
        return Err(Error::InvalidInput(format!(
            "SLO response time must be finite and positive, got {slo_response_s}"
        )));
    }
    Ok(())
}

/// Validate one menu entry (`what` names it in errors): service time must
/// be finite and positive, energies and idle power finite and non-negative.
fn validate_choice(what: &str, c: &ConfigChoice) -> Result<()> {
    if !(c.service_s > 0.0) || !c.service_s.is_finite() {
        return Err(Error::InvalidInput(format!(
            "{what} `{}`: service time must be finite and positive, got {}",
            c.label, c.service_s
        )));
    }
    if !(c.job_energy_j >= 0.0) || !c.job_energy_j.is_finite() {
        return Err(Error::InvalidInput(format!(
            "{what} `{}`: job energy must be finite and non-negative, got {}",
            c.label, c.job_energy_j
        )));
    }
    if !(c.idle_power_w >= 0.0) || !c.idle_power_w.is_finite() {
        return Err(Error::InvalidInput(format!(
            "{what} `{}`: idle power must be finite and non-negative, got {}",
            c.label, c.idle_power_w
        )));
    }
    Ok(())
}

/// For one slot, pick the cheapest menu entry whose mean response meets
/// the SLO; fall back to the fastest-response feasible entry (counted as
/// a violation) when none does. Returns `Ok(None)` only when every entry
/// is saturated at this `λ`.
///
/// # Errors
/// [`Error::InvalidInput`] when `lambda`, `window_s`, or `slo_response_s`
/// is non-finite or non-positive, or a menu entry carries a non-finite or
/// negative parameter.
pub fn best_choice(
    menu: &[ConfigChoice],
    lambda: f64,
    window_s: f64,
    slo_response_s: f64,
) -> Result<Option<(usize, f64, f64, bool)>> {
    validate_slot_inputs(lambda, window_s, slo_response_s)?;
    for c in menu {
        validate_choice("menu entry", c)?;
    }
    let mut best_ok: Option<(usize, f64, f64)> = None; // (idx, energy, response)
    let mut best_fallback: Option<(usize, f64, f64)> = None; // fastest response
    for (idx, c) in menu.iter().enumerate() {
        let Ok(we) = window_energy(
            lambda,
            window_s,
            c.service_s,
            c.job_energy_j,
            c.idle_power_w,
        ) else {
            continue; // saturated
        };
        let e = we.total_j();
        if we.response_s <= slo_response_s && best_ok.as_ref().is_none_or(|(_, be, _)| e < *be) {
            best_ok = Some((idx, e, we.response_s));
        }
        if best_fallback
            .as_ref()
            .is_none_or(|(_, _, br)| we.response_s < *br)
        {
            best_fallback = Some((idx, e, we.response_s));
        }
    }
    Ok(match (best_ok, best_fallback) {
        (Some((i, e, r)), _) => Some((i, e, r, false)),
        (None, Some((i, e, r))) => Some((i, e, r, true)),
        (None, None) => None,
    })
}

/// A percentile deadline: "the `percentile` quantile of the response time
/// must not exceed `deadline_s`" (e.g. p99 ≤ 200 ms), as opposed to the
/// mean-response SLO [`best_choice`] plans against.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TailTarget {
    /// The quantile, in `(0, 1)` — 0.99 for a p99 deadline.
    pub percentile: f64,
    /// Deadline on that quantile of the response time, seconds.
    pub deadline_s: f64,
}

impl TailTarget {
    /// Validate and construct.
    pub fn new(percentile: f64, deadline_s: f64) -> Result<Self> {
        if !(percentile > 0.0) || !(percentile < 1.0) {
            return Err(Error::InvalidInput(format!(
                "tail percentile must lie in (0, 1), got {percentile}"
            )));
        }
        if !(deadline_s > 0.0) || !deadline_s.is_finite() {
            return Err(Error::InvalidInput(format!(
                "tail deadline must be finite and positive, got {deadline_s}"
            )));
        }
        Ok(Self {
            percentile,
            deadline_s,
        })
    }
}

/// Knobs of the coarse-then-exact DES scoring pass in
/// [`best_choice_tail`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TailDesConfig {
    /// Requests per coarse screening run.
    pub coarse_requests: u64,
    /// Requests per exact confirmation run.
    pub exact_requests: u64,
    /// Relative band around the deadline: a coarse tail beyond
    /// `deadline·(1 + band)` rejects the candidate without an exact run.
    pub band: f64,
    /// Base RNG seed; per-candidate seeds derive from it, so a plan is
    /// replayable bit-for-bit.
    pub seed: u64,
}

impl Default for TailDesConfig {
    fn default() -> Self {
        Self {
            coarse_requests: 20_000,
            exact_requests: 200_000,
            band: 0.1,
            seed: 42,
        }
    }
}

impl TailDesConfig {
    fn validate(&self) -> Result<()> {
        if self.coarse_requests == 0
            || self.exact_requests == 0
            || !(self.band >= 0.0)
            || !self.band.is_finite()
        {
            return Err(Error::InvalidInput(format!(
                "TailDesConfig needs coarse/exact requests >= 1 and a finite \
                 non-negative band, got {self:?}"
            )));
        }
        Ok(())
    }
}

/// What [`best_choice_tail`] decided for one slot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TailChoiceOutcome {
    /// Index of the chosen configuration in the menu.
    pub index: usize,
    /// Window energy of the chosen configuration, joules.
    pub energy_j: f64,
    /// DES-measured percentile response time of the chosen
    /// configuration, seconds.
    pub tail_response_s: f64,
    /// Analytical M/D/1 mean response of the chosen configuration,
    /// seconds.
    pub mean_response_s: f64,
    /// True when no configuration meets the percentile deadline and the
    /// returned one is the smallest-tail fallback.
    pub violated: bool,
    /// Candidates eliminated by the analytical mean-response screen
    /// without any DES run.
    pub screened_out: usize,
    /// DES runs spent (coarse + exact).
    pub des_runs: u32,
}

/// DES-measured `percentile` response time of one menu entry treated as a
/// single deterministic server at `lambda` (the same abstraction the
/// M/D/1 window-energy model uses: the cluster's mix-and-match schedule
/// serves one job at a time in `service_s`).
fn des_tail(
    lambda: f64,
    service_s: f64,
    percentile: f64,
    n_requests: u64,
    seed: u64,
) -> Result<f64> {
    let out = des::simulate(&DesConfig {
        pps: lambda,
        n_requests,
        layout: des::CoreLayout::Combined { cores: 1 },
        service: ServiceDist::Constant(service_s),
        net_cost_s: 0.0,
        queue_cap: des::UNBOUNDED,
        flows: 1,
        seed,
    })?;
    out.sojourn.quantile(percentile).ok_or_else(|| {
        Error::InvalidInput(format!(
            "DES produced no completions for percentile {percentile}"
        ))
    })
}

/// Seed for the exact confirmation run of candidate `idx` (decorrelated
/// from its coarse run by an odd 64-bit constant).
fn exact_seed(base: u64, idx: usize) -> u64 {
    base ^ (idx as u64) ^ 0x9e37_79b9_7f4a_7c15
}

/// Percentile-deadline slot choice (ROADMAP item 1): pick the cheapest
/// menu entry whose DES-measured `target.percentile` response time meets
/// `target.deadline_s`.
///
/// Candidates are screened coarse-then-exact (the ROADMAP item 4
/// pattern):
///
/// 1. the analytical M/D/1 *mean* response is a lower bound on any upper
///    quantile's response (the response distribution's p50+ quantiles sit
///    at or above the mean for these service shapes — a stated heuristic,
///    not a theorem), so a candidate whose mean already misses the
///    deadline is rejected with no DES run;
/// 2. survivors are walked cheapest-first; a coarse DES run
///    ([`TailDesConfig::coarse_requests`]) rejects a candidate whose tail
///    overshoots `deadline·(1 + band)`, otherwise an exact run
///    ([`TailDesConfig::exact_requests`]) decides.
///
/// The first candidate whose exact tail meets the deadline wins (cheapest
/// by construction). When none passes, the smallest observed tail is
/// returned with `violated = true`; `Ok(None)` only when every entry is
/// saturated at `lambda`.
///
/// # Errors
/// [`Error::InvalidInput`] for non-finite or non-positive slot scalars, a
/// malformed menu entry, or a malformed `des_cfg`.
pub fn best_choice_tail(
    menu: &[ConfigChoice],
    lambda: f64,
    window_s: f64,
    target: TailTarget,
    des_cfg: &TailDesConfig,
) -> Result<Option<TailChoiceOutcome>> {
    validate_slot_inputs(lambda, window_s, target.deadline_s)?;
    let target = TailTarget::new(target.percentile, target.deadline_s)?;
    des_cfg.validate()?;
    for c in menu {
        validate_choice("menu entry", c)?;
    }

    // Analytical screen: saturated entries are out entirely; entries whose
    // M/D/1 mean response already misses the deadline are out without a
    // DES run.
    let mut screened_out = 0usize;
    let mut survivors: Vec<(usize, f64, f64)> = Vec::new(); // (idx, energy, mean response)
    for (idx, c) in menu.iter().enumerate() {
        let Ok(we) = window_energy(
            lambda,
            window_s,
            c.service_s,
            c.job_energy_j,
            c.idle_power_w,
        ) else {
            continue; // saturated
        };
        if we.response_s > target.deadline_s {
            screened_out += 1;
            continue;
        }
        survivors.push((idx, we.total_j(), we.response_s));
    }
    if survivors.is_empty() && screened_out == 0 {
        return Ok(None); // everything saturated
    }
    survivors.sort_by(|a, b| a.1.total_cmp(&b.1));

    let mut des_runs = 0u32;
    let mut fallback: Option<TailChoiceOutcome> = None; // smallest observed tail
    let mut chosen: Option<TailChoiceOutcome> = None;
    for &(idx, energy_j, mean_response_s) in &survivors {
        let c = &menu[idx];
        let coarse = des_tail(
            lambda,
            c.service_s,
            target.percentile,
            des_cfg.coarse_requests,
            des_cfg.seed ^ idx as u64,
        )?;
        des_runs += 1;
        let outcome = |tail: f64, violated: bool, des_runs: u32| TailChoiceOutcome {
            index: idx,
            energy_j,
            tail_response_s: tail,
            mean_response_s,
            violated,
            screened_out,
            des_runs,
        };
        if coarse > target.deadline_s * (1.0 + des_cfg.band) {
            // Clearly over even at coarse resolution.
            if fallback.as_ref().is_none_or(|f| coarse < f.tail_response_s) {
                fallback = Some(outcome(coarse, true, des_runs));
            }
            continue;
        }
        let exact = des_tail(
            lambda,
            c.service_s,
            target.percentile,
            des_cfg.exact_requests,
            exact_seed(des_cfg.seed, idx),
        )?;
        des_runs += 1;
        if exact <= target.deadline_s {
            chosen = Some(outcome(exact, false, des_runs));
            break; // cheapest-first walk: first pass wins
        }
        if fallback.as_ref().is_none_or(|f| exact < f.tail_response_s) {
            fallback = Some(outcome(exact, true, des_runs));
        }
    }
    // The fallback snapshot may carry a stale run count; pin it to the
    // final tally below.
    if let Some(f) = fallback.as_mut() {
        f.des_runs = des_runs;
    }

    // Fallback when nothing passed: if every survivor was also screened
    // away without a DES run (impossible here since survivors got runs),
    // or the menu only had screened-out entries, measure the fastest
    // screened entry so the caller still sees a concrete tail.
    let result = match (chosen, fallback) {
        (Some(c), _) => Some(c),
        (None, Some(f)) => Some(f),
        (None, None) => {
            // All candidates were screened out analytically. Report the
            // entry with the smallest mean response as the violating
            // fallback, with its DES tail measured once.
            let best = menu
                .iter()
                .enumerate()
                .filter_map(|(idx, c)| {
                    let we = window_energy(
                        lambda,
                        window_s,
                        c.service_s,
                        c.job_energy_j,
                        c.idle_power_w,
                    )
                    .ok()?;
                    Some((idx, we.total_j(), we.response_s))
                })
                .min_by(|a, b| a.2.total_cmp(&b.2));
            match best {
                None => None,
                Some((idx, energy_j, mean_response_s)) => {
                    let tail = des_tail(
                        lambda,
                        menu[idx].service_s,
                        target.percentile,
                        des_cfg.exact_requests,
                        exact_seed(des_cfg.seed, idx),
                    )?;
                    des_runs += 1;
                    Some(TailChoiceOutcome {
                        index: idx,
                        energy_j,
                        tail_response_s: tail,
                        mean_response_s,
                        violated: true,
                        screened_out,
                        des_runs,
                    })
                }
            }
        }
    };
    if let Some(ref out) = result {
        hecmix_obs::emit(|| hecmix_obs::Event::TailPlan {
            lambda,
            percentile: target.percentile,
            deadline_s: target.deadline_s,
            candidates: menu.len(),
            screened_out,
            des_runs: u64::from(out.des_runs),
            chosen: out.index,
            tail_s: out.tail_response_s,
            violated: out.violated,
        });
    }
    Ok(result)
}

/// Run a whole day under one menu. A slot where even the fastest
/// configuration is saturated contributes zero energy but counts as a
/// violation (the queue is unstable — energy accounting is moot).
///
/// # Errors
/// [`Error::InvalidInput`] from [`best_choice`] for a bad SLO or menu.
pub fn run_day(
    menu: &[ConfigChoice],
    profile: &DiurnalProfile,
    slo_response_s: f64,
) -> Result<DayOutcome> {
    let mut slots = Vec::with_capacity(profile.slots as usize);
    let mut energy_j = 0.0;
    let mut violations = 0;
    for slot in 0..profile.slots {
        let lambda = profile.lambda_at(slot);
        match best_choice(menu, lambda, profile.slot_s, slo_response_s)? {
            Some((choice, e, response_s, violated)) => {
                hecmix_obs::emit(|| hecmix_obs::Event::DispatchDecision {
                    slot: slot as usize,
                    lambda,
                    choice,
                    energy_j: e,
                    response_s,
                    violated,
                    resilient: false,
                });
                energy_j += e;
                violations += u32::from(violated);
                slots.push(SlotOutcome {
                    slot,
                    lambda,
                    choice,
                    energy_j: e,
                    response_s,
                    violated,
                });
            }
            None => {
                violations += 1;
                slots.push(SlotOutcome {
                    slot,
                    lambda,
                    choice: usize::MAX,
                    energy_j: 0.0,
                    response_s: f64::INFINITY,
                    violated: true,
                });
            }
        }
    }
    Ok(DayOutcome {
        energy_j,
        violations,
        slots,
    })
}

/// A menu entry whose powered nodes may park their whole power domains
/// during idle gaps: the configuration plus an optional cluster-sleep
/// capability (from the model bundle's DVFS power-domain tree).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParkableChoice {
    /// The configuration as dispatched.
    pub choice: ConfigChoice,
    /// Cluster-sleep capability; `None` keeps the always-on idle floor.
    pub sleep: Option<SleepPolicy>,
}

/// [`best_choice`] over a parkable menu: entries with a sleep capability
/// are priced with [`window_energy_sleep`], so in low-`λ` troughs (long
/// exponential idle gaps) whole clusters earn their deep-sleep credit and
/// become cheaper than their always-on pricing. Response times are
/// unchanged — parking happens strictly between jobs.
///
/// # Errors
/// [`Error::InvalidInput`] as [`best_choice`], plus for invalid sleep
/// policies.
pub fn best_choice_parking(
    menu: &[ParkableChoice],
    lambda: f64,
    window_s: f64,
    slo_response_s: f64,
) -> Result<Option<(usize, f64, f64, bool)>> {
    validate_slot_inputs(lambda, window_s, slo_response_s)?;
    for p in menu {
        validate_choice("parkable menu entry", &p.choice)?;
        if let Some(sleep) = &p.sleep {
            if !sleep.sleep_power_w.is_finite()
                || sleep.sleep_power_w < 0.0
                || sleep.sleep_power_w > p.choice.idle_power_w
                || !sleep.residency_s.is_finite()
                || sleep.residency_s < 0.0
            {
                return Err(Error::InvalidInput(format!(
                    "parkable menu entry `{}`: invalid sleep policy \
                     (sleep_power_w={}, residency_s={})",
                    p.choice.label, sleep.sleep_power_w, sleep.residency_s
                )));
            }
        }
    }
    let mut best_ok: Option<(usize, f64, f64)> = None;
    let mut best_fallback: Option<(usize, f64, f64)> = None;
    for (idx, p) in menu.iter().enumerate() {
        let c = &p.choice;
        let we = match &p.sleep {
            Some(sleep) => window_energy_sleep(
                lambda,
                window_s,
                c.service_s,
                c.job_energy_j,
                c.idle_power_w,
                sleep,
            ),
            None => window_energy(
                lambda,
                window_s,
                c.service_s,
                c.job_energy_j,
                c.idle_power_w,
            ),
        };
        let Ok(we) = we else {
            continue; // saturated
        };
        let e = we.total_j();
        if we.response_s <= slo_response_s && best_ok.as_ref().is_none_or(|(_, be, _)| e < *be) {
            best_ok = Some((idx, e, we.response_s));
        }
        if best_fallback
            .as_ref()
            .is_none_or(|(_, _, br)| we.response_s < *br)
        {
            best_fallback = Some((idx, e, we.response_s));
        }
    }
    Ok(match (best_ok, best_fallback) {
        (Some((i, e, r)), _) => Some((i, e, r, false)),
        (None, Some((i, e, r))) => Some((i, e, r, true)),
        (None, None) => None,
    })
}

/// [`run_day`] over a parkable menu: diurnal dispatch that may park whole
/// clusters in the troughs.
///
/// # Errors
/// [`Error::InvalidInput`] from [`best_choice_parking`].
pub fn run_day_parking(
    menu: &[ParkableChoice],
    profile: &DiurnalProfile,
    slo_response_s: f64,
) -> Result<DayOutcome> {
    let mut slots = Vec::with_capacity(profile.slots as usize);
    let mut energy_j = 0.0;
    let mut violations = 0;
    for slot in 0..profile.slots {
        let lambda = profile.lambda_at(slot);
        match best_choice_parking(menu, lambda, profile.slot_s, slo_response_s)? {
            Some((choice, e, response_s, violated)) => {
                hecmix_obs::emit(|| hecmix_obs::Event::DispatchDecision {
                    slot: slot as usize,
                    lambda,
                    choice,
                    energy_j: e,
                    response_s,
                    violated,
                    resilient: false,
                });
                energy_j += e;
                violations += u32::from(violated);
                slots.push(SlotOutcome {
                    slot,
                    lambda,
                    choice,
                    energy_j: e,
                    response_s,
                    violated,
                });
            }
            None => {
                violations += 1;
                slots.push(SlotOutcome {
                    slot,
                    lambda,
                    choice: usize::MAX,
                    energy_j: 0.0,
                    response_s: f64::INFINITY,
                    violated: true,
                });
            }
        }
    }
    Ok(DayOutcome {
        energy_j,
        violations,
        slots,
    })
}

/// A menu entry annotated with its worst-case `k`-failure behaviour: the
/// degraded service time and per-job energy of the same deployment after
/// losing its `k` most valuable nodes (from
/// `hecmix_core::resilience::ResilientTable::degraded_outcome`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResilientChoice {
    /// The configuration as it runs when nothing fails.
    pub nominal: ConfigChoice,
    /// Job service time after the worst-case `k` node losses, seconds
    /// (`≥ nominal.service_s`).
    pub degraded_service_s: f64,
    /// Per-job energy in the degraded deployment, joules.
    pub degraded_job_energy_j: f64,
}

/// Failure-aware slot choice: feasibility (queue stability and the SLO)
/// is judged against the *degraded* service time — the slot must still
/// meet its SLO after the worst-case `k` node losses — while the reported
/// energy is the *nominal* one, since that is what the cluster spends in
/// the (overwhelmingly common) fault-free slot.
///
/// Returns `Ok((index, nominal energy, degraded response, violated))`;
/// `Ok(None)` only when every entry is saturated at `lambda` even
/// nominally.
///
/// # Errors
/// [`Error::InvalidInput`] when `lambda`, `window_s`, or `slo_response_s`
/// is non-finite or non-positive, or a menu entry carries a non-finite or
/// negative parameter (nominal or degraded).
pub fn best_choice_resilient(
    menu: &[ResilientChoice],
    lambda: f64,
    window_s: f64,
    slo_response_s: f64,
) -> Result<Option<(usize, f64, f64, bool)>> {
    validate_slot_inputs(lambda, window_s, slo_response_s)?;
    for c in menu {
        validate_choice("resilient menu entry", &c.nominal)?;
        if !(c.degraded_service_s >= c.nominal.service_s) || !c.degraded_service_s.is_finite() {
            return Err(Error::InvalidInput(format!(
                "resilient menu entry `{}`: degraded service time must be finite and ≥ nominal ({}), got {}",
                c.nominal.label, c.nominal.service_s, c.degraded_service_s
            )));
        }
        if !(c.degraded_job_energy_j >= 0.0) || !c.degraded_job_energy_j.is_finite() {
            return Err(Error::InvalidInput(format!(
                "resilient menu entry `{}`: degraded job energy must be finite and non-negative, got {}",
                c.nominal.label, c.degraded_job_energy_j
            )));
        }
    }
    let mut best_ok: Option<(usize, f64, f64)> = None; // (idx, energy, degraded response)
    let mut best_fallback: Option<(usize, f64, f64)> = None; // fastest degraded response
    for (idx, c) in menu.iter().enumerate() {
        let Ok(nominal) = window_energy(
            lambda,
            window_s,
            c.nominal.service_s,
            c.nominal.job_energy_j,
            c.nominal.idle_power_w,
        ) else {
            continue; // saturated even with every node up
        };
        let e = nominal.total_j();
        // The degraded queue may be saturated where the nominal one is
        // not; such an entry survives only as a (violating) fallback,
        // ranked by its nominal response.
        let degraded_response = window_energy(
            lambda,
            window_s,
            c.degraded_service_s,
            c.degraded_job_energy_j,
            c.nominal.idle_power_w,
        )
        .map_or(f64::INFINITY, |we| we.response_s);
        if degraded_response <= slo_response_s && best_ok.as_ref().is_none_or(|(_, be, _)| e < *be)
        {
            best_ok = Some((idx, e, degraded_response));
        }
        let rank = if degraded_response.is_finite() {
            degraded_response
        } else {
            nominal.response_s
        };
        if best_fallback.as_ref().is_none_or(|(_, _, br)| rank < *br) {
            best_fallback = Some((idx, e, rank));
        }
    }
    Ok(match (best_ok, best_fallback) {
        (Some((i, e, r)), _) => Some((i, e, r, false)),
        (None, Some((i, e, r))) => Some((i, e, r, true)),
        (None, None) => None,
    })
}

/// Run a whole day under a failure-aware menu: every slot is provisioned
/// so that it would still meet the SLO after the worst-case node losses
/// its menu entries were annotated with. Reported energy is nominal.
///
/// # Errors
/// [`Error::InvalidInput`] from [`best_choice_resilient`] for a bad SLO
/// or menu.
pub fn run_day_resilient(
    menu: &[ResilientChoice],
    profile: &DiurnalProfile,
    slo_response_s: f64,
) -> Result<DayOutcome> {
    let mut slots = Vec::with_capacity(profile.slots as usize);
    let mut energy_j = 0.0;
    let mut violations = 0;
    for slot in 0..profile.slots {
        let lambda = profile.lambda_at(slot);
        match best_choice_resilient(menu, lambda, profile.slot_s, slo_response_s)? {
            Some((choice, e, response_s, violated)) => {
                hecmix_obs::emit(|| hecmix_obs::Event::DispatchDecision {
                    slot: slot as usize,
                    lambda,
                    choice,
                    energy_j: e,
                    response_s,
                    violated,
                    resilient: true,
                });
                energy_j += e;
                violations += u32::from(violated);
                slots.push(SlotOutcome {
                    slot,
                    lambda,
                    choice,
                    energy_j: e,
                    response_s,
                    violated,
                });
            }
            None => {
                violations += 1;
                slots.push(SlotOutcome {
                    slot,
                    lambda,
                    choice: usize::MAX,
                    energy_j: 0.0,
                    response_s: f64::INFINITY,
                    violated: true,
                });
            }
        }
    }
    Ok(DayOutcome {
        energy_j,
        violations,
        slots,
    })
}

/// Convenience: the highest arrival rate any menu entry can stabilize
/// (`max_i 1/T_i`, exclusive).
#[must_use]
pub fn saturation_lambda(menu: &[ConfigChoice]) -> f64 {
    menu.iter().map(|c| 1.0 / c.service_s).fold(0.0, f64::max)
}

/// Sanity helper: would this menu meet the SLO at `lambda` at all?
#[must_use]
pub fn feasible(menu: &[ConfigChoice], lambda: f64, slo_response_s: f64) -> bool {
    menu.iter().any(|c| {
        MD1::new(lambda, c.service_s)
            .and_then(|q| q.mean_response_s())
            .map(|r| r <= slo_response_s)
            .unwrap_or(false)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn menu() -> Vec<ConfigChoice> {
        vec![
            // A fast, expensive configuration (AMD-heavy).
            ConfigChoice {
                label: "fast".into(),
                service_s: 0.025,
                job_energy_j: 20.0,
                idle_power_w: 700.0,
            },
            // A slow, cheap one (ARM-only).
            ConfigChoice {
                label: "cheap".into(),
                service_s: 0.40,
                job_energy_j: 7.5,
                idle_power_w: 25.0,
            },
        ]
    }

    #[test]
    fn diurnal_profile_shape() {
        let p = DiurnalProfile::new(1.0, 0.5, 24, 3600.0).unwrap();
        let lambdas: Vec<f64> = (0..24).map(|s| p.lambda_at(s)).collect();
        let max = lambdas.iter().cloned().fold(0.0f64, f64::max);
        let min = lambdas.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!((max - 1.5).abs() < 0.01, "peak {max}");
        assert!((min - 0.5).abs() < 0.01, "trough {min}");
        // Periodic.
        assert_eq!(p.lambda_at(0), p.lambda_at(24));
        // Degenerate profiles rejected.
        assert!(DiurnalProfile::new(0.0, 0.5, 24, 3600.0).is_err());
        assert!(DiurnalProfile::new(1.0, 1.0, 24, 3600.0).is_err());
        assert!(DiurnalProfile::new(1.0, 0.5, 0, 3600.0).is_err());
        // Non-finite rate/slot length must be rejected at construction,
        // not only when a run_day* entry point later touches them.
        assert!(DiurnalProfile::new(f64::INFINITY, 0.5, 24, 3600.0).is_err());
        assert!(DiurnalProfile::new(f64::NAN, 0.5, 24, 3600.0).is_err());
        assert!(DiurnalProfile::new(1.0, 0.5, 24, f64::INFINITY).is_err());
        assert!(DiurnalProfile::new(1.0, 0.5, 24, f64::NAN).is_err());
    }

    #[test]
    fn diurnal_interpolation_wraps_the_day_boundary() {
        // Day-wrap audit (ISSUE 10, satellite 2): the continuous profile
        // must interpolate hour 23 into hour 0, with no discontinuity and
        // no off-by-one at either end of the day.
        let p = DiurnalProfile::new(1.0, 0.5, 24, 3600.0).unwrap();
        let day = p.day_s();

        // Exact agreement with the discrete profile at every midpoint,
        // including slot 0 and the last slot.
        for s in 0..24u32 {
            let mid = (f64::from(s) + 0.5) * p.slot_s;
            assert!(
                (p.lambda_at_time(mid) - p.lambda_at(s)).abs() < 1e-12,
                "midpoint of slot {s}"
            );
        }

        // The 23 → 0 wrap segment is linear between the two midpoints:
        // t = 0 lies exactly halfway between midpoint(23) and midpoint(0).
        let expected_at_zero = 0.5 * (p.lambda_at(23) + p.lambda_at(0));
        assert!((p.lambda_at_time(0.0) - expected_at_zero).abs() < 1e-12);
        // Same point approached from the end of the day.
        assert!((p.lambda_at_time(day) - expected_at_zero).abs() < 1e-9);

        // Continuity across the boundary: a tiny step over midnight moves
        // the rate by no more than the wrap segment's slope allows.
        let slope = (p.lambda_at(0) - p.lambda_at(23)).abs() / p.slot_s;
        let eps = 1e-3;
        let before = p.lambda_at_time(day - eps);
        let after = p.lambda_at_time(day + eps);
        assert!(
            (after - before).abs() <= slope * 2.0 * eps + 1e-9,
            "jump across midnight: {before} -> {after}"
        );

        // Periodic and defined for negative instants.
        assert!((p.lambda_at_time(-1.0) - p.lambda_at_time(day - 1.0)).abs() < 1e-9);
        assert!((p.lambda_at_time(2.0 * day + 7.0) - p.lambda_at_time(7.0)).abs() < 1e-9);

        // The discrete lookup run_day_parking uses wraps too (hour 24 ==
        // hour 0) — pinned here next to the continuous case.
        assert_eq!(p.lambda_at(24), p.lambda_at(0));
    }

    #[test]
    fn idle_gap_energy_prices_sleep_only_past_residency() {
        use crate::idle_gap_energy_j;
        let sleep = SleepPolicy {
            sleep_power_w: 2.0,
            residency_s: 10.0,
        };
        // Short gap: always-on idle floor.
        assert!((idle_gap_energy_j(5.0, 8.0, Some(&sleep)) - 40.0).abs() < 1e-12);
        // Long gap: whole gap at the deep floor.
        assert!((idle_gap_energy_j(20.0, 8.0, Some(&sleep)) - 40.0).abs() < 1e-12);
        // Exactly at residency: parks (>=, matching the simulator).
        assert!((idle_gap_energy_j(10.0, 8.0, Some(&sleep)) - 20.0).abs() < 1e-12);
        // No policy: idle floor.
        assert!((idle_gap_energy_j(10.0, 8.0, None) - 80.0).abs() < 1e-12);
        // Degenerate gaps are free, not errors.
        assert_eq!(idle_gap_energy_j(0.0, 8.0, None), 0.0);
        assert_eq!(idle_gap_energy_j(-3.0, 8.0, Some(&sleep)), 0.0);
        assert_eq!(idle_gap_energy_j(f64::NAN, 8.0, None), 0.0);
    }

    fn parkable_menu() -> Vec<ParkableChoice> {
        menu()
            .into_iter()
            .map(|choice| {
                let sleep = Some(SleepPolicy {
                    sleep_power_w: choice.idle_power_w * 0.1,
                    residency_s: 0.05,
                });
                ParkableChoice { choice, sleep }
            })
            .collect()
    }

    #[test]
    fn parking_day_never_costs_more_than_plain_day() {
        let profile = DiurnalProfile::new(1.0, 0.1, 24, 3600.0).unwrap();
        let slo = 1.0;
        let plain = run_day(&menu(), &profile, slo).unwrap();
        let parked = run_day_parking(&parkable_menu(), &profile, slo).unwrap();
        assert!(parked.energy_j < plain.energy_j, "no cluster-sleep savings");
        assert!(parked.violations <= plain.violations);
        // A sleep-less parkable menu reproduces the plain day exactly.
        let no_sleep: Vec<ParkableChoice> = menu()
            .into_iter()
            .map(|choice| ParkableChoice {
                choice,
                sleep: None,
            })
            .collect();
        let same = run_day_parking(&no_sleep, &profile, slo).unwrap();
        assert_eq!(same.energy_j, plain.energy_j);
        assert_eq!(same.violations, plain.violations);
    }

    #[test]
    fn parking_savings_concentrate_in_troughs() {
        let profile = DiurnalProfile::new(1.0, 0.9, 24, 3600.0).unwrap();
        let slo = 5.0;
        // Pin the menu to the single cheap configuration so every slot
        // runs the same hardware and the sleep credit depends only on λ.
        let plain_menu = vec![menu().remove(1)];
        let park_menu = vec![parkable_menu().remove(1)];
        let plain = run_day(&plain_menu, &profile, slo).unwrap();
        let parked = run_day_parking(&park_menu, &profile, slo).unwrap();
        // Idle gaps are long when λ is small, so the deep-sleep credit
        // must be larger in the trough than at the peak.
        let (mut trough_saving, mut peak_saving) = (0.0f64, 0.0f64);
        for (p, q) in plain.slots.iter().zip(&parked.slots) {
            let saving = p.energy_j - q.energy_j;
            if p.lambda < 0.2 {
                trough_saving = trough_saving.max(saving);
            } else if p.lambda > 1.5 {
                peak_saving = peak_saving.max(saving);
            }
        }
        assert!(
            trough_saving > peak_saving && peak_saving > 0.0,
            "trough {trough_saving} vs peak {peak_saving}"
        );
    }

    #[test]
    fn parking_rejects_invalid_sleep_policies() {
        let mut m = parkable_menu();
        m[0].sleep = Some(SleepPolicy {
            sleep_power_w: m[0].choice.idle_power_w + 1.0,
            residency_s: 0.0,
        });
        assert!(best_choice_parking(&m, 0.5, 3600.0, 1.0).is_err());
        let mut m = parkable_menu();
        m[1].sleep = Some(SleepPolicy {
            sleep_power_w: f64::NAN,
            residency_s: 0.0,
        });
        assert!(best_choice_parking(&m, 0.5, 3600.0, 1.0).is_err());
    }

    #[test]
    fn best_choice_prefers_cheap_when_slack() {
        let m = menu();
        // λ low, SLO loose: the cheap configuration wins.
        let (idx, _, _, violated) = best_choice(&m, 0.5, 3600.0, 1.0).unwrap().unwrap();
        assert_eq!(idx, 1);
        assert!(!violated);
        // SLO tight (50 ms): only the fast configuration qualifies.
        let (idx, _, _, violated) = best_choice(&m, 0.5, 3600.0, 0.05).unwrap().unwrap();
        assert_eq!(idx, 0);
        assert!(!violated);
    }

    #[test]
    fn best_choice_falls_back_and_flags_violation() {
        let m = menu();
        // SLO impossible (1 ms): fastest config chosen, violation flagged.
        let (idx, _, _, violated) = best_choice(&m, 0.5, 3600.0, 0.001).unwrap().unwrap();
        assert_eq!(idx, 0);
        assert!(violated);
        // λ beyond every config's saturation: nothing to pick.
        assert!(best_choice(&m, 1000.0, 3600.0, 1.0).unwrap().is_none());
    }

    #[test]
    fn day_accounting() {
        let m = menu();
        let p = DiurnalProfile::new(1.0, 0.8, 24, 600.0).unwrap();
        let day = run_day(&m, &p, 0.5).unwrap();
        assert_eq!(day.slots.len(), 24);
        assert_eq!(day.violations, 0);
        assert!(day.energy_j > 0.0);
        let sum: f64 = day.slots.iter().map(|s| s.energy_j).sum();
        assert!((sum - day.energy_j).abs() < 1e-9);
        // The policy switches with load: both menu entries get used.
        let used: std::collections::HashSet<usize> = day.slots.iter().map(|s| s.choice).collect();
        assert!(used.contains(&0) && used.contains(&1), "{used:?}");
    }

    #[test]
    fn richer_menu_never_costs_more() {
        // A menu that is a superset can only do better or equal.
        let small = vec![menu()[0].clone()];
        let big = menu();
        let p = DiurnalProfile::new(1.0, 0.6, 24, 600.0).unwrap();
        let day_small = run_day(&small, &p, 0.5).unwrap();
        let day_big = run_day(&big, &p, 0.5).unwrap();
        assert!(day_big.energy_j <= day_small.energy_j + 1e-9);
        assert!(day_big.violations <= day_small.violations);
    }

    fn resilient_menu() -> Vec<ResilientChoice> {
        // Degraded service times: the fast entry barely degrades (big
        // cluster), the cheap one doubles (a one-node loss hurts).
        vec![
            ResilientChoice {
                nominal: menu()[0].clone(),
                degraded_service_s: 0.030,
                degraded_job_energy_j: 22.0,
            },
            ResilientChoice {
                nominal: menu()[1].clone(),
                degraded_service_s: 0.80,
                degraded_job_energy_j: 8.0,
            },
        ]
    }

    #[test]
    fn resilient_choice_provisions_against_degraded_service() {
        let m = resilient_menu();
        // At an SLO of 1.5 s both degraded queues are fine at low λ (the
        // cheap entry's degraded response is ≈ 1.07 s): the cheap entry
        // still wins, and energy is the nominal one.
        let (idx, e, _, violated) = best_choice_resilient(&m, 0.5, 3600.0, 1.5)
            .unwrap()
            .unwrap();
        assert_eq!(idx, 1);
        assert!(!violated);
        let (nidx, ne, _, _) = best_choice(&menu(), 0.5, 3600.0, 1.5).unwrap().unwrap();
        assert_eq!(nidx, 1);
        assert!((e - ne).abs() < 1e-9, "resilient energy must be nominal");

        // An SLO of 0.9 s passes nominally for the cheap entry but fails
        // after a failure (degraded response > 0.9): the resilient policy
        // must pay for the fast entry where the naive one would not.
        let (idx, _, _, violated) = best_choice_resilient(&m, 1.1, 3600.0, 0.9)
            .unwrap()
            .unwrap();
        assert_eq!(idx, 0);
        assert!(!violated);
        let (nidx, _, _, _) = best_choice(&menu(), 1.1, 3600.0, 0.9).unwrap().unwrap();
        assert_eq!(nidx, 1, "nominal policy is happy with the cheap entry");

        // Whole-day: provisioning for failures can only cost more energy.
        let p = DiurnalProfile::new(1.0, 0.6, 24, 600.0).unwrap();
        let naive = run_day(&menu(), &p, 0.5).unwrap();
        let resilient = run_day_resilient(&m, &p, 0.5).unwrap();
        assert!(resilient.energy_j >= naive.energy_j - 1e-9);
        assert_eq!(resilient.violations, 0);
    }

    #[test]
    fn resilient_fallback_prefers_surviving_entries() {
        // λ saturates the cheap entry's degraded queue (1/0.8 = 1.25) but
        // not its nominal one; SLO impossible for everyone. The fallback
        // must rank the fast entry first (finite degraded response).
        let m = resilient_menu();
        let (idx, _, _, violated) = best_choice_resilient(&m, 2.0, 3600.0, 1e-4)
            .unwrap()
            .unwrap();
        assert_eq!(idx, 0);
        assert!(violated);
    }

    fn quick_des() -> TailDesConfig {
        TailDesConfig {
            coarse_requests: 5_000,
            exact_requests: 20_000,
            ..TailDesConfig::default()
        }
    }

    #[test]
    fn tail_choice_prefers_cheap_when_deadline_is_loose() {
        let m = menu();
        // λ = 1, p99 ≤ 2 s: the cheap entry (ρ = 0.4) has plenty of room.
        let out = best_choice_tail(
            &m,
            1.0,
            3600.0,
            TailTarget::new(0.99, 2.0).unwrap(),
            &quick_des(),
        )
        .unwrap()
        .unwrap();
        assert_eq!(out.index, 1);
        assert!(!out.violated);
        assert!(out.tail_response_s <= 2.0, "tail {}", out.tail_response_s);
        // The DES-confirmed tail sits above the analytic mean.
        assert!(out.tail_response_s >= out.mean_response_s);
    }

    #[test]
    fn tail_choice_screens_analytically_before_simulating() {
        let m = menu();
        // p99 ≤ 50 ms: the cheap entry's *mean* response (≈ 533 ms at
        // λ = 1) already misses, so it must be rejected with zero DES
        // runs; only the fast entry gets simulated.
        let out = best_choice_tail(
            &m,
            1.0,
            3600.0,
            TailTarget::new(0.99, 0.05).unwrap(),
            &quick_des(),
        )
        .unwrap()
        .unwrap();
        assert_eq!(out.index, 0);
        assert!(!out.violated);
        assert_eq!(out.screened_out, 1, "cheap entry screened analytically");
        assert_eq!(out.des_runs, 2, "one coarse + one exact for the fast entry");
    }

    #[test]
    fn tail_choice_falls_back_and_flags_violation() {
        let m = menu();
        // p99 ≤ 1 ms is impossible (fast service alone is 25 ms): the
        // fastest entry comes back flagged.
        let out = best_choice_tail(
            &m,
            0.5,
            3600.0,
            TailTarget::new(0.99, 0.001).unwrap(),
            &quick_des(),
        )
        .unwrap()
        .unwrap();
        assert_eq!(out.index, 0);
        assert!(out.violated);
        assert!(out.tail_response_s > 0.001);
        // Saturated everywhere: nothing to pick.
        assert!(best_choice_tail(
            &m,
            1000.0,
            3600.0,
            TailTarget::new(0.99, 1.0).unwrap(),
            &quick_des(),
        )
        .unwrap()
        .is_none());
    }

    #[test]
    fn tail_choice_is_deterministic() {
        let m = menu();
        let run = || {
            best_choice_tail(
                &m,
                1.2,
                3600.0,
                TailTarget::new(0.99, 1.5).unwrap(),
                &quick_des(),
            )
            .unwrap()
            .unwrap()
        };
        assert_eq!(run(), run(), "same seed must replay bit-for-bit");
    }

    #[test]
    fn tail_choice_rejects_bad_inputs() {
        let m = menu();
        assert!(TailTarget::new(0.0, 1.0).is_err());
        assert!(TailTarget::new(1.0, 1.0).is_err());
        assert!(TailTarget::new(0.99, f64::NAN).is_err());
        let t = TailTarget::new(0.99, 1.0).unwrap();
        assert!(best_choice_tail(&m, f64::NAN, 3600.0, t, &quick_des()).is_err());
        let bad = TailDesConfig {
            coarse_requests: 0,
            ..quick_des()
        };
        assert!(best_choice_tail(&m, 1.0, 3600.0, t, &bad).is_err());
    }

    #[test]
    fn saturation_and_feasibility() {
        let m = menu();
        assert!((saturation_lambda(&m) - 40.0).abs() < 1e-9);
        assert!(feasible(&m, 1.0, 0.5));
        assert!(!feasible(&m, 100.0, 0.5));
    }
}
