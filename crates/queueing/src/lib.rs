//! # hecmix-queueing — job arrivals and waiting time (§IV-E)
//!
//! The paper extends its Pareto analysis to a datacenter receiving a
//! *stream* of jobs: arrivals are Poisson (exponential inter-arrival with
//! rate `λ_job`), each job's service time is fixed by the chosen cluster
//! configuration (deterministic service — the mix-and-match schedule), and
//! jobs queue FIFO at a dispatcher. That is an **M/D/1** queue with
//! utilization `U = T·λ_job`.
//!
//! This crate provides:
//!
//! * [`MD1`] — the analytical model (Pollaczek–Khinchine mean waiting
//!   time), plus [`MM1`] for comparison;
//! * [`simulate_md1`] — a discrete-event simulation of the same queue that
//!   cross-validates the closed forms;
//! * [`window_energy`] — the paper's observation-window energy accounting
//!   (Fig. 10): over a 20 s window, jobs × per-job energy plus the idle
//!   energy of the configuration's nodes between jobs, with unused nodes
//!   switched off.

// `!(x > 0.0)` deliberately rejects NaN along with non-positive values;
// rewriting with `partial_cmp` would hide that intent.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod des;
pub mod dispatch;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use hecmix_core::{Error, Result};

/// The M/D/1 queue: Poisson arrivals at rate `lambda`, deterministic
/// service time `service_s`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MD1 {
    /// Job arrival rate, jobs/second.
    pub lambda: f64,
    /// Deterministic service time per job, seconds.
    pub service_s: f64,
}

impl MD1 {
    /// Construct and validate (`lambda`, `service_s` positive).
    pub fn new(lambda: f64, service_s: f64) -> Result<Self> {
        if !(lambda > 0.0) || !lambda.is_finite() || !(service_s > 0.0) || !service_s.is_finite() {
            return Err(Error::InvalidInput(format!(
                "MD1 needs positive finite lambda and service time, got λ={lambda}, T={service_s}"
            )));
        }
        Ok(Self { lambda, service_s })
    }

    /// Server utilization `ρ = λ·T` (the paper's `U = T·λ_job`).
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.lambda * self.service_s
    }

    /// Mean waiting time in queue (Pollaczek–Khinchine for deterministic
    /// service): `W_q = ρ·T / (2(1 − ρ))`. Errors at or beyond saturation.
    pub fn mean_wait_s(&self) -> Result<f64> {
        let rho = self.utilization();
        if rho >= 1.0 {
            return Err(Error::Saturated { utilization: rho });
        }
        Ok(rho * self.service_s / (2.0 * (1.0 - rho)))
    }

    /// Mean response time per job: `R = T + W_q`.
    pub fn mean_response_s(&self) -> Result<f64> {
        Ok(self.service_s + self.mean_wait_s()?)
    }

    /// Mean number of jobs in the system (Little's law: `L = λ·R`).
    pub fn mean_jobs_in_system(&self) -> Result<f64> {
        Ok(self.lambda * self.mean_response_s()?)
    }

    /// Waiting-time distribution `P(W ≤ t)` of the M/D/1 queue
    /// (Erlang's classical result):
    ///
    /// `F_W(t) = (1 − ρ) · Σ_{k=0}^{⌊t/D⌋} (λ(kD − t))^k / k! · e^{−λ(kD − t)}`
    ///
    /// where `D` is the deterministic service time. `F_W(0) = 1 − ρ` (an
    /// arriving job waits zero with the probability the server is idle).
    /// Errors at or beyond saturation, where no stationary distribution
    /// exists.
    pub fn wait_cdf(&self, t: f64) -> Result<f64> {
        let rho = self.utilization();
        if rho >= 1.0 {
            return Err(Error::Saturated { utilization: rho });
        }
        if !t.is_finite() {
            return Err(Error::InvalidInput(format!(
                "wait_cdf needs a finite t, got {t}"
            )));
        }
        if t < 0.0 {
            return Ok(0.0);
        }
        let d = self.service_s;
        let kmax = (t / d).floor() as u64;
        let mut sum = 0.0f64;
        let mut max_term = 0.0f64;
        for k in 0..=kmax {
            // x = λ(kD − t) ≤ 0: build x^k/k!·e^{−x} by repeated
            // multiplication so the factorial never overflows.
            let x = self.lambda * (k as f64 * d - t);
            let mut term = (-x).exp();
            for j in 1..=k {
                term *= x / j as f64;
            }
            sum += term;
            max_term = max_term.max(term.abs());
        }
        if !sum.is_finite() {
            // λt is large enough that e^{λt} overflows; the true CDF is 1
            // to double precision well before that point.
            return Ok(1.0);
        }
        let f = ((1.0 - rho) * sum).clamp(0.0, 1.0);
        // The series alternates with terms up to e^{λt} that cancel down
        // to a value in [0, 1]: once the true tail 1 − F drops under the
        // cancellation noise, pin the CDF to exactly 1 so it stays
        // monotone instead of jittering at the noise floor.
        let noise = (1.0 - rho) * max_term * (kmax + 1) as f64 * f64::EPSILON;
        if 1.0 - f <= 8.0 * noise {
            return Ok(1.0);
        }
        Ok(f)
    }

    /// Quantile of the *waiting* time: smallest `t` with `P(W ≤ t) ≥ q`,
    /// found by bisection on [`Self::wait_cdf`]. `q` must lie in `(0, 1)`.
    pub fn wait_quantile(&self, q: f64) -> Result<f64> {
        if !(q > 0.0) || !(q < 1.0) {
            return Err(Error::InvalidInput(format!(
                "wait_quantile needs q in (0, 1), got {q}"
            )));
        }
        let rho = self.utilization();
        if rho >= 1.0 {
            return Err(Error::Saturated { utilization: rho });
        }
        if q <= 1.0 - rho {
            return Ok(0.0); // mass at zero covers this quantile
        }
        // Bracket: the wait CDF approaches 1 geometrically, so doubling
        // from one service time up finds an upper bound quickly.
        let mut hi = self.service_s;
        while self.wait_cdf(hi)? < q {
            hi *= 2.0;
            if hi > 1e6 * self.service_s {
                return Err(Error::InvalidInput(format!(
                    "wait_quantile failed to bracket q={q} at ρ={rho}"
                )));
            }
        }
        let mut lo = 0.0f64;
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.wait_cdf(mid)? >= q {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Ok(0.5 * (lo + hi))
    }

    /// Quantile of the *response* time (wait + deterministic service).
    pub fn response_quantile(&self, q: f64) -> Result<f64> {
        Ok(self.wait_quantile(q)? + self.service_s)
    }
}

/// The M/M/1 queue (exponential service) — included for comparison; its
/// wait is exactly twice the M/D/1 wait at the same utilization.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MM1 {
    /// Job arrival rate, jobs/second.
    pub lambda: f64,
    /// Mean service time, seconds.
    pub service_s: f64,
}

impl MM1 {
    /// Server utilization.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.lambda * self.service_s
    }

    /// Mean waiting time `W_q = ρ·T/(1 − ρ)`.
    pub fn mean_wait_s(&self) -> Result<f64> {
        let rho = self.utilization();
        if rho >= 1.0 {
            return Err(Error::Saturated { utilization: rho });
        }
        Ok(rho * self.service_s / (1.0 - rho))
    }
}

/// The M/G/1 queue: Poisson arrivals, generally distributed service with
/// mean `service_s` and squared coefficient of variation `scv`
/// (`Var[S]/E[S]²`). `scv = 0` recovers M/D/1, `scv = 1` recovers M/M/1 —
/// the full Pollaczek–Khinchine formula. Useful because the simulated
/// cluster's per-job service times carry real run-to-run variance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MG1 {
    /// Job arrival rate, jobs/second.
    pub lambda: f64,
    /// Mean service time, seconds.
    pub service_s: f64,
    /// Squared coefficient of variation of the service time.
    pub scv: f64,
}

impl MG1 {
    /// Construct and validate.
    pub fn new(lambda: f64, service_s: f64, scv: f64) -> Result<Self> {
        if !(lambda > 0.0)
            || !lambda.is_finite()
            || !(service_s > 0.0)
            || !service_s.is_finite()
            || !(scv >= 0.0)
            || !scv.is_finite()
        {
            return Err(Error::InvalidInput(format!(
                "MG1 needs positive finite λ and E[S] and non-negative SCV, got λ={lambda}, T={service_s}, scv={scv}"
            )));
        }
        Ok(Self {
            lambda,
            service_s,
            scv,
        })
    }

    /// Server utilization `ρ = λ·E[S]`.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.lambda * self.service_s
    }

    /// Pollaczek–Khinchine mean wait:
    /// `W_q = ρ·E[S]·(1 + scv) / (2(1 − ρ))`.
    pub fn mean_wait_s(&self) -> Result<f64> {
        let rho = self.utilization();
        if rho >= 1.0 {
            return Err(Error::Saturated { utilization: rho });
        }
        Ok(rho * self.service_s * (1.0 + self.scv) / (2.0 * (1.0 - rho)))
    }

    /// Mean response time `R = E[S] + W_q`.
    pub fn mean_response_s(&self) -> Result<f64> {
        Ok(self.service_s + self.mean_wait_s()?)
    }
}

/// Statistics from the discrete-event M/D/1 simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimStats {
    /// Jobs completed.
    pub jobs: u64,
    /// Mean waiting time in queue, seconds.
    pub mean_wait_s: f64,
    /// Mean response time, seconds.
    pub mean_response_s: f64,
    /// Fraction of time the server was busy.
    pub utilization: f64,
}

/// Discrete-event simulation of an M/D/1 queue: `n_jobs` Poisson arrivals,
/// FIFO service. Used to cross-validate the Pollaczek–Khinchine formula.
///
/// Saturated rates (`ρ ≥ 1`) are allowed — a finite-horizon transient is
/// well-defined even where no stationary distribution exists — but
/// non-finite or non-positive `lambda`/`service_s` and `n_jobs == 0` are
/// rejected with [`Error::InvalidInput`].
pub fn simulate_md1(lambda: f64, service_s: f64, n_jobs: u64, seed: u64) -> Result<SimStats> {
    if !(lambda > 0.0)
        || !lambda.is_finite()
        || !(service_s > 0.0)
        || !service_s.is_finite()
        || n_jobs == 0
    {
        return Err(Error::InvalidInput(format!(
            "simulate_md1 needs positive finite lambda/service and n_jobs >= 1, \
             got λ={lambda}, T={service_s}, n_jobs={n_jobs}"
        )));
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut clock = 0.0f64; // arrival clock
    let mut server_free_at = 0.0f64;
    let mut total_wait = 0.0f64;
    let mut busy = 0.0f64;
    let mut last_departure = 0.0f64;
    for _ in 0..n_jobs {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        clock += -u.ln() / lambda; // exponential inter-arrival
        let start = clock.max(server_free_at);
        total_wait += start - clock;
        server_free_at = start + service_s;
        busy += service_s;
        last_departure = server_free_at;
    }
    let jobs = n_jobs;
    Ok(SimStats {
        jobs,
        mean_wait_s: total_wait / jobs as f64,
        mean_response_s: total_wait / jobs as f64 + service_s,
        utilization: busy / last_departure,
    })
}

/// Energy of one configuration over an observation window (Fig. 10):
/// per-job energy times the jobs served, plus the *idle* energy of the
/// configuration's powered nodes between jobs. Nodes not in the
/// configuration are switched off and contribute nothing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WindowEnergy {
    /// Window length, seconds.
    pub window_s: f64,
    /// Jobs served in the window (`λ·L`).
    pub jobs: f64,
    /// Energy spent actively servicing jobs, joules.
    pub busy_energy_j: f64,
    /// Idle energy of powered nodes between jobs, joules.
    pub idle_energy_j: f64,
    /// Mean response time per job (service + queueing wait), seconds.
    pub response_s: f64,
    /// Utilization `ρ`.
    pub utilization: f64,
}

impl WindowEnergy {
    /// Total window energy.
    #[must_use]
    pub fn total_j(&self) -> f64 {
        self.busy_energy_j + self.idle_energy_j
    }
}

/// Evaluate the window energy of a configuration with per-job service time
/// `service_s`, per-job energy `job_energy_j` (which already includes the
/// nodes' idle floor *during* service), and total idle power
/// `idle_power_w` of the powered nodes, under Poisson arrivals `lambda`
/// over `window_s` seconds.
///
/// The window must be finite and positive, and energy/power finite and
/// non-negative: a zero-length or infinite window, or a NaN parameter,
/// would otherwise leak into the accounting as NaN (e.g.
/// `0 W · ∞ s · (1 − ρ)`) or negative idle energy.
pub fn window_energy(
    lambda: f64,
    window_s: f64,
    service_s: f64,
    job_energy_j: f64,
    idle_power_w: f64,
) -> Result<WindowEnergy> {
    if !(window_s > 0.0)
        || !window_s.is_finite()
        || !(job_energy_j >= 0.0)
        || !job_energy_j.is_finite()
        || !(idle_power_w >= 0.0)
        || !idle_power_w.is_finite()
    {
        return Err(Error::InvalidInput(format!(
            "window_energy needs a finite positive window and finite non-negative \
             energy/power, got window_s={window_s}, job_energy_j={job_energy_j}, \
             idle_power_w={idle_power_w}"
        )));
    }
    let q = MD1::new(lambda, service_s)?;
    let rho = q.utilization();
    if rho >= 1.0 {
        return Err(Error::Saturated { utilization: rho });
    }
    let jobs = lambda * window_s;
    let busy_energy_j = jobs * job_energy_j;
    let idle_energy_j = idle_power_w * window_s * (1.0 - rho);
    Ok(WindowEnergy {
        window_s,
        jobs,
        busy_energy_j,
        idle_energy_j,
        response_s: q.mean_response_s()?,
        utilization: rho,
    })
}

/// Cluster-sleep capability of a configuration's powered nodes: during
/// idle gaps longer than `residency_s` the whole cluster's power domains
/// drop to `sleep_power_w` instead of the always-on idle floor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SleepPolicy {
    /// Floor power of the slept configuration, watts. Must not exceed the
    /// configuration's idle power.
    pub sleep_power_w: f64,
    /// Minimum idle-gap length for the deep state to pay off, seconds.
    pub residency_s: f64,
}

/// [`window_energy`] with cluster sleep: idle gaps of the M/D/1 server are
/// exponential with rate `λ` (PASTA: a gap ends at the next arrival), so
/// of the total idle time `L·(1−ρ)` the expected share spent *past* the
/// residency horizon is `e^{−λ·residency}`:
///
/// ```text
/// sleepable = L·(1−ρ)·e^{−λ·r}
/// idle_energy = idle_w·(L·(1−ρ) − sleepable) + sleep_w·sleepable
/// ```
///
/// (Derivation: gaps start at rate `λ·(1−ρ)` per second and each gap
/// `G ~ Exp(λ)` contributes `E[max(G−r, 0)] = e^{−λr}/λ` of deep-sleep
/// time, giving `L·λ(1−ρ)·e^{−λr}/λ`.) With `r = 0` every idle second is
/// sleepable; as `λ` grows the gaps shorten and the credit vanishes —
/// cluster sleep is a trough phenomenon, which is exactly when diurnal
/// dispatch wants to park whole clusters.
///
/// # Errors
/// Same domain errors as [`window_energy`], plus [`Error::InvalidInput`]
/// for a non-finite/negative sleep policy or `sleep_power_w` above the
/// configuration's idle power.
pub fn window_energy_sleep(
    lambda: f64,
    window_s: f64,
    service_s: f64,
    job_energy_j: f64,
    idle_power_w: f64,
    sleep: &SleepPolicy,
) -> Result<WindowEnergy> {
    if !sleep.sleep_power_w.is_finite()
        || sleep.sleep_power_w < 0.0
        || sleep.sleep_power_w > idle_power_w
        || !sleep.residency_s.is_finite()
        || sleep.residency_s < 0.0
    {
        return Err(Error::InvalidInput(format!(
            "sleep policy needs finite 0 <= sleep_power_w <= idle_power_w and finite \
             non-negative residency, got sleep_power_w={}, residency_s={}, idle_power_w={}",
            sleep.sleep_power_w, sleep.residency_s, idle_power_w
        )));
    }
    let mut we = window_energy(lambda, window_s, service_s, job_energy_j, idle_power_w)?;
    let idle_s = window_s * (1.0 - we.utilization);
    let sleepable_s = idle_s * (-lambda * sleep.residency_s).exp();
    we.idle_energy_j = idle_power_w * (idle_s - sleepable_s) + sleep.sleep_power_w * sleepable_s;
    Ok(we)
}

/// Energy of one **known** idle gap under an optional sleep capability —
/// the per-gap (ex-post) counterpart of [`window_energy_sleep`]'s
/// expected-value slot pricing, shared with the `hecmix-sched` task
/// scheduler so a node timeline and a diurnal slot price the same deep
/// state identically: a gap at least `residency_s` long parks the whole
/// domain at `sleep_power_w` for the gap, a shorter one (or no policy)
/// idles at `idle_w`. Mirrors the simulator's domain-sleep credit (a
/// residency-length gap earns the deep floor, DESIGN §15).
///
/// Non-positive or non-finite gaps price to zero rather than erroring —
/// callers fold over timelines where an empty gap is routine.
#[must_use]
pub fn idle_gap_energy_j(gap_s: f64, idle_w: f64, sleep: Option<&SleepPolicy>) -> f64 {
    if !(gap_s > 0.0) || !gap_s.is_finite() {
        return 0.0;
    }
    match sleep {
        Some(p) if gap_s >= p.residency_s => p.sleep_power_w * gap_s,
        _ => idle_w * gap_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn md1_known_values() {
        // ρ = 0.5: W_q = 0.5·T/(2·0.5) = T/2.
        let q = MD1::new(5.0, 0.1).unwrap();
        assert!((q.utilization() - 0.5).abs() < 1e-12);
        assert!((q.mean_wait_s().unwrap() - 0.05).abs() < 1e-12);
        assert!((q.mean_response_s().unwrap() - 0.15).abs() < 1e-12);
        // Little's law.
        assert!((q.mean_jobs_in_system().unwrap() - 5.0 * 0.15).abs() < 1e-12);
    }

    #[test]
    fn md1_wait_is_half_of_mm1() {
        let lambda = 3.0;
        let t = 0.2;
        let md1 = MD1::new(lambda, t).unwrap();
        let mm1 = MM1 {
            lambda,
            service_s: t,
        };
        let wd = md1.mean_wait_s().unwrap();
        let wm = mm1.mean_wait_s().unwrap();
        assert!((wm / wd - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mg1_interpolates_md1_and_mm1() {
        let (lambda, t) = (4.0, 0.1);
        let md1 = MD1::new(lambda, t).unwrap().mean_wait_s().unwrap();
        let mm1 = MM1 {
            lambda,
            service_s: t,
        }
        .mean_wait_s()
        .unwrap();
        let g0 = MG1::new(lambda, t, 0.0).unwrap().mean_wait_s().unwrap();
        let g1 = MG1::new(lambda, t, 1.0).unwrap().mean_wait_s().unwrap();
        assert!((g0 - md1).abs() < 1e-12, "scv=0 must equal M/D/1");
        assert!((g1 - mm1).abs() < 1e-12, "scv=1 must equal M/M/1");
        // Monotone in variance.
        let g_half = MG1::new(lambda, t, 0.5).unwrap().mean_wait_s().unwrap();
        assert!(md1 < g_half && g_half < mm1);
        // Domain checks.
        assert!(MG1::new(lambda, t, -0.1).is_err());
        assert!(MG1::new(20.0, t, 0.5).unwrap().mean_wait_s().is_err());
    }

    #[test]
    fn saturation_rejected() {
        let q = MD1::new(10.0, 0.1).unwrap(); // ρ = 1
        assert!(matches!(q.mean_wait_s(), Err(Error::Saturated { .. })));
        let q = MD1::new(20.0, 0.1).unwrap(); // ρ = 2
        assert!(q.mean_response_s().is_err());
        assert!(MD1::new(0.0, 0.1).is_err());
        assert!(MD1::new(1.0, -0.1).is_err());
    }

    #[test]
    fn wait_diverges_near_saturation() {
        let t = 0.1;
        let w90 = MD1::new(9.0, t).unwrap().mean_wait_s().unwrap();
        let w99 = MD1::new(9.9, t).unwrap().mean_wait_s().unwrap();
        assert!(w99 > 10.0 * w90 / 2.0, "wait must blow up: {w90} -> {w99}");
    }

    #[test]
    fn simulation_matches_pollaczek_khinchine() {
        for rho in [0.05f64, 0.25, 0.5, 0.8] {
            let service = 0.01;
            let lambda = rho / service;
            let analytic = MD1::new(lambda, service).unwrap().mean_wait_s().unwrap();
            let sim = simulate_md1(lambda, service, 400_000, 42).unwrap();
            let rel = if analytic > 0.0 {
                (sim.mean_wait_s - analytic).abs() / analytic
            } else {
                sim.mean_wait_s
            };
            assert!(
                rel < 0.05,
                "ρ={rho}: sim {} vs analytic {analytic} (rel {rel})",
                sim.mean_wait_s
            );
            assert!((sim.utilization - rho).abs() < 0.05 * rho.max(0.1));
        }
    }

    #[test]
    fn mg1_rejects_non_finite_rate_and_service() {
        // Pre-fix regression: `f64::INFINITY > 0.0` passed the positivity
        // guard, so an infinite λ or E[S] produced NaN waits downstream.
        assert!(MG1::new(f64::INFINITY, 0.1, 0.5).is_err());
        assert!(MG1::new(1.0, f64::INFINITY, 0.5).is_err());
        assert!(MG1::new(f64::NAN, 0.1, 0.5).is_err());
        assert!(MG1::new(1.0, f64::NAN, 0.5).is_err());
        assert!(MG1::new(1.0, 0.1, 0.5).is_ok());
    }

    #[test]
    fn simulate_md1_rejects_degenerate_inputs() {
        // Pre-fix these were panicking `assert!`s, inconsistent with the
        // crate's fallible-input policy.
        assert!(matches!(
            simulate_md1(0.0, 0.1, 10, 1),
            Err(Error::InvalidInput(_))
        ));
        assert!(simulate_md1(-1.0, 0.1, 10, 1).is_err());
        assert!(simulate_md1(1.0, 0.0, 10, 1).is_err());
        assert!(simulate_md1(1.0, 0.1, 0, 1).is_err());
        assert!(simulate_md1(f64::NAN, 0.1, 10, 1).is_err());
        assert!(simulate_md1(1.0, f64::INFINITY, 10, 1).is_err());
    }

    #[test]
    fn simulate_md1_saturated_transient_is_finite() {
        // ρ ≥ 1 has no stationary distribution, but a finite-horizon run
        // is still well-defined: the queue just grows. The simulator must
        // return finite stats with utilization pinned near 1.
        let sim = simulate_md1(20.0, 0.1, 20_000, 7).unwrap(); // ρ = 2
        assert!(sim.mean_wait_s.is_finite() && sim.mean_wait_s > 0.0);
        assert!(sim.mean_response_s.is_finite());
        assert!((sim.utilization - 1.0).abs() < 0.05);
    }

    #[test]
    fn md1_wait_cdf_known_values() {
        let q = MD1::new(7.0, 0.1).unwrap(); // ρ = 0.7
        let rho = q.utilization();
        // Mass at zero is exactly 1 − ρ.
        assert!((q.wait_cdf(0.0).unwrap() - (1.0 - rho)).abs() < 1e-12);
        assert!(q.wait_cdf(-1.0).unwrap() == 0.0);
        // Monotone non-decreasing, approaching 1.
        let mut prev = 0.0;
        for i in 0..60 {
            let t = f64::from(i) * 0.05;
            let c = q.wait_cdf(t).unwrap();
            assert!(c >= prev - 1e-12, "CDF must be monotone at t={t}");
            prev = c;
        }
        assert!(prev > 0.999, "CDF must approach 1, got {prev}");
        // Mean of the distribution (numerical integral of the survival
        // function) must match Pollaczek–Khinchine.
        let dt = 1e-4;
        let mut mean = 0.0;
        let mut t = 0.0;
        while t < 3.0 {
            mean += (1.0 - q.wait_cdf(t).unwrap()) * dt;
            t += dt;
        }
        let pk = q.mean_wait_s().unwrap();
        assert!((mean - pk).abs() / pk < 0.01, "∫(1−F) = {mean} vs P-K {pk}");
    }

    #[test]
    fn md1_wait_quantile_inverts_cdf() {
        let q = MD1::new(7.0, 0.1).unwrap();
        for p in [0.5, 0.9, 0.99, 0.999] {
            let t = q.wait_quantile(p).unwrap();
            assert!((q.wait_cdf(t).unwrap() - p).abs() < 1e-6, "q={p}, t={t}");
        }
        // Quantiles inside the zero-wait mass are exactly zero.
        assert!(q.wait_quantile(0.1).unwrap() == 0.0);
        assert!(q.wait_quantile(0.0).is_err());
        assert!(q.wait_quantile(1.0).is_err());
        assert!(MD1::new(10.0, 0.1).unwrap().wait_quantile(0.9).is_err());
        // Response quantile adds the deterministic service time.
        let r = q.response_quantile(0.99).unwrap();
        assert!((r - q.wait_quantile(0.99).unwrap() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn window_energy_accounting() {
        // λ = 2 jobs/s, T = 0.1 s → ρ = 0.2. Window 20 s → 40 jobs.
        let w = window_energy(2.0, 20.0, 0.1, 5.0, 10.0).unwrap();
        assert!((w.jobs - 40.0).abs() < 1e-12);
        assert!((w.busy_energy_j - 200.0).abs() < 1e-12);
        // Idle: 10 W × 20 s × 0.8 = 160 J.
        assert!((w.idle_energy_j - 160.0).abs() < 1e-12);
        assert!((w.total_j() - 360.0).abs() < 1e-12);
        assert!((w.utilization - 0.2).abs() < 1e-12);
        assert!(w.response_s > 0.1);
    }

    #[test]
    fn window_energy_sleep_accounting() {
        // Same slot as `window_energy_accounting`: λ = 2, T = 0.1, L = 20,
        // idle time 16 s. Zero residency sleeps through all of it.
        let sleep_all = SleepPolicy {
            sleep_power_w: 1.0,
            residency_s: 0.0,
        };
        let w = window_energy_sleep(2.0, 20.0, 0.1, 5.0, 10.0, &sleep_all).unwrap();
        assert!((w.busy_energy_j - 200.0).abs() < 1e-12);
        // All 16 idle seconds at 1 W instead of 10 W.
        assert!((w.idle_energy_j - 16.0).abs() < 1e-12);

        // With residency r: sleepable = 16·e^{−2r}.
        let sleep_r = SleepPolicy {
            sleep_power_w: 1.0,
            residency_s: 0.5,
        };
        let w = window_energy_sleep(2.0, 20.0, 0.1, 5.0, 10.0, &sleep_r).unwrap();
        let sleepable = 16.0 * (-2.0f64 * 0.5).exp();
        let expect = 10.0 * (16.0 - sleepable) + 1.0 * sleepable;
        assert!((w.idle_energy_j - expect).abs() < 1e-9);

        // Sleep never costs more than the always-on floor, and a sleep
        // power equal to the idle power changes nothing.
        let plain = window_energy(2.0, 20.0, 0.1, 5.0, 10.0).unwrap();
        assert!(w.idle_energy_j < plain.idle_energy_j);
        let noop = SleepPolicy {
            sleep_power_w: 10.0,
            residency_s: 0.0,
        };
        let w = window_energy_sleep(2.0, 20.0, 0.1, 5.0, 10.0, &noop).unwrap();
        assert!((w.idle_energy_j - plain.idle_energy_j).abs() < 1e-12);
    }

    #[test]
    fn window_energy_sleep_rejects_bad_policies() {
        let bad = SleepPolicy {
            sleep_power_w: 11.0, // above idle_power_w
            residency_s: 0.0,
        };
        assert!(window_energy_sleep(2.0, 20.0, 0.1, 5.0, 10.0, &bad).is_err());
        let bad = SleepPolicy {
            sleep_power_w: f64::NAN,
            residency_s: 0.0,
        };
        assert!(window_energy_sleep(2.0, 20.0, 0.1, 5.0, 10.0, &bad).is_err());
        let bad = SleepPolicy {
            sleep_power_w: 1.0,
            residency_s: -1.0,
        };
        assert!(window_energy_sleep(2.0, 20.0, 0.1, 5.0, 10.0, &bad).is_err());
    }

    #[test]
    fn window_energy_rejects_saturation_and_bad_inputs() {
        assert!(matches!(
            window_energy(20.0, 20.0, 0.1, 1.0, 1.0),
            Err(Error::Saturated { .. })
        ));
        assert!(window_energy(1.0, 0.0, 0.1, 1.0, 1.0).is_err());
        assert!(window_energy(1.0, 20.0, 0.1, -1.0, 1.0).is_err());
    }

    #[test]
    fn window_energy_rejects_non_finite_inputs() {
        // Pre-fix regressions: NaN energy/power passed the `< 0.0` guard
        // and an infinite window produced `0 W · ∞ s = NaN` idle energy.
        assert!(window_energy(1.0, f64::INFINITY, 0.1, 1.0, 0.0).is_err());
        assert!(window_energy(1.0, f64::NAN, 0.1, 1.0, 1.0).is_err());
        assert!(window_energy(1.0, 20.0, 0.1, f64::NAN, 1.0).is_err());
        assert!(window_energy(1.0, 20.0, 0.1, 1.0, f64::NAN).is_err());
        assert!(window_energy(1.0, 20.0, 0.1, f64::INFINITY, 1.0).is_err());
        assert!(window_energy(1.0, 20.0, 0.1, 1.0, f64::INFINITY).is_err());
    }

    #[test]
    fn window_energy_fractional_jobs_stay_non_negative() {
        // λ·L < 1 expected jobs: every component must still be finite and
        // non-negative (no negative idle energy from rounding tricks).
        let w = window_energy(0.01, 10.0, 0.1, 5.0, 2.0).unwrap();
        assert!((w.jobs - 0.1).abs() < 1e-12);
        assert!(w.busy_energy_j >= 0.0 && w.busy_energy_j.is_finite());
        assert!(w.idle_energy_j >= 0.0 && w.idle_energy_j.is_finite());
        assert!(w.total_j().is_finite() && w.total_j() >= 0.0);
    }

    #[test]
    fn higher_utilization_needs_faster_response_for_same_deadline() {
        // The paper's Observation 4 mechanism: at higher λ, the same
        // response-time deadline requires a shorter service time.
        let deadline = 0.2;
        let find_max_service = |lambda: f64| {
            // Bisection on service time such that response == deadline.
            let (mut lo, mut hi) = (1e-6, deadline);
            for _ in 0..100 {
                let mid = 0.5 * (lo + hi);
                let ok = MD1::new(lambda, mid)
                    .and_then(|q| q.mean_response_s())
                    .map(|r| r <= deadline)
                    .unwrap_or(false);
                if ok {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            lo
        };
        let t_slow = find_max_service(1.0);
        let t_fast = find_max_service(4.0);
        assert!(
            t_fast < t_slow,
            "higher arrival rate must force faster service: {t_fast} vs {t_slow}"
        );
    }

    proptest! {
        #[test]
        fn prop_wait_nonnegative_and_monotone_in_rho(
            lambda in 0.1f64..50.0,
            service in 0.001f64..0.019,
        ) {
            let q = MD1 { lambda, service_s: service };
            prop_assume!(q.utilization() < 0.99);
            let w = q.mean_wait_s().unwrap();
            prop_assert!(w >= 0.0);
            // Increasing λ increases the wait.
            let q2 = MD1 { lambda: lambda * 1.01, service_s: service };
            if q2.utilization() < 0.995 {
                prop_assert!(q2.mean_wait_s().unwrap() >= w);
            }
        }

        #[test]
        fn prop_window_energy_scales_with_window(
            lambda in 0.1f64..5.0,
            service in 0.001f64..0.1,
            energy in 0.1f64..100.0,
            idle in 0.0f64..100.0,
        ) {
            prop_assume!(lambda * service < 0.95);
            let a = window_energy(lambda, 10.0, service, energy, idle).unwrap();
            let b = window_energy(lambda, 20.0, service, energy, idle).unwrap();
            prop_assert!((b.total_j() - 2.0 * a.total_j()).abs() < 1e-9 * b.total_j().max(1.0));
            // Response time independent of window length.
            prop_assert!((a.response_s - b.response_s).abs() < 1e-12);
        }
    }
}
