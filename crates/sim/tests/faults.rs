//! Fault-injection acceptance tests: seeded crash runs are deterministic
//! (bit-identical), an empty schedule reproduces the plain cluster run
//! exactly, recovery is work-conserving, and each degradation mode
//! (straggler, NIC, power cap) bends the run the way it should.

use hecmix_sim::{
    reference_amd_arch, reference_arm_arch, run_cluster, run_cluster_faulted, run_node,
    run_node_faulted, ClusterSpec, FaultKind, FaultSchedule, NodeFault, NodeRunSpec,
    RecoveryPolicy, TypeAssignment, UnitDemand, WorkloadTrace,
};

fn demand() -> UnitDemand {
    UnitDemand {
        int_ops: 50.0,
        fp_ops: 20.0,
        simd_ops: 0.0,
        wide_mul_ops: 0.0,
        mem_ops: 10.0,
        llc_miss_rate: 0.01,
        branch_ops: 5.0,
        branch_miss_rate: 0.02,
        io_bytes: 200.0,
    }
}

/// Compute-bound variant: no NIC traffic, so cores (not the wire) are the
/// bottleneck and compute-side faults actually bite.
fn cpu_demand() -> UnitDemand {
    UnitDemand {
        io_bytes: 0.0,
        ..demand()
    }
}

/// A small heterogeneous cluster: 2 ARM + 1 AMD, split 2:1.
fn small_cluster(units: u64, seed: u64) -> ClusterSpec {
    let arm = reference_arm_arch();
    let amd = reference_amd_arch();
    ClusterSpec {
        trace: WorkloadTrace::batch("faulty", demand()),
        assignments: vec![
            TypeAssignment {
                arch: arm.clone(),
                nodes: 2,
                cores: 4,
                freq: arm.platform.fmax(),
                units: units / 3 * 2,
            },
            TypeAssignment {
                arch: amd.clone(),
                nodes: 1,
                cores: 6,
                freq: amd.platform.fmax(),
                units: units - units / 3 * 2,
            },
        ],
        seed,
    }
}

fn assert_bit_identical(
    a: &hecmix_sim::FaultedClusterMeasurement,
    b: &hecmix_sim::FaultedClusterMeasurement,
) {
    assert_eq!(a.duration_s.to_bits(), b.duration_s.to_bits());
    assert_eq!(a.measured_energy_j.to_bits(), b.measured_energy_j.to_bits());
    assert_eq!(a.true_energy_j.to_bits(), b.true_energy_j.to_bits());
    assert_eq!(a.completed_units.to_bits(), b.completed_units.to_bits());
    assert_eq!(a.abandoned_units, b.abandoned_units);
    assert_eq!(a.crashes.len(), b.crashes.len());
    for (ca, cb) in a.crashes.iter().zip(&b.crashes) {
        assert_eq!(ca.leftover_units, cb.leftover_units);
        assert_eq!(ca.lost_in_flight_units, cb.lost_in_flight_units);
        assert_eq!(ca.receivers, cb.receivers);
    }
    for (ta, tb) in a.per_type.iter().zip(&b.per_type) {
        assert_eq!(ta.duration_s.to_bits(), tb.duration_s.to_bits());
        assert_eq!(
            ta.measured_energy_j.to_bits(),
            tb.measured_energy_j.to_bits()
        );
        for (ca, cb) in ta.counters.cores.iter().zip(&tb.counters.cores) {
            assert_eq!(ca.cycles.to_bits(), cb.cycles.to_bits());
            assert_eq!(ca.instructions.to_bits(), cb.instructions.to_bits());
            assert_eq!(ca.units_done.to_bits(), cb.units_done.to_bits());
        }
    }
}

#[test]
fn empty_schedule_matches_plain_cluster_bit_for_bit() {
    let spec = small_cluster(24_000, 11);
    let plain = run_cluster(&spec);
    let faulted = run_cluster_faulted(&spec, &FaultSchedule::new(), &RecoveryPolicy::default());
    assert_eq!(plain.duration_s.to_bits(), faulted.duration_s.to_bits());
    assert_eq!(
        plain.measured_energy_j.to_bits(),
        faulted.measured_energy_j.to_bits()
    );
    assert_eq!(
        plain.true_energy_j.to_bits(),
        faulted.true_energy_j.to_bits()
    );
    assert!(faulted.crashes.is_empty());
    assert_eq!(faulted.abandoned_units, 0);
    for (pt, ft) in plain.per_type.iter().zip(&faulted.per_type) {
        assert_eq!(pt.duration_s.to_bits(), ft.duration_s.to_bits());
        assert_eq!(
            pt.measured_energy_j.to_bits(),
            ft.measured_energy_j.to_bits()
        );
        assert_eq!(pt.node_durations_s, ft.node_durations_s);
        for (pc, fc) in pt.counters.cores.iter().zip(&ft.counters.cores) {
            assert_eq!(pc.cycles.to_bits(), fc.cycles.to_bits());
            assert_eq!(pc.busy_s.to_bits(), fc.busy_s.to_bits());
        }
    }
}

#[test]
fn seeded_crash_run_is_deterministic() {
    let spec = small_cluster(24_000, 7);
    let nominal = run_cluster(&spec);
    let schedule = FaultSchedule::new().crash(0, 0, 0.4 * nominal.duration_s);
    let policy = RecoveryPolicy::default();
    let a = run_cluster_faulted(&spec, &schedule, &policy);
    let b = run_cluster_faulted(&spec, &schedule, &policy);
    assert_bit_identical(&a, &b);
    // The crash actually bit: something was redistributed.
    assert_eq!(a.crashes.len(), 1);
    assert!(a.crashes[0].leftover_units > 0, "crash should leave work");
    assert!(!a.crashes[0].receivers.is_empty());
}

#[test]
fn crash_recovery_conserves_work() {
    let mut spec = small_cluster(24_000, 3);
    // Compute-bound so cores are genuinely busy when the crash lands.
    spec.trace = WorkloadTrace::batch("faulty-cpu", cpu_demand());
    let total: u64 = spec.assignments.iter().map(|a| a.units).sum();
    let nominal = run_cluster(&spec);
    let schedule = FaultSchedule::new().crash(0, 1, 0.3 * nominal.duration_s);
    let m = run_cluster_faulted(&spec, &schedule, &RecoveryPolicy::default());
    assert_eq!(m.abandoned_units, 0);
    assert!(
        (m.completed_units - total as f64).abs() < 1e-6,
        "completed {} of {total} units",
        m.completed_units
    );
    // Redistribution extends the job past the nominal completion.
    assert!(m.duration_s > nominal.duration_s);
    // In-flight chunks were rolled back and re-delivered, not double-run.
    let redistributed: u64 = m.crashes[0].receivers.iter().map(|(_, _, u)| u).sum();
    assert_eq!(redistributed, m.crashes[0].leftover_units);
    assert!(
        m.crashes[0].lost_in_flight_units > 0,
        "cores were busy mid-run"
    );
    // Conservation law still holds on every merged core counter.
    for t in &m.per_type {
        for c in t.counters.cores.iter().filter(|c| c.instructions > 0.0) {
            assert!(c.is_conserved());
        }
    }
}

#[test]
fn straggler_stretches_the_run_and_keeps_counters_conserved() {
    let arch = reference_arm_arch();
    let trace = WorkloadTrace::batch("slowpoke", cpu_demand());
    let spec = NodeRunSpec::new(4, arch.platform.fmax(), 20_000, 5);
    let plain = run_node(&arch, &trace, &spec);
    let slow = run_node_faulted(
        &arch,
        &trace,
        &spec,
        &[NodeFault {
            at_s: 0.0,
            kind: FaultKind::Straggler { slowdown: 2.0 },
        }],
        &[],
    );
    let ratio = slow.work_end_s / plain.duration_s;
    assert!(
        (1.6..=2.4).contains(&ratio),
        "2x straggler should roughly double the run, got {ratio:.2}x"
    );
    assert!((slow.measurement.counters.units_done() - 20_000.0).abs() < 1e-6);
    for c in &slow.measurement.counters.cores {
        assert!(c.is_conserved(), "stretch cycles must land in stall time");
    }
    // The stretch burns stall energy: more total energy than the plain run.
    assert!(slow.measurement.energy.total_j() > plain.energy.total_j());
}

#[test]
fn nic_degradation_halves_wire_speed() {
    // NIC-bound node: a 100 kbps wire, so compute is negligible.
    let mut arch = reference_arm_arch();
    arch.platform.io_bandwidth_bps = 1e5;
    let trace = WorkloadTrace::batch("wire", demand());
    let spec = NodeRunSpec::new(2, arch.platform.fmax(), 500, 9);
    let plain = run_node(&arch, &trace, &spec);
    let degraded = run_node_faulted(
        &arch,
        &trace,
        &spec,
        &[NodeFault {
            at_s: 0.0,
            kind: FaultKind::NicDegrade {
                bandwidth_factor: 0.5,
            },
        }],
        &[],
    );
    let ratio = degraded.work_end_s / plain.duration_s;
    assert!(
        (1.8..=2.2).contains(&ratio),
        "half bandwidth should double a wire-bound run, got {ratio:.2}x"
    );
    assert!(
        (degraded.measurement.counters.io_bytes - 500.0 * 200.0).abs() < 1.0,
        "every byte still crosses the wire"
    );
}

#[test]
fn power_cap_slows_the_node_and_cuts_busy_power() {
    let arch = reference_arm_arch();
    let fmin = arch.platform.freqs[0];
    let trace = WorkloadTrace::batch("throttle", cpu_demand());
    let spec = NodeRunSpec::new(4, arch.platform.fmax(), 20_000, 13);
    let plain = run_node(&arch, &trace, &spec);
    let capped = run_node_faulted(
        &arch,
        &trace,
        &spec,
        &[NodeFault {
            at_s: 0.0,
            kind: FaultKind::PowerCap {
                max_freq_ghz: fmin.ghz(),
            },
        }],
        &[],
    );
    assert!(
        capped.work_end_s > plain.duration_s * 1.2,
        "cap to fmin must slow the run: {} vs {}",
        capped.work_end_s,
        plain.duration_s
    );
    // Busy power drops with the square-ish of frequency: mean active power
    // (excluding the idle floor, which scales with duration) must fall.
    let active = |e: &hecmix_sim::NodeMeasurement, t: f64| (e.energy.total_j()) / t;
    assert!(
        active(&capped.measurement, capped.work_end_s) < active(&plain, plain.duration_s),
        "capped node should draw less average power"
    );
}

#[test]
fn crash_after_completion_is_a_no_op() {
    let spec = small_cluster(6_000, 21);
    let nominal = run_cluster(&spec);
    let schedule = FaultSchedule::new().crash(1, 0, nominal.duration_s * 10.0);
    let m = run_cluster_faulted(&spec, &schedule, &RecoveryPolicy::default());
    assert_eq!(m.crashes.len(), 1);
    assert_eq!(m.crashes[0].leftover_units, 0);
    assert_eq!(m.abandoned_units, 0);
    assert_eq!(m.duration_s.to_bits(), nominal.duration_s.to_bits());
}

#[test]
fn losing_every_node_abandons_the_leftover() {
    let arm = reference_arm_arch();
    let spec = ClusterSpec {
        trace: WorkloadTrace::batch("wipeout", demand()),
        assignments: vec![TypeAssignment {
            arch: arm.clone(),
            nodes: 2,
            cores: 4,
            freq: arm.platform.fmax(),
            units: 40_000,
        }],
        seed: 2,
    };
    // Both nodes die almost immediately — before either redistribution
    // could land on the other.
    let schedule = FaultSchedule::new().crash(0, 0, 1e-3).crash(0, 1, 2e-3);
    let m = run_cluster_faulted(&spec, &schedule, &RecoveryPolicy::default());
    assert!(m.abandoned_units > 0, "no survivor can absorb the work");
    assert!(m.completed_units < 40_000.0);
    let leftover: u64 = m.crashes.iter().map(|c| c.abandoned_units).sum();
    assert_eq!(leftover, m.abandoned_units);
}

#[test]
fn cascading_crashes_re_redistribute_transitively() {
    let spec = small_cluster(24_000, 17);
    let nominal = run_cluster(&spec);
    // First crash redistributes; one of its receivers dies later and its
    // leftover (own + injected share) is redistributed again.
    let schedule = FaultSchedule::new()
        .crash(0, 0, 0.25 * nominal.duration_s)
        .crash(0, 1, 0.75 * nominal.duration_s);
    let m = run_cluster_faulted(&spec, &schedule, &RecoveryPolicy::default());
    let total: u64 = spec.assignments.iter().map(|a| a.units).sum();
    assert_eq!(m.abandoned_units, 0);
    assert!(
        (m.completed_units - total as f64).abs() < 1e-6,
        "cascade must still conserve work: {} of {total}",
        m.completed_units
    );
    assert_eq!(m.crashes.len(), 2);
    // The second crash must not have been picked as a receiver of the
    // first (it dies before the job ends, after redelivery would land on
    // it only if it crashed later than the redistribution instant).
    for c in &m.crashes {
        for &(t, i, _) in &c.receivers {
            assert!(!(t == 0 && i == 0), "receiver crashed before redelivery");
        }
    }
}

#[test]
fn random_crash_schedules_are_seed_deterministic() {
    let a = FaultSchedule::random_crashes(42, &[2, 1], 2, 10.0);
    let b = FaultSchedule::random_crashes(42, &[2, 1], 2, 10.0);
    assert_eq!(a, b);
    let c = FaultSchedule::random_crashes(43, &[2, 1], 2, 10.0);
    assert_ne!(a, c, "different seeds should draw different schedules");
    // Distinct nodes, times inside the window.
    let mut targets: Vec<(usize, u32)> =
        a.events.iter().map(|e| (e.type_idx, e.node_idx)).collect();
    targets.sort_unstable();
    targets.dedup();
    assert_eq!(targets.len(), 2);
    for e in &a.events {
        assert!(e.fault.at_s > 0.0 && e.fault.at_s < 10.0);
    }
}

#[test]
#[should_panic(expected = "absent from the spec")]
fn fault_on_missing_node_is_rejected() {
    let spec = small_cluster(1_000, 1);
    let schedule = FaultSchedule::new().crash(0, 5, 0.1);
    let _ = run_cluster_faulted(&spec, &schedule, &RecoveryPolicy::default());
}
