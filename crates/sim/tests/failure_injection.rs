//! Failure injection: drive the simulator with hostile parameters and
//! degenerate hardware, and check it either behaves sanely or rejects the
//! input loudly (DESIGN.md §7).

use hecmix_core::types::Frequency;
use hecmix_sim::{
    reference_amd_arch, reference_arm_arch, run_cluster, run_node, ClusterSpec, NodeRunSpec,
    TypeAssignment, UnitDemand, WorkloadTrace,
};

fn demand() -> UnitDemand {
    UnitDemand {
        int_ops: 50.0,
        fp_ops: 20.0,
        simd_ops: 0.0,
        wide_mul_ops: 0.0,
        mem_ops: 10.0,
        llc_miss_rate: 0.01,
        branch_ops: 5.0,
        branch_miss_rate: 0.02,
        io_bytes: 200.0,
    }
}

#[test]
fn hostile_noise_levels_still_terminate_and_stay_positive() {
    let mut arch = reference_arm_arch();
    arch.jitter_sigma = 0.5; // wild per-chunk swings
    arch.run_sigma = 0.5;
    arch.power.meter_sigma = 0.3;
    let trace = WorkloadTrace::batch("hostile", demand());
    for seed in 0..20 {
        let m = run_node(
            &arch,
            &trace,
            &NodeRunSpec::new(4, arch.platform.fmax(), 20_000, seed),
        );
        assert!(m.duration_s.is_finite() && m.duration_s > 0.0);
        assert!(m.measured_energy_j.is_finite() && m.measured_energy_j > 0.0);
        assert!((m.counters.units_done() - 20_000.0).abs() < 1e-6);
        assert!(m.counters.cores.iter().all(|c| c.is_conserved()));
    }
}

#[test]
fn crawling_nic_bounds_throughput_without_hanging() {
    // A 1 kbps NIC: the run must still finish (slowly), cores nearly idle.
    let mut arch = reference_arm_arch();
    arch.platform.io_bandwidth_bps = 1e3;
    let trace = WorkloadTrace::batch("slowwire", demand());
    let units = 50u64;
    let m = run_node(
        &arch,
        &trace,
        &NodeRunSpec::new(2, arch.platform.fmax(), units, 1),
    );
    let wire_s = units as f64 * 200.0 * 8.0 / 1e3;
    assert!(
        m.duration_s >= wire_s * 0.95,
        "{} vs wire {}",
        m.duration_s,
        wire_s
    );
    assert!(m.counters.cpu_utilization() < 0.05);
    assert!((m.counters.io_bytes - units as f64 * 200.0).abs() < 1.0);
}

#[test]
fn single_core_lowest_frequency_degenerate_node() {
    let arch = reference_arm_arch();
    let trace = WorkloadTrace::batch("tiny", demand());
    let m = run_node(
        &arch,
        &trace,
        &NodeRunSpec::new(1, Frequency::from_ghz(0.2), 1, 2),
    );
    assert!(m.duration_s > 0.0);
    assert!((m.counters.units_done() - 1.0).abs() < 1e-9);
    // One active core only.
    assert!(m.counters.cores[0].instructions > 0.0);
}

#[test]
fn chunk_override_extremes_agree() {
    // One giant chunk vs unit chunks: totals agree (timing differs only
    // through contention interleaving and jitter draws).
    let arch = reference_amd_arch();
    let mut trace = WorkloadTrace::batch("chunky", demand());
    trace.demand.io_bytes = 0.0;
    let units = 10_000u64;
    let mut one = NodeRunSpec::new(6, arch.platform.fmax(), units, 3);
    one.chunk_units = Some(units);
    let mut fine = NodeRunSpec::new(6, arch.platform.fmax(), units, 3);
    fine.chunk_units = Some(10);
    let a = run_node(&arch, &trace, &one);
    let b = run_node(&arch, &trace, &fine);
    assert!((a.counters.units_done() - b.counters.units_done()).abs() < 1e-9);
    let ia = a.counters.total().instructions;
    let ib = b.counters.total().instructions;
    assert!(
        (ia - ib).abs() < 1e-6 * ia,
        "instruction counts must not depend on chunking"
    );
    // Durations within jitter of each other (one chunk means a single
    // core does everything, so compare per-instruction cycle cost).
    let ca = a.counters.total().cycles / ia;
    let cb = b.counters.total().cycles / ib;
    assert!(
        (ca / cb - 1.0).abs() < 0.25,
        "per-instruction cycles {ca} vs {cb}"
    );
}

#[test]
fn zero_work_cluster_type_is_benign() {
    let arm = reference_arm_arch();
    let amd = reference_amd_arch();
    let m = run_cluster(&ClusterSpec {
        trace: WorkloadTrace::batch("skew", demand()),
        assignments: vec![
            TypeAssignment {
                arch: arm.clone(),
                nodes: 2,
                cores: 4,
                freq: arm.platform.fmax(),
                units: 5_000,
            },
            TypeAssignment {
                arch: amd.clone(),
                nodes: 2,
                cores: 6,
                freq: amd.platform.fmax(),
                // This type gets zero work: its nodes idle for the whole job.
                units: 0,
            },
        ],
        seed: 4,
    });
    assert!(m.duration_s > 0.0);
    // The idle type still burns its floor until the job completes.
    let amd_energy = m.per_type[1].measured_energy_j;
    let expect_idle = 2.0 * 45.0 * m.duration_s;
    assert!(
        (amd_energy - expect_idle).abs() < 0.05 * expect_idle,
        "idle AMD type energy {amd_energy} vs expected {expect_idle}"
    );
}

#[test]
#[should_panic(expected = "invalid workload demand")]
fn invalid_demand_rejected() {
    let arch = reference_arm_arch();
    let mut d = demand();
    d.llc_miss_rate = 2.0;
    let trace = WorkloadTrace::batch("bad", d);
    let _ = run_node(
        &arch,
        &trace,
        &NodeRunSpec::new(1, arch.platform.fmax(), 10, 0),
    );
}

#[test]
fn extreme_arrival_rates() {
    let arch = reference_arm_arch();
    let mut trace = WorkloadTrace::batch("paced", demand());
    // Absurdly fast arrivals behave like saturation.
    trace.arrivals = hecmix_sim::ArrivalProcess::Open {
        rate_per_node: 1e12,
    };
    let fast = run_node(
        &arch,
        &trace,
        &NodeRunSpec::new(4, arch.platform.fmax(), 5_000, 5),
    );
    let mut sat_trace = trace.clone();
    sat_trace.arrivals = hecmix_sim::ArrivalProcess::Saturated;
    let sat = run_node(
        &arch,
        &sat_trace,
        &NodeRunSpec::new(4, arch.platform.fmax(), 5_000, 5),
    );
    assert!((fast.duration_s / sat.duration_s - 1.0).abs() < 0.01);

    // Glacial arrivals: duration is the arrival window.
    trace.arrivals = hecmix_sim::ArrivalProcess::Open {
        rate_per_node: 100.0,
    };
    let slow = run_node(
        &arch,
        &trace,
        &NodeRunSpec::new(4, arch.platform.fmax(), 1_000, 5),
    );
    assert!(slow.duration_s >= 10.0 * 0.99, "{}", slow.duration_s);
    assert!(slow.counters.cpu_utilization() < 0.05);
}

#[test]
fn repeated_seeds_form_a_sane_distribution() {
    // 30 runs: durations spread a few percent, none pathological.
    let arch = reference_amd_arch();
    let trace = WorkloadTrace::batch("spread", demand());
    let durations: Vec<f64> = (0..30)
        .map(|s| {
            run_node(
                &arch,
                &trace,
                &NodeRunSpec::new(6, arch.platform.fmax(), 100_000, s),
            )
            .duration_s
        })
        .collect();
    let mean = durations.iter().sum::<f64>() / durations.len() as f64;
    for d in &durations {
        assert!(
            (d / mean - 1.0).abs() < 0.15,
            "outlier run: {d} vs mean {mean}"
        );
    }
    let distinct: std::collections::HashSet<u64> = durations.iter().map(|d| d.to_bits()).collect();
    assert!(distinct.len() > 25, "seeds should decorrelate runs");
}
