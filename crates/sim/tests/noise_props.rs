//! Property coverage for the deterministic noise source: split streams
//! must be reproducible under equal seeds (the substrate's determinism
//! guarantee rests on it) and decorrelated across salts (per-node streams
//! must not echo each other just because the nodes share a cluster seed).

use hecmix_sim::Noise;
use proptest::prelude::*;

/// Draw `n` factors from a fresh clone of `noise`.
fn stream(noise: &Noise, sigma: f64, n: usize) -> Vec<f64> {
    let mut src = noise.clone();
    (0..n).map(|_| src.factor(sigma)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn split_streams_deterministic_under_equal_seeds(
        seed in any::<u64>(),
        salt in any::<u64>(),
        sigma in 0.001f64..0.2,
    ) {
        let a = Noise::new(seed).split(salt);
        let b = Noise::new(seed).split(salt);
        prop_assert_eq!(stream(&a, sigma, 64), stream(&b, sigma, 64));
    }

    #[test]
    fn split_streams_decorrelated_across_salts(
        seed in any::<u64>(),
        salt_a in any::<u64>(),
        salt_offset in 1u64..1000,
        sigma in 0.01f64..0.2,
    ) {
        let salt_b = salt_a.wrapping_add(salt_offset);
        let base = Noise::new(seed);
        let xs = stream(&base.split(salt_a), sigma, 64);
        let ys = stream(&base.split(salt_b), sigma, 64);
        // Distinct salts must give distinct streams; a handful of equal
        // draws can occur by chance, wholesale agreement cannot.
        let same = xs.iter().zip(&ys).filter(|(x, y)| x == y).count();
        prop_assert!(same < 8, "salts {salt_a}/{salt_b}: {same}/64 draws equal");
    }

    #[test]
    fn factors_bounded_for_any_salt(
        seed in any::<u64>(),
        salt in any::<u64>(),
        sigma in 0.001f64..0.3,
    ) {
        let mut n = Noise::new(seed).split(salt);
        for _ in 0..64 {
            let f = n.factor(sigma);
            // Truncated at ±3σ and floored at 0.05, so times never go
            // negative or collapse.
            prop_assert!(f >= (1.0 - 3.0 * sigma).max(0.05) - 1e-12);
            prop_assert!(f <= 1.0 + 3.0 * sigma + 1e-12);
        }
    }
}
