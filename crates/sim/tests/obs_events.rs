//! Observability acceptance test (ISSUE 3): a faulted cluster run with the
//! JSONL sink installed must emit a crash/heartbeat/redistribution event
//! stream whose replayed work totals match the run's measurement exactly.
//!
//! The sink registry is process-global, so this binary holds exactly one
//! test: installing a sink from several `#[test]` functions in the same
//! process would race.

use std::sync::Arc;

use hecmix_sim::{
    reference_amd_arch, reference_arm_arch, run_cluster_faulted, ClusterSpec, FaultSchedule,
    RecoveryPolicy, TypeAssignment, UnitDemand, WorkloadTrace,
};

fn demand() -> UnitDemand {
    UnitDemand {
        int_ops: 50.0,
        fp_ops: 20.0,
        simd_ops: 0.0,
        wide_mul_ops: 0.0,
        mem_ops: 10.0,
        llc_miss_rate: 0.01,
        branch_ops: 5.0,
        branch_miss_rate: 0.02,
        io_bytes: 200.0,
    }
}

/// A small heterogeneous cluster: 2 ARM + 1 AMD, split 2:1.
fn small_cluster(units: u64, seed: u64) -> ClusterSpec {
    let arm = reference_arm_arch();
    let amd = reference_amd_arch();
    ClusterSpec {
        trace: WorkloadTrace::batch("faulty", demand()),
        assignments: vec![
            TypeAssignment {
                arch: arm.clone(),
                nodes: 2,
                cores: 4,
                freq: arm.platform.fmax(),
                units: units / 3 * 2,
            },
            TypeAssignment {
                arch: amd.clone(),
                nodes: 1,
                cores: 6,
                freq: amd.platform.fmax(),
                units: units - units / 3 * 2,
            },
        ],
        seed,
    }
}

/// Pull `"field":<number>` out of a single-line JSON record. Good enough
/// for the flat objects the sink writes; not a general parser.
fn num_field(line: &str, field: &str) -> f64 {
    let needle = format!("\"{field}\":");
    let at = line
        .find(&needle)
        .unwrap_or_else(|| panic!("field {field:?} missing from {line}"));
    let rest = &line[at + needle.len()..];
    let end = rest
        .find([',', '}'])
        .unwrap_or_else(|| panic!("unterminated field {field:?} in {line}"));
    rest[..end]
        .trim()
        .parse::<f64>()
        .unwrap_or_else(|e| panic!("field {field:?} in {line}: {e}"))
}

fn u64_field(line: &str, field: &str) -> u64 {
    let v = num_field(line, field);
    assert!(
        v.fract() == 0.0 && v >= 0.0,
        "field {field:?} not a u64: {v}"
    );
    v as u64
}

fn kind_of(line: &str) -> &str {
    let rest = line
        .strip_prefix("{\"kind\":\"")
        .unwrap_or_else(|| panic!("record does not start with a kind tag: {line}"));
    &rest[..rest.find('"').expect("unterminated kind tag")]
}

#[test]
fn jsonl_trace_of_faulted_run_replays_to_exact_totals() {
    let spec = small_cluster(24_000, 7);
    let total_units: u64 = spec.assignments.iter().map(|a| a.units).sum();
    // Two crashes: an ARM node mid-run and the lone AMD node later. The
    // second crash forces a redistribution onto a shrunken survivor set.
    let schedule = FaultSchedule::new().crash(0, 1, 0.010).crash(1, 0, 0.025);
    let policy = RecoveryPolicy::default();

    let trace_path =
        std::env::temp_dir().join(format!("hecmix-obs-events-{}.jsonl", std::process::id()));
    let sink = hecmix_obs::JsonlSink::create(&trace_path).expect("create JSONL sink");
    hecmix_obs::install(Arc::new(sink));
    let outcome = run_cluster_faulted(&spec, &schedule, &policy);
    // Dropping the installed sink flushes the writer.
    hecmix_obs::uninstall();

    let raw = std::fs::read_to_string(&trace_path).expect("read trace");
    std::fs::remove_file(&trace_path).ok();
    let lines: Vec<&str> = raw.lines().collect();
    assert!(!lines.is_empty(), "trace is empty");
    for line in &lines {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "not a JSON object line: {line}"
        );
    }

    // Exactly one run-start and one run-end, in order, and they bracket
    // the fault lifecycle events.
    let starts: Vec<&&str> = lines
        .iter()
        .filter(|l| kind_of(l) == "faulted_run_start")
        .collect();
    let ends: Vec<&&str> = lines
        .iter()
        .filter(|l| kind_of(l) == "faulted_run_end")
        .collect();
    assert_eq!(starts.len(), 1, "want one faulted_run_start");
    assert_eq!(ends.len(), 1, "want one faulted_run_end");
    assert_eq!(u64_field(starts[0], "total_units"), total_units);
    assert_eq!(u64_field(starts[0], "crashes"), 2);

    // Per-crash lifecycle: each CrashRecord appears as a crash +
    // heartbeat_timeout + redistribution triple with matching identity and
    // conserved work: moved + abandoned == leftover.
    let crashes: Vec<&&str> = lines.iter().filter(|l| kind_of(l) == "crash").collect();
    let detections: Vec<&&str> = lines
        .iter()
        .filter(|l| kind_of(l) == "heartbeat_timeout")
        .collect();
    let redists: Vec<&&str> = lines
        .iter()
        .filter(|l| kind_of(l) == "redistribution")
        .collect();
    assert_eq!(crashes.len(), outcome.crashes.len());
    assert_eq!(detections.len(), outcome.crashes.len());
    assert_eq!(redists.len(), outcome.crashes.len());
    for (i, rec) in outcome.crashes.iter().enumerate() {
        assert_eq!(u64_field(crashes[i], "type_idx") as usize, rec.type_idx);
        assert_eq!(u64_field(crashes[i], "node_idx"), u64::from(rec.node_idx));
        assert_eq!(u64_field(crashes[i], "leftover_units"), rec.leftover_units);
        assert_eq!(
            u64_field(crashes[i], "lost_in_flight_units"),
            rec.lost_in_flight_units
        );
        assert_eq!(
            u64_field(detections[i], "node_idx"),
            u64::from(rec.node_idx)
        );
        assert!(num_field(detections[i], "detected_s") >= num_field(crashes[i], "crash_s"));
        let moved = u64_field(redists[i], "moved_units");
        let abandoned = u64_field(redists[i], "abandoned_units");
        assert_eq!(moved, rec.receivers.iter().map(|r| r.2).sum::<u64>());
        assert_eq!(abandoned, rec.abandoned_units);
        assert_eq!(
            moved + abandoned,
            rec.leftover_units,
            "crash {i}: redistribution does not conserve the leftover work"
        );
    }

    // Per-receiver shares sum to the moved totals.
    let share_total: u64 = lines
        .iter()
        .filter(|l| kind_of(l) == "redistribution_share")
        .map(|l| u64_field(l, "units"))
        .sum();
    let moved_total: u64 = redists.iter().map(|l| u64_field(l, "moved_units")).sum();
    assert_eq!(share_total, moved_total);

    // Replaying the trace reproduces the run's outcome exactly: completed
    // work is the initial total minus everything the trace abandoned.
    let abandoned_total: u64 = redists
        .iter()
        .map(|l| u64_field(l, "abandoned_units"))
        .sum();
    assert_eq!(abandoned_total, outcome.abandoned_units);
    let end = ends[0];
    assert_eq!(u64_field(end, "abandoned_units"), abandoned_total);
    assert_eq!(
        u64_field(end, "completed_units"),
        total_units - abandoned_total,
        "replayed completion does not match the conservation identity"
    );
    assert_eq!(
        u64_field(end, "completed_units") as f64,
        outcome.completed_units,
        "replayed completion does not match the measurement"
    );
    assert_eq!(
        num_field(end, "duration_s").to_bits(),
        outcome.duration_s.to_bits()
    );
}
