//! Property tests over the discrete-event simulator: conservation laws and
//! monotonicities that must hold for *any* workload demand and node
//! configuration.

use proptest::prelude::*;

use hecmix_sim::{
    reference_amd_arch, reference_arm_arch, run_node, NodeRunSpec, UnitDemand, WorkloadTrace,
};

fn demand_strategy() -> impl Strategy<Value = UnitDemand> {
    (
        1.0f64..500.0,                             // int
        0.0f64..300.0,                             // fp
        0.0f64..200.0,                             // simd
        0.0f64..100.0,                             // wide mul
        0.0f64..400.0,                             // mem
        0.0f64..0.3,                               // miss rate
        0.0f64..100.0,                             // branches
        0.0f64..0.2,                               // branch miss
        prop_oneof![Just(0.0f64), 1.0f64..2000.0], // io bytes
    )
        .prop_map(
            |(int_ops, fp_ops, simd_ops, wide_mul_ops, mem_ops, llc, branch_ops, bm, io_bytes)| {
                UnitDemand {
                    int_ops,
                    fp_ops,
                    simd_ops,
                    wide_mul_ops,
                    mem_ops,
                    llc_miss_rate: llc,
                    branch_ops,
                    branch_miss_rate: bm,
                    io_bytes,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every run completes exactly the assigned units, keeps per-core
    /// cycle conservation, and produces finite positive observables.
    #[test]
    fn runs_conserve_and_complete(
        demand in demand_strategy(),
        cores in 1u32..=4,
        f_idx in 0usize..5,
        units in 500u64..50_000,
        seed in 0u64..1000,
    ) {
        let arch = reference_arm_arch();
        let trace = WorkloadTrace::batch("prop", demand);
        let spec = NodeRunSpec::new(cores, arch.platform.freqs[f_idx], units, seed);
        let m = run_node(&arch, &trace, &spec);
        prop_assert!((m.counters.units_done() - units as f64).abs() < 1e-6);
        prop_assert!(m.duration_s.is_finite() && m.duration_s > 0.0);
        prop_assert!(m.measured_energy_j.is_finite() && m.measured_energy_j > 0.0);
        for c in &m.counters.cores {
            prop_assert!(c.is_conserved(), "core counters not conserved: {c:?}");
        }
        // The node cannot be busier than cores × duration.
        let busy: f64 = m.counters.cores.iter().map(|c| c.busy_s).sum();
        prop_assert!(busy <= f64::from(cores) * m.duration_s * 1.001);
        // All assigned bytes were transferred.
        let expect_bytes = demand.io_bytes * units as f64;
        prop_assert!((m.counters.io_bytes - expect_bytes).abs() <= 1e-6 * expect_bytes.max(1.0));
    }

    /// More work never takes less time or less true energy (same seed,
    /// same configuration).
    #[test]
    fn monotone_in_work(
        demand in demand_strategy(),
        units in 2_000u64..20_000,
    ) {
        let arch = reference_amd_arch();
        let trace = WorkloadTrace::batch("prop", demand);
        let small = run_node(&arch, &trace, &NodeRunSpec::new(4, arch.platform.fmax(), units, 11));
        let big =
            run_node(&arch, &trace, &NodeRunSpec::new(4, arch.platform.fmax(), units * 3, 11));
        prop_assert!(big.duration_s > small.duration_s * 1.5);
        prop_assert!(big.energy.total_j() > small.energy.total_j());
    }

    /// For a CPU-heavy demand (no I/O), raising the frequency never slows
    /// the run down.
    #[test]
    fn cpu_bound_faster_at_higher_frequency(
        mut demand in demand_strategy(),
        units in 2_000u64..20_000,
    ) {
        demand.io_bytes = 0.0;
        let arch = reference_arm_arch();
        let trace = WorkloadTrace::batch("prop", demand);
        let mut prev = f64::INFINITY;
        for &f in &arch.platform.freqs {
            let m = run_node(&arch, &trace, &NodeRunSpec::new(4, f, units, 5));
            prop_assert!(
                m.duration_s < prev * 1.05,
                "slower at {f}: {} vs {prev}",
                m.duration_s
            );
            prev = m.duration_s;
        }
    }

    /// The meter's reading stays within its 3-σ envelope of the true
    /// energy.
    #[test]
    fn meter_within_envelope(
        demand in demand_strategy(),
        seed in 0u64..500,
    ) {
        let arch = reference_arm_arch();
        let trace = WorkloadTrace::batch("prop", demand);
        let m = run_node(&arch, &trace, &NodeRunSpec::new(4, arch.platform.fmax(), 5_000, seed));
        let rel = (m.measured_energy_j / m.energy.total_j() - 1.0).abs();
        prop_assert!(rel <= 3.0 * arch.power.meter_sigma + 1e-9, "meter off by {rel}");
    }

    /// Identical specs give identical measurements; different seeds give
    /// (almost always) different ones.
    #[test]
    fn determinism_and_seed_sensitivity(
        demand in demand_strategy(),
        seed in 0u64..500,
    ) {
        let arch = reference_amd_arch();
        let trace = WorkloadTrace::batch("prop", demand);
        let spec = NodeRunSpec::new(6, arch.platform.fmax(), 4_000, seed);
        let a = run_node(&arch, &trace, &spec);
        let b = run_node(&arch, &trace, &spec);
        prop_assert_eq!(a.duration_s, b.duration_s);
        prop_assert_eq!(a.measured_energy_j, b.measured_energy_j);
    }
}
