//! Energy accounting and the external power meter.
//!
//! The simulator accounts per-component energy exactly (watts × busy
//! time); the [`PowerMeter`] then models the *measurement* of that energy
//! by an external instrument in the style of the paper's Yokogawa WT210:
//! the reading is the true integral perturbed by a calibrated multiplicative
//! error (§III-D names power characterization as a main error source).

use serde::{Deserialize, Serialize};

use crate::noise::Noise;

/// Exact per-component energy of one node over one run, in joules.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyAccount {
    /// Core energy while doing work cycles.
    pub core_work_j: f64,
    /// Core energy while stalled (both core and memory stalls — a stalled
    /// core draws stall power regardless of what it waits on).
    pub core_stall_j: f64,
    /// Incremental DRAM energy while servicing requests.
    pub mem_j: f64,
    /// Incremental NIC energy while transferring.
    pub io_j: f64,
    /// Idle-floor energy over the run duration.
    pub idle_j: f64,
}

impl EnergyAccount {
    /// Total true energy.
    #[must_use]
    pub fn total_j(&self) -> f64 {
        self.core_work_j + self.core_stall_j + self.mem_j + self.io_j + self.idle_j
    }

    /// Component-wise sum.
    pub fn merge(&mut self, other: &EnergyAccount) {
        self.core_work_j += other.core_work_j;
        self.core_stall_j += other.core_stall_j;
        self.mem_j += other.mem_j;
        self.io_j += other.io_j;
        self.idle_j += other.idle_j;
    }
}

/// An external power meter attached to one node.
#[derive(Debug, Clone)]
pub struct PowerMeter {
    noise: Noise,
    sigma: f64,
}

impl PowerMeter {
    /// A meter with multiplicative 1-σ error `sigma`, seeded noise.
    #[must_use]
    pub fn new(noise: Noise, sigma: f64) -> Self {
        Self { noise, sigma }
    }

    /// Read the energy of `account` as the instrument would report it.
    pub fn read_j(&mut self, account: &EnergyAccount) -> f64 {
        account.total_j() * self.noise.factor(self.sigma)
    }

    /// Read an average power over `duration_s` (what a wattmeter displays).
    pub fn read_avg_w(&mut self, account: &EnergyAccount, duration_s: f64) -> f64 {
        if duration_s <= 0.0 {
            return 0.0;
        }
        self.read_j(account) / duration_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn account() -> EnergyAccount {
        EnergyAccount {
            core_work_j: 10.0,
            core_stall_j: 5.0,
            mem_j: 2.0,
            io_j: 1.0,
            idle_j: 20.0,
        }
    }

    #[test]
    fn totals_and_merge() {
        let mut a = account();
        assert!((a.total_j() - 38.0).abs() < 1e-12);
        a.merge(&account());
        assert!((a.total_j() - 76.0).abs() < 1e-12);
    }

    #[test]
    fn meter_reads_near_truth() {
        let mut m = PowerMeter::new(Noise::new(5), 0.02);
        let a = account();
        let readings: Vec<f64> = (0..1000).map(|_| m.read_j(&a)).collect();
        let mean = readings.iter().sum::<f64>() / readings.len() as f64;
        assert!((mean / a.total_j() - 1.0).abs() < 0.01);
        assert!(readings
            .iter()
            .all(|r| (r / a.total_j() - 1.0).abs() <= 0.061));
    }

    #[test]
    fn meter_without_noise_is_exact() {
        let mut m = PowerMeter::new(Noise::new(5), 0.0);
        assert_eq!(m.read_j(&account()), account().total_j());
        assert!((m.read_avg_w(&account(), 2.0) - 19.0).abs() < 1e-12);
    }

    #[test]
    fn zero_duration_power_is_zero() {
        let mut m = PowerMeter::new(Noise::new(5), 0.0);
        assert_eq!(m.read_avg_w(&account(), 0.0), 0.0);
    }
}
