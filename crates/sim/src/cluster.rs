//! Cluster-level simulation: heterogeneous multi-node job execution.
//!
//! Scale-out workloads have negligible inter-node communication (§II-A), so
//! nodes run independently: the cluster's job time is the slowest node's
//! finish time, and every node burns its idle floor until then. Nodes are
//! simulated concurrently with rayon.

use rayon::prelude::*;

use hecmix_core::types::Frequency;

use crate::arch::NodeArch;
use crate::counters::NodeCounters;
use crate::node::{run_node, NodeMeasurement, NodeRunSpec};
use crate::power::EnergyAccount;
use crate::trace::WorkloadTrace;

/// Work assignment for one node type.
#[derive(Debug, Clone)]
pub struct TypeAssignment {
    /// The node archetype.
    pub arch: NodeArch,
    /// Number of nodes of this type.
    pub nodes: u32,
    /// Cores enabled per node.
    pub cores: u32,
    /// Core clock frequency.
    pub freq: Frequency,
    /// Total work units for this *type* (distributed equally across its
    /// nodes, remainder to the first nodes — the paper distributes the
    /// share equally among same-type nodes).
    pub units: u64,
}

/// A whole-cluster run: one trace, one assignment per type.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// The workload.
    pub trace: WorkloadTrace,
    /// Per-type assignments.
    pub assignments: Vec<TypeAssignment>,
    /// Base noise seed; each node derives its own stream.
    pub seed: u64,
}

/// Aggregated measurement of a cluster run.
#[derive(Debug, Clone)]
pub struct ClusterMeasurement {
    /// Job duration: the slowest node's finish time, seconds.
    pub duration_s: f64,
    /// Total measured energy across all nodes (meter readings), joules.
    /// Includes the idle energy of early finishers waiting for the job.
    pub measured_energy_j: f64,
    /// Ground-truth total energy, joules.
    pub true_energy_j: f64,
    /// Per-type results.
    pub per_type: Vec<TypeMeasurement>,
}

/// Aggregated per-type measurement.
#[derive(Debug, Clone)]
pub struct TypeMeasurement {
    /// Slowest node of this type, seconds.
    pub duration_s: f64,
    /// Measured energy of all nodes of the type (including idle top-up
    /// until the cluster finished), joules.
    pub measured_energy_j: f64,
    /// Summed counters across the type's nodes.
    pub counters: NodeCounters,
    /// Summed exact energy account (before idle top-up).
    pub energy: EnergyAccount,
    /// Per-node durations (for straggler analysis).
    pub node_durations_s: Vec<f64>,
}

/// Run a heterogeneous cluster job to completion.
///
/// Every node simulates independently; after all finish, nodes that ended
/// early are charged their idle floor until the cluster-wide finish time
/// (they cannot be powered off mid-job).
#[must_use]
pub fn run_cluster(spec: &ClusterSpec) -> ClusterMeasurement {
    // Flatten into per-node run descriptions.
    struct NodeJob {
        type_idx: usize,
        arch_idx: usize,
        units: u64,
        cores: u32,
        freq: Frequency,
        seed: u64,
    }
    let mut jobs = Vec::new();
    for (type_idx, a) in spec.assignments.iter().enumerate() {
        if a.nodes == 0 {
            continue;
        }
        let per_node = a.units / u64::from(a.nodes);
        let remainder = a.units % u64::from(a.nodes);
        for i in 0..a.nodes {
            let units = per_node + u64::from(i < remainder as u32);
            jobs.push(NodeJob {
                type_idx,
                arch_idx: type_idx,
                units,
                cores: a.cores,
                freq: a.freq,
                seed: spec
                    .seed
                    .wrapping_mul(0x100000001B3)
                    .wrapping_add((type_idx as u64) << 32 | u64::from(i)),
            });
        }
    }

    let results: Vec<(usize, NodeMeasurement)> = jobs
        .par_iter()
        .map(|j| {
            let arch = &spec.assignments[j.arch_idx].arch;
            let m = if j.units == 0 {
                // A node with no work idles for free until top-up below.
                NodeMeasurement {
                    counters: NodeCounters::new(j.cores as usize),
                    energy: EnergyAccount::default(),
                    measured_energy_j: 0.0,
                    duration_s: 0.0,
                }
            } else {
                run_node(
                    arch,
                    &spec.trace,
                    &NodeRunSpec::new(j.cores, j.freq, j.units, j.seed),
                )
            };
            (j.type_idx, m)
        })
        .collect();

    let duration_s = results
        .iter()
        .map(|(_, m)| m.duration_s)
        .fold(0.0, f64::max);

    let mut per_type: Vec<TypeMeasurement> = spec
        .assignments
        .iter()
        .map(|a| TypeMeasurement {
            duration_s: 0.0,
            measured_energy_j: 0.0,
            counters: NodeCounters::new((a.cores as usize).max(1)),
            energy: EnergyAccount::default(),
            node_durations_s: Vec::new(),
        })
        .collect();

    for (type_idx, m) in &results {
        let t = &mut per_type[*type_idx];
        let arch = &spec.assignments[*type_idx].arch;
        // Idle top-up: this node waits for the cluster to finish.
        let idle_topup = arch.power.idle_w * (duration_s - m.duration_s).max(0.0);
        t.duration_s = t.duration_s.max(m.duration_s);
        t.measured_energy_j += m.measured_energy_j + idle_topup;
        t.energy.merge(&m.energy);
        t.node_durations_s.push(m.duration_s);
        // Merge counters core-wise (types are homogeneous internally).
        for (dst, src) in t.counters.cores.iter_mut().zip(&m.counters.cores) {
            dst.merge(src);
        }
        t.counters.io_bytes += m.counters.io_bytes;
        t.counters.io_busy_s += m.counters.io_busy_s;
        t.counters.mem_busy_s += m.counters.mem_busy_s;
        t.counters.duration_s = t.counters.duration_s.max(m.counters.duration_s);
    }

    let measured_energy_j = per_type.iter().map(|t| t.measured_energy_j).sum();
    let true_energy_j = per_type
        .iter()
        .zip(&spec.assignments)
        .map(|(t, a)| {
            let idle_topup: f64 = t
                .node_durations_s
                .iter()
                .map(|d| a.arch.power.idle_w * (duration_s - d).max(0.0))
                .sum();
            t.energy.total_j() + idle_topup
        })
        .sum();

    ClusterMeasurement {
        duration_s,
        measured_energy_j,
        true_energy_j,
        per_type,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::{reference_amd_arch, reference_arm_arch};
    use crate::trace::UnitDemand;
    use crate::WorkloadTrace;

    fn ep_demand() -> UnitDemand {
        UnitDemand {
            int_ops: 10.0,
            fp_ops: 8.0,
            simd_ops: 0.0,
            wide_mul_ops: 0.0,
            mem_ops: 2.0,
            llc_miss_rate: 0.005,
            branch_ops: 2.0,
            branch_miss_rate: 0.02,
            io_bytes: 0.0,
        }
    }

    #[test]
    fn homogeneous_cluster_scales() {
        let arm = reference_arm_arch();
        let trace = WorkloadTrace::batch("ep", ep_demand());
        let run = |nodes: u32, units: u64| {
            run_cluster(&ClusterSpec {
                trace: trace.clone(),
                assignments: vec![TypeAssignment {
                    arch: arm.clone(),
                    nodes,
                    cores: 4,
                    freq: arm.platform.fmax(),
                    units,
                }],
                seed: 11,
            })
        };
        let one = run(1, 100_000);
        let four = run(4, 100_000);
        let speedup = one.duration_s / four.duration_s;
        assert!(speedup > 3.5 && speedup < 4.5, "speedup {speedup}");
    }

    #[test]
    fn heterogeneous_cluster_finishes_at_slowest_type() {
        let arm = reference_arm_arch();
        let amd = reference_amd_arch();
        let trace = WorkloadTrace::batch("ep", ep_demand());
        let m = run_cluster(&ClusterSpec {
            trace,
            assignments: vec![
                TypeAssignment {
                    arch: arm.clone(),
                    nodes: 2,
                    cores: 4,
                    freq: arm.platform.fmax(),
                    units: 50_000,
                },
                TypeAssignment {
                    arch: amd.clone(),
                    nodes: 1,
                    cores: 6,
                    freq: amd.platform.fmax(),
                    units: 200_000,
                },
            ],
            seed: 3,
        });
        assert_eq!(m.per_type.len(), 2);
        let slowest = m.per_type.iter().map(|t| t.duration_s).fold(0.0, f64::max);
        assert!((m.duration_s - slowest).abs() < 1e-12);
        assert!(m.measured_energy_j > 0.0);
        // True energy includes the idle top-up so it exceeds the sum of
        // the raw per-type accounts.
        let raw: f64 = m.per_type.iter().map(|t| t.energy.total_j()).sum();
        assert!(m.true_energy_j >= raw);
    }

    #[test]
    fn unbalanced_split_wastes_idle_energy() {
        // Same total work, same hardware; a skewed split must take longer
        // and burn at least as much energy (this is the paper's argument
        // for matching).
        let arm = reference_arm_arch();
        let amd = reference_amd_arch();
        let trace = WorkloadTrace::batch("ep", ep_demand());
        let run = |arm_units: u64, amd_units: u64| {
            run_cluster(&ClusterSpec {
                trace: trace.clone(),
                assignments: vec![
                    TypeAssignment {
                        arch: arm.clone(),
                        nodes: 2,
                        cores: 4,
                        freq: arm.platform.fmax(),
                        units: arm_units,
                    },
                    TypeAssignment {
                        arch: amd.clone(),
                        nodes: 1,
                        cores: 6,
                        freq: amd.platform.fmax(),
                        units: amd_units,
                    },
                ],
                seed: 13,
            })
        };
        let total = 240_000u64;
        // Find a near-balanced split by rate ratio (AMD node ≈ 4.4× one
        // ARM node for this mix): give AMD ~69%.
        let balanced = run(total * 31 / 100, total * 69 / 100);
        let skewed = run(total * 80 / 100, total * 20 / 100);
        assert!(skewed.duration_s > balanced.duration_s * 1.2);
        assert!(skewed.true_energy_j > balanced.true_energy_j);
    }

    #[test]
    fn zero_node_types_are_skipped() {
        let arm = reference_arm_arch();
        let trace = WorkloadTrace::batch("ep", ep_demand());
        let m = run_cluster(&ClusterSpec {
            trace,
            assignments: vec![
                TypeAssignment {
                    arch: arm.clone(),
                    nodes: 1,
                    cores: 4,
                    freq: arm.platform.fmax(),
                    units: 10_000,
                },
                TypeAssignment {
                    arch: reference_amd_arch(),
                    nodes: 0,
                    cores: 6,
                    freq: reference_amd_arch().platform.fmax(),
                    units: 0,
                },
            ],
            seed: 1,
        });
        assert!(m.duration_s > 0.0);
        assert!(m.per_type[1].node_durations_s.is_empty());
        assert_eq!(m.per_type[1].measured_energy_j, 0.0);
    }

    #[test]
    fn remainder_units_distributed() {
        let arm = reference_arm_arch();
        let trace = WorkloadTrace::batch("ep", ep_demand());
        let m = run_cluster(&ClusterSpec {
            trace,
            assignments: vec![TypeAssignment {
                arch: arm.clone(),
                nodes: 3,
                cores: 4,
                freq: arm.platform.fmax(),
                units: 100_001,
            }],
            seed: 5,
        });
        let done: f64 = m.per_type[0].counters.units_done();
        assert!((done - 100_001.0).abs() < 1e-6);
    }
}
