//! Deterministic run-to-run noise.
//!
//! Real machines never produce identical runs: interrupts, TLB behaviour,
//! refresh collisions and the external power meter all perturb the
//! measurements. The paper names "irregularities among different runs of
//! the same program" and "power characterization" as the dominant sources
//! of its model error (§III-D). This module reproduces those perturbations
//! with a seeded, reproducible generator: a truncated-Gaussian
//! multiplicative jitter.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A seeded noise source producing multiplicative jitter factors.
#[derive(Debug, Clone)]
pub struct Noise {
    rng: SmallRng,
}

impl Noise {
    /// Build from a seed. Equal seeds give identical sequences.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// A noise source derived from this one, decorrelated by `salt`.
    /// Used to give every node its own stream so node count does not
    /// change the per-node sequences.
    #[must_use]
    pub fn split(&self, salt: u64) -> Self {
        // SplitMix64-style mix of the salt into a fresh seed.
        let mut z = salt.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Self::new(z ^ (z >> 31))
    }

    /// A multiplicative factor `~ N(1, sigma)`, truncated to
    /// `[1 − 3σ, 1 + 3σ]` and floored at 0.05 so times never go negative
    /// or collapse. `sigma = 0` returns exactly 1.
    pub fn factor(&mut self, sigma: f64) -> f64 {
        if sigma <= 0.0 {
            return 1.0;
        }
        // Box–Muller from two uniforms.
        let u1: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        let g = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (1.0 + sigma * g.clamp(-3.0, 3.0)).max(0.05)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = Noise::new(42);
        let mut b = Noise::new(42);
        for _ in 0..100 {
            assert_eq!(a.factor(0.05), b.factor(0.05));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Noise::new(1);
        let mut b = Noise::new(2);
        let same = (0..50).filter(|_| a.factor(0.05) == b.factor(0.05)).count();
        assert!(same < 5);
    }

    #[test]
    fn zero_sigma_is_identity() {
        let mut n = Noise::new(7);
        for _ in 0..10 {
            assert_eq!(n.factor(0.0), 1.0);
        }
    }

    #[test]
    fn factors_centered_and_bounded() {
        let mut n = Noise::new(123);
        let sigma = 0.05;
        let xs: Vec<f64> = (0..20_000).map(|_| n.factor(sigma)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 1.0).abs() < 0.005, "mean {mean}");
        assert!(xs.iter().all(|&x| x >= 1.0 - 3.0 * sigma - 1e-12));
        assert!(xs.iter().all(|&x| x <= 1.0 + 3.0 * sigma + 1e-12));
    }

    #[test]
    fn split_streams_are_decorrelated() {
        let base = Noise::new(99);
        let mut a = base.split(0);
        let mut b = base.split(1);
        let same = (0..50).filter(|_| a.factor(0.05) == b.factor(0.05)).count();
        assert!(same < 5);
        // and reproducible
        let mut a2 = base.split(0);
        let mut a3 = Noise::new(99).split(0);
        for _ in 0..20 {
            let expect = a3.factor(0.03);
            assert_eq!(a2.factor(0.03), expect);
        }
    }
}
