//! Node archetypes: ISA expansion, issue model, memory system and power.
//!
//! A [`NodeArch`] is the simulator's ground truth for one node type. It is
//! intentionally parameterized by *lower-level* quantities than the
//! analytical model consumes — instruction-expansion factors, issue IPCs,
//! cache-miss scaling, memory latency in nanoseconds, contention slopes,
//! power coefficients — so that the model parameters (`WPI`, `SPI_core`,
//! `SPI_mem(f)`, `I_Ps`, powers) have to be *measured* from simulator runs
//! rather than copied.

use serde::{Deserialize, Serialize};

use hecmix_core::types::{Frequency, Platform};

use crate::trace::UnitDemand;

/// How one ISA/micro-architecture executes an abstract [`UnitDemand`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IsaModel {
    /// Machine instructions per abstract integer op (RISC ISAs need more
    /// instructions than CISC for the same work).
    pub int_expand: f64,
    /// Machine instructions per abstract FP op (scalar vs SIMD width,
    /// fused ops).
    pub fp_expand: f64,
    /// Machine instructions per abstract SIMD op (1 on a 128-bit
    /// datapath; several micro-ops on a 64-bit one).
    pub simd_expand: f64,
    /// Machine instructions per abstract wide multiply (1 on a 64-bit
    /// machine with a wide multiplier; several narrow multiplies plus
    /// carry-chain instructions on a 32-bit machine).
    pub wide_mul_expand: f64,
    /// Machine instructions per abstract memory reference.
    pub mem_expand: f64,
    /// Machine instructions per abstract branch.
    pub branch_expand: f64,
    /// Sustained issue rate for integer instructions (instructions/cycle).
    pub int_ipc: f64,
    /// Sustained issue rate for FP instructions.
    pub fp_ipc: f64,
    /// Sustained issue rate for SIMD instructions.
    pub simd_ipc: f64,
    /// Cycles per wide-multiply instruction (not pipelined on small cores).
    pub wide_mul_cpi: f64,
    /// Sustained issue rate for memory instructions that hit in cache.
    pub mem_ipc: f64,
    /// Pipeline-hazard stall cycles per instruction (structural hazards,
    /// issue-width pressure) — contributes to `SPI_core`.
    pub hazard_spi: f64,
    /// Branch-misprediction penalty in cycles.
    pub branch_penalty: f64,
    /// Multiplier on the trace's reference LLC miss rate: <1 for caches
    /// larger than the 4 MiB reference, >1 for smaller.
    pub miss_scaling: f64,
}

/// Breakdown of executing a batch of work on one core, in cycles and
/// instruction counts (before memory-contention effects).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct IsaCost {
    /// Machine instructions.
    pub instructions: f64,
    /// Issue/work cycles (the `WPI` numerator).
    pub work_cycles: f64,
    /// Non-memory stall cycles (the `SPI_core` numerator).
    pub core_stall_cycles: f64,
    /// Last-level cache misses that go to memory.
    pub llc_misses: f64,
}

impl IsaModel {
    /// Expand `units` work units of `demand` into ISA-level costs.
    #[must_use]
    pub fn expand(&self, demand: &UnitDemand, units: f64) -> IsaCost {
        let int_i = demand.int_ops * self.int_expand * units;
        let fp_i = demand.fp_ops * self.fp_expand * units;
        let simd_i = demand.simd_ops * self.simd_expand * units;
        let mul_i = demand.wide_mul_ops * self.wide_mul_expand * units;
        let mem_i = demand.mem_ops * self.mem_expand * units;
        let br_i = demand.branch_ops * self.branch_expand * units;
        let instructions = int_i + fp_i + simd_i + mul_i + mem_i + br_i;

        let work_cycles = int_i / self.int_ipc
            + fp_i / self.fp_ipc
            + simd_i / self.simd_ipc
            + mul_i * self.wide_mul_cpi
            + mem_i / self.mem_ipc
            + br_i / self.int_ipc;

        let branch_misses = demand.branch_ops * demand.branch_miss_rate * units;
        let core_stall_cycles =
            branch_misses * self.branch_penalty + instructions * self.hazard_spi;

        let llc_misses =
            demand.mem_ops * units * (demand.llc_miss_rate * self.miss_scaling).min(1.0);

        IsaCost {
            instructions,
            work_cycles,
            core_stall_cycles,
            llc_misses,
        }
    }
}

/// Memory-system ground truth: DRAM latency and its growth under
/// multi-core contention, and the memory-level parallelism the out-of-order
/// window can extract.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryModel {
    /// Unloaded round-trip latency of a last-level miss, nanoseconds.
    pub latency_ns: f64,
    /// Fractional latency growth per additional *contending* core:
    /// `lat(c) = latency_ns · (1 + contention · (c − 1))` (the off-chip
    /// contention behaviour of [Tudor et al., ICPP 2011] cited by the paper).
    pub contention: f64,
    /// Average overlapped outstanding misses (MLP): effective stall per
    /// miss is `lat / mlp`.
    pub mlp: f64,
}

impl MemoryModel {
    /// Effective stall time per miss, in nanoseconds, with `c` cores
    /// contending.
    #[must_use]
    pub fn stall_ns_per_miss(&self, contending_cores: f64) -> f64 {
        let c = contending_cores.max(1.0);
        self.latency_ns * (1.0 + self.contention * (c - 1.0)) / self.mlp
    }
}

/// Ground-truth power behaviour of one node type.
///
/// Dynamic core power follows `k · (f/f_nom)^exp` per core (voltage scales
/// with frequency under DVFS); stalled cores clock-gate part of the
/// pipeline and draw a fraction of active power. Memory and the NIC draw
/// incremental power while busy. Everything else is the idle floor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArchPower {
    /// Idle floor for the whole node, watts.
    pub idle_w: f64,
    /// Active per-core power at nominal (max) frequency, watts.
    pub core_peak_w: f64,
    /// Exponent of the frequency–power law (≈1.8 with voltage scaling).
    pub freq_exponent: f64,
    /// Stalled-core power as a fraction of active power.
    pub stall_frac: f64,
    /// Incremental DRAM power while servicing requests, watts.
    pub mem_w: f64,
    /// Incremental NIC power while transferring, watts.
    pub io_w: f64,
    /// Multiplicative 1-σ noise of the external power meter (run-to-run
    /// measurement irregularity, §III-D names power characterization as a
    /// main error source).
    pub meter_sigma: f64,
}

impl ArchPower {
    /// Active per-core watts at frequency `f` given nominal `f_nom`.
    #[must_use]
    pub fn core_active_w(&self, f: Frequency, f_nom: Frequency) -> f64 {
        self.core_peak_w * (f.ghz() / f_nom.ghz()).powf(self.freq_exponent)
    }

    /// Stalled per-core watts at frequency `f`.
    #[must_use]
    pub fn core_stall_w(&self, f: Frequency, f_nom: Frequency) -> f64 {
        self.core_active_w(f, f_nom) * self.stall_frac
    }
}

/// The full ground truth for one node type: the public platform spec plus
/// the hidden micro-architectural parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeArch {
    /// Public platform description (Table 1 data).
    pub platform: Platform,
    /// ISA/issue model.
    pub isa: IsaModel,
    /// Memory system.
    pub mem: MemoryModel,
    /// Power behaviour.
    pub power: ArchPower,
    /// Per-chunk execution-time jitter (1-σ, multiplicative) — short-term
    /// irregularity within a run.
    pub jitter_sigma: f64,
    /// Whole-run jitter (1-σ, multiplicative) applied to all stall
    /// components of one run: thermal state, OS interference and placement
    /// effects that bias an *entire* execution — the paper's "irregularities
    /// among different runs of the same program" (§III-D). Unlike the
    /// per-chunk jitter this does not average away over long runs.
    pub run_sigma: f64,
}

impl NodeArch {
    /// Nominal (max) frequency shortcut.
    #[must_use]
    pub fn f_nom(&self) -> Frequency {
        self.platform.fmax()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::{reference_amd_arch, reference_arm_arch};

    fn ep_like() -> UnitDemand {
        UnitDemand {
            int_ops: 10.0,
            fp_ops: 8.0,
            simd_ops: 0.0,
            wide_mul_ops: 0.0,
            mem_ops: 2.0,
            llc_miss_rate: 0.005,
            branch_ops: 2.0,
            branch_miss_rate: 0.02,
            io_bytes: 0.0,
        }
    }

    #[test]
    fn expansion_is_linear_in_units() {
        let arch = reference_arm_arch();
        let one = arch.isa.expand(&ep_like(), 1.0);
        let many = arch.isa.expand(&ep_like(), 1000.0);
        assert!((many.instructions - 1000.0 * one.instructions).abs() < 1e-6);
        assert!((many.work_cycles - 1000.0 * one.work_cycles).abs() < 1e-6);
        assert!((many.llc_misses - 1000.0 * one.llc_misses).abs() < 1e-9);
    }

    #[test]
    fn arm_needs_more_instructions_than_amd() {
        let arm = reference_arm_arch();
        let amd = reference_amd_arch();
        let d = ep_like();
        let ia = arm.isa.expand(&d, 1.0).instructions;
        let ix = amd.isa.expand(&d, 1.0).instructions;
        assert!(ia > ix, "ARM {ia} vs AMD {ix} instructions per unit");
    }

    #[test]
    fn wide_multiplies_hurt_narrow_isa_disproportionately() {
        let arm = reference_arm_arch();
        let amd = reference_amd_arch();
        let mut d = UnitDemand::zero();
        d.wide_mul_ops = 100.0;
        d.int_ops = 10.0;
        let ca = arm.isa.expand(&d, 1.0);
        let cx = amd.isa.expand(&d, 1.0);
        // Cycle blow-up on ARM must exceed its generic instruction blow-up.
        let generic = ep_like();
        let ga = arm.isa.expand(&generic, 1.0).work_cycles;
        let gx = amd.isa.expand(&generic, 1.0).work_cycles;
        assert!(
            ca.work_cycles / cx.work_cycles > ga / gx,
            "bignum-heavy mix should widen the ARM/AMD cycle gap"
        );
    }

    #[test]
    fn memory_contention_grows_latency() {
        let arch = reference_arm_arch();
        let base = arch.mem.stall_ns_per_miss(1.0);
        let four = arch.mem.stall_ns_per_miss(4.0);
        assert!(four > base);
        // Sub-linear in core count is fine, but must be monotone.
        assert!(arch.mem.stall_ns_per_miss(2.0) < four);
        // Degenerate inputs clamp to one core.
        assert!((arch.mem.stall_ns_per_miss(0.0) - base).abs() < 1e-12);
    }

    #[test]
    fn power_law_scales_down_with_frequency() {
        let arch = reference_amd_arch();
        let f_nom = arch.f_nom();
        let full = arch.power.core_active_w(f_nom, f_nom);
        assert!((full - arch.power.core_peak_w).abs() < 1e-12);
        let half = arch
            .power
            .core_active_w(Frequency::from_ghz(f_nom.ghz() / 2.0), f_nom);
        assert!(half < full * 0.5, "superlinear power law expected");
        let stall = arch.power.core_stall_w(f_nom, f_nom);
        assert!((stall - full * arch.power.stall_frac).abs() < 1e-12);
    }

    #[test]
    fn miss_scaling_clamps_at_one() {
        let mut arch = reference_arm_arch();
        arch.isa.miss_scaling = 100.0;
        let mut d = ep_like();
        d.llc_miss_rate = 0.5;
        let c = arch.isa.expand(&d, 1.0);
        assert!(c.llc_misses <= d.mem_ops + 1e-12);
    }
}
