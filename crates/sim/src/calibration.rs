//! Reference node archetypes, calibrated to the paper's testbed (Table 1).
//!
//! The *public* envelope of each archetype (core counts, P-states,
//! bandwidths, peak/idle power) is taken directly from the paper. The
//! *hidden* micro-architectural constants (issue rates, expansion factors,
//! DRAM latency, contention slope, ...) are calibrated-synthetic: chosen so
//! that the characterization pipeline measures model inputs in the ranges
//! the paper reports —
//!
//! * EP on AMD: `WPI ≈ 0.7`, `SPI_core ≈ 0.55`; on ARM: `WPI ≈ 0.85`,
//!   `SPI_core ≈ 0.65` (Fig. 2);
//! * `SPI_mem` linear in `f` with `r² ≥ 0.94` (Fig. 3);
//! * ARM holding the better performance-per-watt except for bignum-heavy
//!   (RSA) and memory-bandwidth-heavy (x264) workloads (Table 5).
//!
//! Sources of the flavor constants: the Cortex-A9 is a 2-wide
//! partially-out-of-order core with a weak FPU and a 32-bit multiplier
//! behind LP-DDR2; the K10 is a 3-wide out-of-order core with wide SSE
//! datapaths and a 64-bit multiplier in front of dual-channel DDR3 and a
//! 6 MiB L3.

use hecmix_core::types::Platform;

use crate::arch::{ArchPower, IsaModel, MemoryModel, NodeArch};

/// Ground truth for the AMD Opteron K10 node (high-performance type).
#[must_use]
pub fn reference_amd_arch() -> NodeArch {
    NodeArch {
        platform: Platform::reference_amd(),
        isa: IsaModel {
            int_expand: 1.0,
            fp_expand: 1.0,
            // Full-width 128-bit SSE datapaths.
            simd_expand: 1.0,
            wide_mul_expand: 1.0,
            mem_expand: 1.0,
            branch_expand: 1.0,
            int_ipc: 2.0,
            fp_ipc: 1.3,
            simd_ipc: 2.0,
            wide_mul_cpi: 4.0,
            mem_ipc: 1.6,
            hazard_spi: 0.5,
            branch_penalty: 14.0,
            // 512 KiB/core L2 + 6 MiB L3 → misses less than the reference.
            miss_scaling: 0.7,
        },
        mem: MemoryModel {
            // Dual-channel DDR3 behind an on-die controller.
            latency_ns: 65.0,
            contention: 0.18,
            mlp: 2.5,
        },
        power: ArchPower {
            idle_w: 45.0,
            core_peak_w: 2.5, // 45 + 6 × 2.5 = 60 W peak (§IV-C)
            freq_exponent: 2.2,
            stall_frac: 0.6,
            mem_w: 4.0,
            io_w: 2.0,
            meter_sigma: 0.02,
        },
        jitter_sigma: 0.02,
        run_sigma: 0.02,
    }
}

/// Ground truth for the ARM Cortex-A9 node (low-power type).
#[must_use]
pub fn reference_arm_arch() -> NodeArch {
    NodeArch {
        platform: Platform::reference_arm(),
        isa: IsaModel {
            // RISC expansion: more instructions for the same abstract work.
            int_expand: 1.15,
            fp_expand: 1.4,
            // The A9's NEON unit is 64 bits wide and misses several
            // packed operations, so 128-bit SIMD work triples.
            simd_expand: 4.0,
            // 64×64 multiply = 4 × 32-bit UMULL/UMLAL plus explicit carry
            // propagation and register shuffling (pre-ARMv8 bignum code).
            wide_mul_expand: 6.0,
            mem_expand: 1.1,
            branch_expand: 1.0,
            int_ipc: 1.5,
            fp_ipc: 0.9,
            simd_ipc: 0.5,
            // The A9 multiplier is not fully pipelined.
            wide_mul_cpi: 6.0,
            mem_ipc: 1.2,
            hazard_spi: 0.6,
            branch_penalty: 13.0,
            // 1 MiB shared L2, no L3 → misses more than the reference.
            miss_scaling: 2.2,
        },
        mem: MemoryModel {
            // Single-channel LP-DDR2: long unloaded latency, and the narrow
            // channel saturates quickly when several cores stream misses.
            latency_ns: 110.0,
            contention: 0.7,
            mlp: 1.2,
        },
        power: ArchPower {
            // The board idles below the paper's "less than 2 watts"; the
            // balance of the 5 W peak envelope is dynamic core power,
            // which gives the A9 a genuine energy-optimal P-state below
            // fmax (the overlap region of Fig. 4).
            idle_w: 1.4,
            core_peak_w: 0.9, // 1.4 + 4 × 0.9 = 5 W peak (§IV-C)
            freq_exponent: 2.2,
            stall_frac: 0.6,
            mem_w: 0.4,
            io_w: 0.3,
            meter_sigma: 0.02,
        },
        jitter_sigma: 0.03,
        run_sigma: 0.03,
    }
}

/// Ground truth for an ARM Cortex-A15 node — a *third* type exercising the
/// model's "generic mix of heterogeneous nodes" claim (§II-A names the
/// Cortex-A15 among the architectures the machine model covers).
///
/// The A15 sits between the A9 and the K10: a 3-wide out-of-order core
/// with full 128-bit NEON, a 2 MiB L2 and dual-channel DDR3L, at roughly
/// 12 W per quad-core node. Public envelope values follow contemporary
/// A15 dev platforms; hidden constants are calibrated-synthetic like the
/// other archetypes.
#[must_use]
pub fn reference_a15_arch() -> NodeArch {
    use hecmix_core::types::Frequency;
    NodeArch {
        platform: Platform {
            name: "ARM Cortex-A15".to_owned(),
            isa: "ARMv7-A".to_owned(),
            cores: 4,
            freqs: vec![
                Frequency::from_ghz(0.6),
                Frequency::from_ghz(1.0),
                Frequency::from_ghz(1.4),
                Frequency::from_ghz(1.7),
                Frequency::from_ghz(2.0),
            ],
            io_bandwidth_bps: 1e9,
            peak_power_w: 12.0,
            idle_power_w: 3.0,
            infra_power_w: 2.5,
        },
        isa: IsaModel {
            int_expand: 1.15,
            fp_expand: 1.2,
            // Full-width NEON: mild expansion, decent issue rate.
            simd_expand: 1.5,
            // Still a 32-bit multiplier, but a fast pipelined one.
            wide_mul_expand: 4.0,
            mem_expand: 1.1,
            branch_expand: 1.0,
            int_ipc: 1.9,
            fp_ipc: 1.2,
            simd_ipc: 1.2,
            wide_mul_cpi: 3.0,
            mem_ipc: 1.5,
            hazard_spi: 0.5,
            branch_penalty: 15.0,
            // 2 MiB L2, no L3.
            miss_scaling: 1.4,
        },
        mem: MemoryModel {
            latency_ns: 85.0,
            contention: 0.35,
            mlp: 2.0,
        },
        power: ArchPower {
            idle_w: 3.0,
            core_peak_w: 2.25, // 3 + 4 × 2.25 = 12 W peak
            freq_exponent: 2.2,
            stall_frac: 0.6,
            mem_w: 1.0,
            io_w: 0.8,
            meter_sigma: 0.02,
        },
        jitter_sigma: 0.025,
        run_sigma: 0.025,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_power_consistent_with_platform() {
        for arch in [
            reference_amd_arch(),
            reference_arm_arch(),
            reference_a15_arch(),
        ] {
            let computed =
                arch.power.idle_w + arch.power.core_peak_w * f64::from(arch.platform.cores);
            assert!(
                (computed - arch.platform.peak_power_w).abs() < 1e-9,
                "{}: {computed} vs {}",
                arch.platform.name,
                arch.platform.peak_power_w
            );
        }
    }

    #[test]
    fn platforms_validate() {
        reference_amd_arch().platform.validate().unwrap();
        reference_arm_arch().platform.validate().unwrap();
        reference_a15_arch().platform.validate().unwrap();
    }

    #[test]
    fn arm_memory_weaker_than_amd() {
        let arm = reference_arm_arch();
        let amd = reference_amd_arch();
        assert!(arm.mem.latency_ns > amd.mem.latency_ns);
        assert!(arm.isa.miss_scaling > amd.isa.miss_scaling);
        assert!(arm.mem.mlp < amd.mem.mlp);
    }

    #[test]
    fn a15_sits_between_a9_and_k10() {
        let a9 = reference_arm_arch();
        let a15 = reference_a15_arch();
        let amd = reference_amd_arch();
        // Issue capability and memory system strictly between the two.
        assert!(a9.isa.int_ipc < a15.isa.int_ipc && a15.isa.int_ipc < amd.isa.int_ipc);
        assert!(amd.mem.latency_ns < a15.mem.latency_ns);
        assert!(a15.mem.latency_ns < a9.mem.latency_ns);
        assert!(a15.isa.simd_expand < a9.isa.simd_expand);
        // Power envelope between the two as well.
        assert!(a9.platform.peak_power_w < a15.platform.peak_power_w);
        assert!(a15.platform.peak_power_w < amd.platform.peak_power_w);
    }
}
