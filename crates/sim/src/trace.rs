//! Workload traces: architecture-neutral service demands.
//!
//! A scale-out workload is a long sequence of repetitions of one
//! *representative phase* `Ps` (§II-D-1 of the paper): one GET/SET request
//! for memcached, one frame for x264, one option for blackscholes, one
//! random number for EP, and so on. A [`WorkloadTrace`] describes what one
//! such phase (one *work unit*) demands from the machine in
//! architecture-neutral terms; each node archetype translates the demand
//! into its own instructions, cycles, misses and transfers.

use serde::{Deserialize, Serialize};

/// Architecture-neutral demand of **one work unit** (one repetition of the
/// representative phase `Ps`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UnitDemand {
    /// Scalar integer ALU operations.
    pub int_ops: f64,
    /// Floating-point operations.
    pub fp_ops: f64,
    /// SIMD/vector operations (packed integer or FP). Wide-datapath ISAs
    /// retire these at full rate; narrow ones (64-bit NEON on the
    /// Cortex-A9) expand them into several micro-ops at lower issue rates
    /// — the architectural reason the paper's x264 favors the AMD node.
    pub simd_ops: f64,
    /// Wide (64×64-bit) multiply/multiply-accumulate operations — the
    /// building block of bignum arithmetic (RSA). High-performance ISAs
    /// execute these natively; 32-bit ISAs expand them into several
    /// narrow multiplies with carry chains.
    pub wide_mul_ops: f64,
    /// Memory reference operations (loads + stores issued).
    pub mem_ops: f64,
    /// Fraction of memory references that miss the last-level cache of a
    /// *reference* 4 MiB cache. Archetypes with smaller caches miss more,
    /// larger caches miss less (see `IsaModel::miss_scaling`).
    pub llc_miss_rate: f64,
    /// Branch operations.
    pub branch_ops: f64,
    /// Fraction of branches mispredicted on the reference predictor.
    pub branch_miss_rate: f64,
    /// Network bytes transferred per unit (request + response payloads).
    pub io_bytes: f64,
}

impl UnitDemand {
    /// A demand with nothing in it (useful as a builder base).
    #[must_use]
    pub fn zero() -> Self {
        Self {
            int_ops: 0.0,
            fp_ops: 0.0,
            simd_ops: 0.0,
            wide_mul_ops: 0.0,
            mem_ops: 0.0,
            llc_miss_rate: 0.0,
            branch_ops: 0.0,
            branch_miss_rate: 0.0,
            io_bytes: 0.0,
        }
    }

    /// Total abstract operations (used for sanity checks and scaling).
    #[must_use]
    pub fn total_ops(&self) -> f64 {
        self.int_ops
            + self.fp_ops
            + self.simd_ops
            + self.wide_mul_ops
            + self.mem_ops
            + self.branch_ops
    }

    /// Scale every demand component by `k` (e.g. a frame that is `k`×
    /// larger). Miss rates are unchanged.
    #[must_use]
    pub fn scaled(&self, k: f64) -> Self {
        Self {
            int_ops: self.int_ops * k,
            fp_ops: self.fp_ops * k,
            simd_ops: self.simd_ops * k,
            wide_mul_ops: self.wide_mul_ops * k,
            mem_ops: self.mem_ops * k,
            llc_miss_rate: self.llc_miss_rate,
            branch_ops: self.branch_ops * k,
            branch_miss_rate: self.branch_miss_rate,
            io_bytes: self.io_bytes * k,
        }
    }

    /// Basic domain validation.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        let nonneg = self.int_ops >= 0.0
            && self.fp_ops >= 0.0
            && self.simd_ops >= 0.0
            && self.wide_mul_ops >= 0.0
            && self.mem_ops >= 0.0
            && self.branch_ops >= 0.0
            && self.io_bytes >= 0.0;
        nonneg
            && (0.0..=1.0).contains(&self.llc_miss_rate)
            && (0.0..=1.0).contains(&self.branch_miss_rate)
            && self.total_ops() > 0.0
            && self.total_ops().is_finite()
    }
}

/// How work units become *available* to a node (the `λ_I/O` axis of the
/// paper's Eq. 11).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// All units are available at time zero (batch workloads; also a
    /// saturating load generator like `memslap`).
    Saturated,
    /// Units arrive at a fixed rate per node, in units per second. Cores
    /// idle when they outrun the arrivals.
    Open {
        /// Arrival rate per node, units/second.
        rate_per_node: f64,
    },
}

impl ArrivalProcess {
    /// The per-unit inter-arrival gap in seconds (0 when saturated).
    #[must_use]
    pub fn gap_s(&self) -> f64 {
        match self {
            ArrivalProcess::Saturated => 0.0,
            ArrivalProcess::Open { rate_per_node } => 1.0 / rate_per_node,
        }
    }
}

/// A complete workload trace: name, the per-unit demand, and the arrival
/// process feeding the nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadTrace {
    /// Workload name (e.g. `"ep"`).
    pub name: String,
    /// Demand of one work unit.
    pub demand: UnitDemand,
    /// How units arrive.
    pub arrivals: ArrivalProcess,
}

impl WorkloadTrace {
    /// Build a saturated (batch) trace.
    #[must_use]
    pub fn batch(name: &str, demand: UnitDemand) -> Self {
        Self {
            name: name.to_owned(),
            demand,
            arrivals: ArrivalProcess::Saturated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demand() -> UnitDemand {
        UnitDemand {
            int_ops: 10.0,
            fp_ops: 8.0,
            simd_ops: 0.0,
            wide_mul_ops: 0.0,
            mem_ops: 2.0,
            llc_miss_rate: 0.01,
            branch_ops: 1.0,
            branch_miss_rate: 0.02,
            io_bytes: 0.0,
        }
    }

    #[test]
    fn scaling_preserves_rates() {
        let d = demand().scaled(3.0);
        assert!((d.int_ops - 30.0).abs() < 1e-12);
        assert!((d.llc_miss_rate - 0.01).abs() < 1e-12);
        assert!((d.total_ops() - 3.0 * demand().total_ops()).abs() < 1e-12);
    }

    #[test]
    fn validation() {
        assert!(demand().is_valid());
        let mut d = demand();
        d.llc_miss_rate = 1.5;
        assert!(!d.is_valid());
        let mut d = demand();
        d.int_ops = -1.0;
        assert!(!d.is_valid());
        assert!(!UnitDemand::zero().is_valid(), "zero demand is degenerate");
    }

    #[test]
    fn arrival_gaps() {
        assert_eq!(ArrivalProcess::Saturated.gap_s(), 0.0);
        let open = ArrivalProcess::Open {
            rate_per_node: 200.0,
        };
        assert!((open.gap_s() - 0.005).abs() < 1e-12);
    }
}
