//! Hardware event counters, `perf`-style.
//!
//! The paper reads instructions, work cycles and stall cycles from the
//! PMU of each node (§II-D-1) and computes `WPI`, `SPI_core` and `SPI_mem`
//! from them. These structs expose exactly those observables from the
//! simulator, with the same semantics:
//!
//! * a core is *busy* (accumulating cycles) while executing instructions
//!   **or waiting for memory** — memory waits are CPU time;
//! * waiting for the network device is **not** CPU time (DMA transfers
//!   proceed without the core);
//! * stall counters record the *raw* cycles of each stall cause. Because
//!   the out-of-order window overlaps memory waits with other work, the
//!   per-cause counters can sum to more than the elapsed cycles (as on
//!   real PMUs); the elapsed cycles are bounded by
//!   `work + max(stalls) ≤ cycles ≤ work + Σ stalls`.

use serde::{Deserialize, Serialize};

/// Event counters of one core over one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CoreCounters {
    /// Retired instructions.
    pub instructions: f64,
    /// Total cycles while busy (work + all stalls).
    pub cycles: f64,
    /// Issue/work cycles.
    pub work_cycles: f64,
    /// Non-memory stall cycles (branch, hazards).
    pub core_stall_cycles: f64,
    /// Memory stall cycles (LLC-miss service time seen by the core).
    pub mem_stall_cycles: f64,
    /// Last-level cache misses.
    pub llc_misses: f64,
    /// Wall-clock seconds the core was busy (work + stalls).
    pub busy_s: f64,
    /// Work units this core completed.
    pub units_done: f64,
}

impl CoreCounters {
    /// Accumulate another counter set (e.g. across runs).
    pub fn merge(&mut self, other: &CoreCounters) {
        self.instructions += other.instructions;
        self.cycles += other.cycles;
        self.work_cycles += other.work_cycles;
        self.core_stall_cycles += other.core_stall_cycles;
        self.mem_stall_cycles += other.mem_stall_cycles;
        self.llc_misses += other.llc_misses;
        self.busy_s += other.busy_s;
        self.units_done += other.units_done;
    }

    /// Work cycles per instruction (`WPI`). 0 when no instructions retired.
    #[must_use]
    pub fn wpi(&self) -> f64 {
        if self.instructions > 0.0 {
            self.work_cycles / self.instructions
        } else {
            0.0
        }
    }

    /// Non-memory stall cycles per instruction (`SPI_core`).
    #[must_use]
    pub fn spi_core(&self) -> f64 {
        if self.instructions > 0.0 {
            self.core_stall_cycles / self.instructions
        } else {
            0.0
        }
    }

    /// Memory stall cycles per instruction (`SPI_mem`).
    #[must_use]
    pub fn spi_mem(&self) -> f64 {
        if self.instructions > 0.0 {
            self.mem_stall_cycles / self.instructions
        } else {
            0.0
        }
    }

    /// Cycle-conservation check. With overlapping stall causes the elapsed
    /// cycles are bracketed: at least the work plus the larger stall
    /// source, at most the work plus both (no overlap at all).
    #[must_use]
    pub fn is_conserved(&self) -> bool {
        let lo = self.work_cycles + self.core_stall_cycles.max(self.mem_stall_cycles);
        let hi = self.work_cycles + self.core_stall_cycles + self.mem_stall_cycles;
        let tol = 1e-6 * self.cycles.max(1.0);
        self.cycles + tol >= lo && self.cycles <= hi + tol
    }
}

/// Counters for a whole node: per-core counters plus node-level devices.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct NodeCounters {
    /// Per-core counters.
    pub cores: Vec<CoreCounters>,
    /// Bytes the NIC transferred.
    pub io_bytes: f64,
    /// Seconds the NIC was busy transferring.
    pub io_busy_s: f64,
    /// Seconds the memory controller was servicing misses (union across
    /// cores is approximated by the max core mem-stall time).
    pub mem_busy_s: f64,
    /// Wall-clock duration of the run on this node.
    pub duration_s: f64,
}

impl NodeCounters {
    /// Build with `cores` zeroed counters.
    #[must_use]
    pub fn new(cores: usize) -> Self {
        Self {
            cores: vec![CoreCounters::default(); cores],
            io_bytes: 0.0,
            io_busy_s: 0.0,
            mem_busy_s: 0.0,
            duration_s: 0.0,
        }
    }

    /// Aggregate counters across cores.
    #[must_use]
    pub fn total(&self) -> CoreCounters {
        let mut t = CoreCounters::default();
        for c in &self.cores {
            t.merge(c);
        }
        t
    }

    /// Average CPU utilization across the run: busy core-seconds divided by
    /// `cores × duration` (the `U_CPU` of Table 2).
    #[must_use]
    pub fn cpu_utilization(&self) -> f64 {
        if self.duration_s <= 0.0 || self.cores.is_empty() {
            return 0.0;
        }
        let busy: f64 = self.cores.iter().map(|c| c.busy_s).sum();
        (busy / (self.cores.len() as f64 * self.duration_s)).min(1.0)
    }

    /// Total work units completed by the node.
    #[must_use]
    pub fn units_done(&self) -> f64 {
        self.cores.iter().map(|c| c.units_done).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CoreCounters {
        CoreCounters {
            instructions: 1000.0,
            cycles: 1800.0,
            work_cycles: 800.0,
            core_stall_cycles: 600.0,
            mem_stall_cycles: 400.0,
            llc_misses: 10.0,
            busy_s: 0.5,
            units_done: 42.0,
        }
    }

    #[test]
    fn derived_ratios() {
        let c = sample();
        assert!((c.wpi() - 0.8).abs() < 1e-12);
        assert!((c.spi_core() - 0.6).abs() < 1e-12);
        assert!((c.spi_mem() - 0.4).abs() < 1e-12);
        assert!(c.is_conserved());
    }

    #[test]
    fn zero_instructions_safe() {
        let c = CoreCounters::default();
        assert_eq!(c.wpi(), 0.0);
        assert_eq!(c.spi_core(), 0.0);
        assert_eq!(c.spi_mem(), 0.0);
    }

    #[test]
    fn conservation_detects_mismatch() {
        let mut c = sample();
        c.cycles += 100.0;
        assert!(!c.is_conserved());
    }

    #[test]
    fn merge_adds() {
        let mut a = sample();
        a.merge(&sample());
        assert!((a.instructions - 2000.0).abs() < 1e-12);
        assert!((a.units_done - 84.0).abs() < 1e-12);
        assert!(a.is_conserved());
    }

    #[test]
    fn node_utilization() {
        let mut n = NodeCounters::new(4);
        n.duration_s = 2.0;
        for c in &mut n.cores {
            c.busy_s = 1.0; // each core busy half the time
        }
        assert!((n.cpu_utilization() - 0.5).abs() < 1e-12);
        // Clamped at 1 even with rounding slop.
        for c in &mut n.cores {
            c.busy_s = 2.1;
        }
        assert_eq!(n.cpu_utilization(), 1.0);
    }

    #[test]
    fn node_totals() {
        let mut n = NodeCounters::new(2);
        n.cores[0] = sample();
        n.cores[1] = sample();
        let t = n.total();
        assert!((t.instructions - 2000.0).abs() < 1e-12);
        assert!((n.units_done() - 84.0).abs() < 1e-12);
    }
}
