//! Event-driven simulation of one node executing a workload share.
//!
//! Cores pull *chunks* of work units from a shared queue. For each chunk,
//! the ISA model expands the abstract demand into instructions, issue
//! cycles and cache misses; misses wait on the memory controller, whose
//! latency depends on how many cores are busy *at that moment*; the chunk's
//! duration is the slower of the core path and the memory path (out-of-order
//! overlap), perturbed by run-to-run jitter. Completed chunks hand their
//! network bytes to the NIC, which drains them by DMA in the background;
//! cores block when the NIC backlog grows too deep (I/O backpressure) or
//! when an open arrival process has not yet delivered more work.
//!
//! CPU utilization, I/O-boundness and memory contention therefore *emerge*
//! from the event interleaving — nothing in this module evaluates the
//! analytical model's equations.

use hecmix_core::types::Frequency;

use crate::arch::NodeArch;
use crate::counters::NodeCounters;
use crate::engine::EventQueue;
use crate::faults::{FaultKind, NodeFault, WorkInjection};
use crate::noise::Noise;
use crate::power::{EnergyAccount, PowerMeter};
use crate::trace::{ArrivalProcess, WorkloadTrace};

/// DVFS policy for a run. The paper (and the model) pin each node to one
/// P-state per configuration; [`Governor::Ondemand`] reproduces what a
/// stock Linux `ondemand` governor would do instead, so experiments can
/// quantify the fixed-frequency assumption.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Governor {
    /// Stay at the configured P-state for the whole run.
    Fixed,
    /// Sample utilization every `interval_s`; step the P-state up when
    /// utilization exceeds `up_threshold`, down when it falls below
    /// `down_threshold`.
    Ondemand {
        /// Sampling interval, seconds.
        interval_s: f64,
        /// Utilization above which to raise the frequency.
        up_threshold: f64,
        /// Utilization below which to lower it.
        down_threshold: f64,
    },
}

impl Governor {
    /// A stock ondemand-like configuration (10 ms sampling, 80 %/30 %).
    #[must_use]
    pub fn ondemand() -> Self {
        Governor::Ondemand {
            interval_s: 0.010,
            up_threshold: 0.8,
            down_threshold: 0.3,
        }
    }
}

/// Cluster-level sleep capability of the node's power domain: when every
/// core is parked and the NIC is quiet for longer than `residency_s`, the
/// domain drops from the always-on `idle_w` floor to `sleep_w` for the
/// remainder of the idle interval (the first `residency_s` seconds pay
/// the entry/exit cost at the full floor).
#[derive(Debug, Clone, Copy)]
pub struct DomainSleepSpec {
    /// Minimum idle-interval length before the deep state pays off, in
    /// seconds.
    pub residency_s: f64,
    /// Node floor power while the domain is slept, in watts.
    pub sleep_w: f64,
}

/// Per-node run parameters.
#[derive(Debug, Clone, Copy)]
pub struct NodeRunSpec {
    /// Enabled cores (`1 ..= platform.cores`).
    pub cores: u32,
    /// Core clock frequency (one of the platform P-states); the starting
    /// P-state when a governor is active.
    pub freq: Frequency,
    /// Work units assigned to this node.
    pub units: u64,
    /// Noise seed (vary for repeated "runs" of the same experiment).
    pub seed: u64,
    /// Chunk size override in units; `None` picks a size that gives each
    /// core a few hundred chunks.
    pub chunk_units: Option<u64>,
    /// DVFS policy.
    pub governor: Governor,
    /// Optional cluster-sleep capability; `None` keeps the legacy
    /// always-on idle floor.
    pub domain_sleep: Option<DomainSleepSpec>,
}

impl NodeRunSpec {
    /// A spec with default chunking and a pinned frequency.
    #[must_use]
    pub fn new(cores: u32, freq: Frequency, units: u64, seed: u64) -> Self {
        Self {
            cores,
            freq,
            units,
            seed,
            chunk_units: None,
            governor: Governor::Fixed,
            domain_sleep: None,
        }
    }

    /// Switch to a DVFS governor.
    #[must_use]
    pub fn with_governor(mut self, governor: Governor) -> Self {
        self.governor = governor;
        self
    }

    /// Enable cluster sleep during full-node idle intervals.
    #[must_use]
    pub fn with_domain_sleep(mut self, sleep: DomainSleepSpec) -> Self {
        self.domain_sleep = Some(sleep);
        self
    }
}

/// Everything measured from one node run.
#[derive(Debug, Clone)]
pub struct NodeMeasurement {
    /// Hardware event counters.
    pub counters: NodeCounters,
    /// Exact (ground-truth) energy account.
    pub energy: EnergyAccount,
    /// Energy as read by the external power meter (with measurement error).
    pub measured_energy_j: f64,
    /// Wall-clock duration of the run in seconds.
    pub duration_s: f64,
}

/// One node run under fault injection: the plain measurement plus the
/// recovery-relevant facts.
#[derive(Debug, Clone)]
pub struct FaultedNodeMeasurement {
    /// Counters/energy/duration of the run. For a crashed node the
    /// duration (and its idle floor) covers only useful work — the cluster
    /// layer charges the idle window between last work and the crash.
    pub measurement: NodeMeasurement,
    /// Time the last work event (chunk or NIC transfer) completed.
    pub work_end_s: f64,
    /// Crash time, when a crash fault fired.
    pub crashed_at_s: Option<f64>,
    /// Units left undone at the crash: still queued plus rolled-back
    /// in-flight chunks. Zero for nodes that did not crash.
    pub leftover_units: u64,
    /// Of the leftover, units that were mid-execution when the node died.
    pub lost_in_flight_units: u64,
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    CoreDone(u32),
    NicDone,
    WakeArrival,
    GovernorTick,
    /// Index into the fault list.
    Fault(usize),
    /// Index into the injection list.
    Inject(usize),
}

/// Exact deltas one chunk added to the counters and energy account,
/// recorded (in fault mode only) so a crash can roll back in-flight work.
/// The noise draws are consumed at chunk start, so the deltas cannot be
/// recomputed after the fact — they must be remembered.
#[derive(Debug, Clone, Copy, Default)]
struct ChunkCharge {
    instructions: f64,
    cycles: f64,
    work_cycles: f64,
    core_stall_cycles: f64,
    mem_stall_cycles: f64,
    llc_misses: f64,
    busy_s: f64,
    units_done: f64,
    core_work_j: f64,
    core_stall_j: f64,
    mem_j: f64,
    mem_busy_s: f64,
}

/// NIC backlog (in chunks of pending transfer) above which cores stop
/// starting new chunks. Small enough that an I/O-bound run is promptly
/// limited by the line rate; large enough to keep the pipeline full.
const NIC_BACKLOG_CHUNKS: f64 = 4.0;

struct NodeSim<'a> {
    arch: &'a NodeArch,
    trace: &'a WorkloadTrace,
    spec: NodeRunSpec,
    chunk: u64,
    queue: EventQueue<Ev>,
    noise: Noise,
    counters: NodeCounters,
    energy: EnergyAccount,
    /// Units not yet handed to a core.
    pending_units: u64,
    /// Units arrived (for open arrivals) but not yet consumed; `f64`
    /// because arrival is a fluid process.
    consumed_units: f64,
    /// Per-core busy flag (holds the chunk size being executed).
    core_busy: Vec<Option<u64>>,
    /// Cores currently executing (memory contention driver).
    busy_cores: u32,
    /// NIC state.
    nic_busy: bool,
    nic_queue_bytes: f64,
    nic_chunk_backlog: f64,
    nic_pending_bytes: f64,
    /// Cores parked on backpressure or arrival starvation.
    parked: Vec<u32>,
    wake_scheduled: bool,
    /// Start of the current full-node idle interval (every core parked,
    /// NIC quiet), when cluster sleep is enabled.
    domain_idle_since: Option<f64>,
    /// Accumulated deep-sleep time (idle intervals minus residency).
    slept_s: f64,
    /// Whole-run stall bias (drawn once per run from the seed).
    run_factor: f64,
    /// Current P-state index into `arch.platform.freqs`.
    freq_idx: usize,
    /// Busy core-seconds accumulated since the last governor tick.
    busy_since_tick: f64,
    last_tick: f64,
    // ---- Fault-injection state (inert on the plain path). ----
    /// Scheduled faults for this node, sorted by time.
    faults: &'a [NodeFault],
    /// Work re-delivered by the recovery protocol.
    injections: &'a [WorkInjection],
    /// True when faults or injections are present: enables charge
    /// recording and work-end bookkeeping.
    fault_mode: bool,
    /// Chunk-duration multiplier from straggler faults (compounding).
    slow_factor: f64,
    /// NIC bandwidth multiplier from degradation faults (compounding).
    nic_bandwidth_factor: f64,
    /// Highest P-state index a power cap allows.
    freq_cap_idx: usize,
    /// Set when a crash fault fired; stops the run loop.
    crashed: bool,
    /// Time of the last completed work event (chunk or NIC transfer).
    last_activity: f64,
    /// Units rolled back out of in-flight chunks at the crash.
    lost_in_flight: u64,
    /// Per-core charge of the chunk currently executing (fault mode only).
    charges: Vec<Option<ChunkCharge>>,
    /// Units injected so far (consumed by `arrived_by`).
    injected_units: u64,
    /// Start/duration of the in-flight NIC transfer, for crash rollback.
    nic_start_s: f64,
    nic_dur_s: f64,
}

impl<'a> NodeSim<'a> {
    fn new(arch: &'a NodeArch, trace: &'a WorkloadTrace, spec: NodeRunSpec) -> Self {
        Self::new_faulted(arch, trace, spec, &[], &[])
    }

    fn new_faulted(
        arch: &'a NodeArch,
        trace: &'a WorkloadTrace,
        spec: NodeRunSpec,
        faults: &'a [NodeFault],
        injections: &'a [WorkInjection],
    ) -> Self {
        assert!(
            spec.cores >= 1 && spec.cores <= arch.platform.cores,
            "core count {} out of range for {}",
            spec.cores,
            arch.platform.name
        );
        assert!(
            arch.platform.supports_frequency(spec.freq),
            "{} is not a P-state of {}",
            spec.freq,
            arch.platform.name
        );
        assert!(trace.demand.is_valid(), "invalid workload demand");
        for f in faults {
            assert!(
                f.at_s.is_finite() && f.at_s >= 0.0,
                "fault time must be finite and non-negative"
            );
        }
        for inj in injections {
            assert!(
                inj.at_s.is_finite() && inj.at_s >= 0.0,
                "injection time must be finite and non-negative"
            );
        }
        // Chunking covers all work the node may ever see, so a node that
        // starts empty and receives redistributed units later does not end
        // up with degenerate one-unit chunks.
        let total_units = spec.units + injections.iter().map(|i| i.units).sum::<u64>();
        let chunk = spec.chunk_units.unwrap_or_else(|| {
            // A few hundred chunks per core keeps event counts low while
            // letting contention and backpressure interleave.
            (total_units / (u64::from(spec.cores) * 256)).max(1)
        });
        let mut noise = Noise::new(spec.seed);
        let run_factor = noise.factor(arch.run_sigma);
        let freq_idx = arch
            .platform
            .freqs
            .iter()
            .position(|f| (f.hz() - spec.freq.hz()).abs() < 1e3)
            .expect("validated above");
        Self {
            arch,
            trace,
            spec,
            chunk,
            queue: EventQueue::new(),
            noise,
            counters: NodeCounters::new(spec.cores as usize),
            energy: EnergyAccount::default(),
            pending_units: spec.units,
            consumed_units: 0.0,
            core_busy: vec![None; spec.cores as usize],
            busy_cores: 0,
            nic_busy: false,
            nic_queue_bytes: 0.0,
            nic_chunk_backlog: 0.0,
            nic_pending_bytes: 0.0,
            parked: Vec::new(),
            wake_scheduled: false,
            domain_idle_since: None,
            slept_s: 0.0,
            run_factor,
            freq_idx,
            busy_since_tick: 0.0,
            last_tick: 0.0,
            faults,
            injections,
            fault_mode: !faults.is_empty() || !injections.is_empty(),
            slow_factor: 1.0,
            nic_bandwidth_factor: 1.0,
            freq_cap_idx: arch.platform.freqs.len() - 1,
            crashed: false,
            last_activity: 0.0,
            lost_in_flight: 0,
            charges: vec![None; spec.cores as usize],
            injected_units: 0,
            nic_start_s: 0.0,
            nic_dur_s: 0.0,
        }
    }

    /// The frequency the node is running at right now.
    fn cur_freq(&self) -> Frequency {
        self.arch.platform.freqs[self.freq_idx]
    }

    /// Governor tick: measure utilization since the last tick, step the
    /// P-state, and reschedule while the run is still active.
    fn governor_tick(&mut self) {
        let Governor::Ondemand {
            interval_s,
            up_threshold,
            down_threshold,
        } = self.spec.governor
        else {
            return;
        };
        let now = self.queue.now();
        let window = (now - self.last_tick).max(1e-12);
        // Two utilization signals: busy time of chunks *completed* in the
        // window, and the cores busy right now (a long chunk spanning
        // several windows contributes nothing to the former until it
        // retires — sampling only completions would read a saturated core
        // as idle and drive the governor the wrong way).
        let completed = (self.busy_since_tick / (window * f64::from(self.spec.cores))).min(1.0);
        let instantaneous = f64::from(self.busy_cores) / f64::from(self.spec.cores);
        let util = completed.max(instantaneous);
        self.busy_since_tick = 0.0;
        self.last_tick = now;
        let prev_idx = self.freq_idx;
        if util > up_threshold && self.freq_idx + 1 < self.arch.platform.freqs.len() {
            self.freq_idx += 1;
        } else if util < down_threshold && self.freq_idx > 0 {
            self.freq_idx -= 1;
        }
        // A power-cap fault bounds what the governor may pick.
        self.freq_idx = self.freq_idx.min(self.freq_cap_idx);
        if self.freq_idx != prev_idx {
            hecmix_obs::emit(|| hecmix_obs::Event::DvfsSwitch {
                seed: self.spec.seed,
                t_s: now,
                from_ghz: self.arch.platform.freqs[prev_idx].ghz(),
                to_ghz: self.arch.platform.freqs[self.freq_idx].ghz(),
            });
            // The platform P-state list *is* the sim's OPP ladder; emit
            // the ladder-indexed companion event for DVFS consumers.
            hecmix_obs::emit(|| hecmix_obs::Event::OppChange {
                seed: self.spec.seed,
                t_s: now,
                from_opp: prev_idx as u32,
                to_opp: self.freq_idx as u32,
                to_ghz: self.arch.platform.freqs[self.freq_idx].ghz(),
            });
        }
        let active = self.pending_units > 0
            || self.busy_cores > 0
            || self.nic_busy
            || self.nic_queue_bytes > 0.0;
        if active {
            self.queue.schedule_in(interval_s, Ev::GovernorTick);
        }
    }

    /// Units that have arrived by time `t` under the arrival process.
    /// Redistributed units arrive in full at their injection event.
    fn arrived_by(&self, t: f64) -> f64 {
        let injected = self.injected_units as f64;
        match self.trace.arrivals {
            ArrivalProcess::Saturated => self.spec.units as f64 + injected,
            ArrivalProcess::Open { rate_per_node } => {
                (rate_per_node * t).min(self.spec.units as f64) + injected
            }
        }
    }

    /// Try to start the next chunk on `core`. Returns false if the core
    /// must park (no work, starved arrivals, or NIC backpressure).
    fn try_start(&mut self, core: u32) -> bool {
        if self.pending_units == 0 {
            return false;
        }
        // Backpressure: too many un-sent responses.
        if self.nic_chunk_backlog >= NIC_BACKLOG_CHUNKS {
            self.park(core, "nic-backpressure");
            return false;
        }
        let now = self.queue.now();
        let want = self.chunk.min(self.pending_units) as f64;
        let arrived = self.arrived_by(now);
        // Tolerance of a millionth of a unit guards against the wake event
        // firing at exactly t_ready with `rate·t` rounding a hair short,
        // which would otherwise re-park and re-schedule a zero-delay wake
        // forever.
        if arrived + 1e-6 < self.consumed_units + want {
            // Starved: wake when enough units will have arrived.
            if let ArrivalProcess::Open { rate_per_node } = self.trace.arrivals {
                if !self.wake_scheduled {
                    let t_ready = (self.consumed_units + want) / rate_per_node;
                    self.queue.schedule(t_ready.max(now), Ev::WakeArrival);
                    self.wake_scheduled = true;
                }
            }
            self.park(core, "starved");
            return false;
        }

        let units = self.chunk.min(self.pending_units);
        self.pending_units -= units;
        self.consumed_units += units as f64;
        self.domain_wake();
        self.busy_cores += 1;
        self.core_busy[core as usize] = Some(units);

        let dur = self.execute_chunk(core, units);
        self.queue.schedule_in(dur, Ev::CoreDone(core));
        true
    }

    fn park(&mut self, core: u32, reason: &'static str) {
        if !self.parked.contains(&core) {
            self.parked.push(core);
            hecmix_obs::emit(|| hecmix_obs::Event::CorePark {
                seed: self.spec.seed,
                core,
                t_s: self.queue.now(),
                reason,
            });
        }
        self.maybe_domain_idle();
    }

    /// Open a full-node idle interval if cluster sleep is enabled and
    /// nothing on the node can make progress right now: every core is
    /// parked, no chunk is in flight, and the NIC is quiet.
    fn maybe_domain_idle(&mut self) {
        if self.spec.domain_sleep.is_none() || self.domain_idle_since.is_some() {
            return;
        }
        let all_parked = self.parked.len() as u32 == self.spec.cores;
        if all_parked && self.busy_cores == 0 && !self.nic_busy && self.nic_queue_bytes <= 0.0 {
            self.domain_idle_since = Some(self.queue.now());
        }
    }

    /// Close the current full-node idle interval (work or I/O is about to
    /// start). Intervals longer than the residency earn deep-sleep credit
    /// for the time past the residency horizon and emit the
    /// `domain_sleep`/`domain_wake` event pair.
    fn domain_wake(&mut self) {
        let Some(start) = self.domain_idle_since.take() else {
            return;
        };
        let Some(sleep) = self.spec.domain_sleep else {
            return;
        };
        let now = self.queue.now();
        let gap = now - start;
        let residency = sleep.residency_s.max(0.0);
        if gap <= residency {
            return;
        }
        let slept = gap - residency;
        self.slept_s += slept;
        hecmix_obs::emit(|| hecmix_obs::Event::DomainSleep {
            seed: self.spec.seed,
            t_s: start + residency,
            domain: "node",
            sleep_w: sleep.sleep_w,
        });
        hecmix_obs::emit(|| hecmix_obs::Event::DomainWake {
            seed: self.spec.seed,
            t_s: now,
            domain: "node",
            slept_s: slept,
        });
    }

    fn unpark_all(&mut self) {
        let parked = std::mem::take(&mut self.parked);
        for core in parked {
            if self.try_start(core) {
                hecmix_obs::emit(|| hecmix_obs::Event::CoreResume {
                    seed: self.spec.seed,
                    core,
                    t_s: self.queue.now(),
                });
            }
        }
    }

    /// Compute one chunk's timing/energy/counters. Returns its duration.
    fn execute_chunk(&mut self, core: u32, units: u64) -> f64 {
        let freq = self.cur_freq();
        let f_hz = freq.hz();
        let f_ghz = freq.ghz();
        let cost = self.arch.isa.expand(&self.trace.demand, units as f64);

        // Per-chunk jitter on the two stall paths (work cycles are
        // architectural and repeatable; stalls are not).
        let jc = self.noise.factor(self.arch.jitter_sigma) * self.run_factor;
        let jm = self.noise.factor(self.arch.jitter_sigma) * self.run_factor;

        let work = cost.work_cycles;
        let core_stall = cost.core_stall_cycles * jc;

        // Memory path: misses wait on the controller, whose latency grows
        // with the number of cores busy right now.
        let contending = f64::from(self.busy_cores.max(1));
        let stall_ns = self.arch.mem.stall_ns_per_miss(contending);
        let mem_service_s = cost.llc_misses * stall_ns * 1e-9 * jm;
        hecmix_obs::emit(|| hecmix_obs::Event::MemContention {
            seed: self.spec.seed,
            t_s: self.queue.now(),
            contending: self.busy_cores.max(1),
            stall_ns: (mem_service_s * 1e9) as u64,
        });
        let mem_stall_cycles_raw = mem_service_s * f_hz;

        // Out-of-order overlap: the chunk takes the slower of the two paths.
        let core_path = work + core_stall;
        let mem_path = work + mem_stall_cycles_raw;
        let mut cycles = core_path.max(mem_path);
        // Straggler fault: the whole chunk stretches; the extra cycles are
        // stalls (the architectural work is unchanged), which keeps the
        // counters' conservation bracket intact.
        let mut core_stall_recorded = core_stall;
        if self.slow_factor > 1.0 {
            let extra = cycles * (self.slow_factor - 1.0);
            cycles += extra;
            core_stall_recorded += extra;
        }
        let dur = cycles / f_hz;

        // PMU view: stall-event counters record the *raw* stall cycles of
        // each cause. Out-of-order overlap means the per-cause counters can
        // sum to more than the elapsed cycles — exactly how real stall
        // events behave, and what the model's Eq. 9 consumes as SPI_mem.
        let mem_stall_recorded = mem_stall_cycles_raw;

        let c = &mut self.counters.cores[core as usize];
        c.instructions += cost.instructions;
        c.cycles += cycles;
        c.work_cycles += work;
        c.core_stall_cycles += core_stall_recorded;
        c.mem_stall_cycles += mem_stall_recorded;
        c.llc_misses += cost.llc_misses;
        c.busy_s += dur;
        c.units_done += units as f64;

        // Energy: active power for work cycles, stall power for the rest.
        let p_act = self.arch.power.core_active_w(freq, self.arch.f_nom());
        let p_stall = self.arch.power.core_stall_w(freq, self.arch.f_nom());
        let core_work_j = p_act * (work / f_hz);
        let core_stall_j = p_stall * ((cycles - work) / f_hz);
        let mem_j = self.arch.power.mem_w * mem_service_s;
        self.energy.core_work_j += core_work_j;
        self.energy.core_stall_j += core_stall_j;
        // DRAM active while servicing this chunk's misses.
        self.energy.mem_j += mem_j;
        self.counters.mem_busy_s += mem_service_s;
        self.busy_since_tick += dur;

        if self.fault_mode {
            // Remember the exact deltas so a crash can roll this chunk back.
            self.charges[core as usize] = Some(ChunkCharge {
                instructions: cost.instructions,
                cycles,
                work_cycles: work,
                core_stall_cycles: core_stall_recorded,
                mem_stall_cycles: mem_stall_recorded,
                llc_misses: cost.llc_misses,
                busy_s: dur,
                units_done: units as f64,
                core_work_j,
                core_stall_j,
                mem_j,
                mem_busy_s: mem_service_s,
            });
        }

        let _ = f_ghz;
        dur
    }

    /// Enqueue a finished chunk's bytes on the NIC.
    fn enqueue_io(&mut self, units: u64) {
        let bytes = self.trace.demand.io_bytes * units as f64;
        if bytes <= 0.0 {
            return;
        }
        self.nic_queue_bytes += bytes;
        self.nic_chunk_backlog += 1.0;
        if !self.nic_busy {
            self.start_nic();
        }
    }

    fn start_nic(&mut self) {
        debug_assert!(!self.nic_busy && self.nic_queue_bytes > 0.0);
        self.domain_wake();
        self.nic_busy = true;
        // Drain one chunk's worth per NIC service event.
        let per_chunk = self.nic_queue_bytes / self.nic_chunk_backlog.max(1.0);
        let bytes = per_chunk.min(self.nic_queue_bytes);
        let dur = bytes * 8.0 / (self.arch.platform.io_bandwidth_bps * self.nic_bandwidth_factor);
        self.nic_pending_bytes = bytes;
        self.nic_start_s = self.queue.now();
        self.nic_dur_s = dur;
        self.queue.schedule_in(dur, Ev::NicDone);
        self.counters.io_busy_s += dur;
        self.energy.io_j += self.arch.power.io_w * dur;
    }

    /// Schedule the initial events and drive the queue dry (or to a crash).
    fn run_loop(&mut self) {
        if let Governor::Ondemand { interval_s, .. } = self.spec.governor {
            self.queue.schedule(interval_s, Ev::GovernorTick);
        }
        for (i, f) in self.faults.iter().enumerate() {
            self.queue.schedule(f.at_s, Ev::Fault(i));
        }
        for (i, inj) in self.injections.iter().enumerate() {
            self.queue.schedule(inj.at_s, Ev::Inject(i));
        }
        // Kick all cores at t = 0.
        for core in 0..self.spec.cores {
            self.try_start(core);
        }
        while let Some((t, ev)) = self.queue.pop() {
            match ev {
                Ev::CoreDone(core) => {
                    let units = self.core_busy[core as usize]
                        .take()
                        .expect("completion for an idle core");
                    self.charges[core as usize] = None;
                    self.busy_cores -= 1;
                    self.last_activity = t;
                    self.enqueue_io(units);
                    if !self.try_start(core) && self.pending_units > 0 {
                        // parked (or could not start): handled via events.
                    }
                }
                Ev::NicDone => {
                    self.nic_busy = false;
                    self.nic_queue_bytes = (self.nic_queue_bytes - self.nic_pending_bytes).max(0.0);
                    self.nic_chunk_backlog = (self.nic_chunk_backlog - 1.0).max(0.0);
                    self.counters.io_bytes += self.nic_pending_bytes;
                    self.nic_pending_bytes = 0.0;
                    self.last_activity = t;
                    if self.nic_queue_bytes > 0.0 {
                        self.start_nic();
                    }
                    // Backpressure may have lifted.
                    self.unpark_all();
                    // The NIC going quiet may have completed a full-node
                    // idle condition (cores still starved).
                    self.maybe_domain_idle();
                }
                Ev::WakeArrival => {
                    self.wake_scheduled = false;
                    self.unpark_all();
                }
                Ev::GovernorTick => self.governor_tick(),
                Ev::Fault(i) => {
                    self.apply_fault(self.faults[i]);
                    if self.crashed {
                        break;
                    }
                }
                Ev::Inject(i) => {
                    let units = self.injections[i].units;
                    self.pending_units += units;
                    self.injected_units += units;
                    self.kick_all_idle();
                }
            }
        }
        if !self.crashed {
            debug_assert_eq!(self.pending_units, 0, "work left but no events pending");
            debug_assert!(!self.nic_busy && self.nic_queue_bytes <= 1e-9);
        }
    }

    fn apply_fault(&mut self, fault: NodeFault) {
        match fault.kind {
            FaultKind::Crash => self.crash(),
            FaultKind::Straggler { slowdown } => self.slow_factor *= slowdown,
            FaultKind::NicDegrade { bandwidth_factor } => {
                self.nic_bandwidth_factor *= bandwidth_factor;
            }
            FaultKind::PowerCap { max_freq_ghz } => {
                // Highest P-state at or below the cap (lowest if none fit).
                let cap = self
                    .arch
                    .platform
                    .freqs
                    .iter()
                    .rposition(|f| f.ghz() <= max_freq_ghz + 1e-9)
                    .unwrap_or(0);
                self.freq_cap_idx = self.freq_cap_idx.min(cap);
                self.freq_idx = self.freq_idx.min(self.freq_cap_idx);
            }
        }
    }

    /// The node dies right now: in-flight chunks are rolled back (their
    /// noise draws are spent, but the recorded charges restore counters and
    /// energy exactly), a partial NIC transfer is refunded pro rata, and
    /// the rolled-back units join the queue as lost work to re-deliver.
    fn crash(&mut self) {
        self.crashed = true;
        let now = self.queue.now();
        for core in 0..self.core_busy.len() {
            if self.core_busy[core].take().is_some() {
                let ch = self.charges[core]
                    .take()
                    .expect("in-flight chunk without a recorded charge");
                self.busy_cores -= 1;
                self.lost_in_flight += ch.units_done as u64;
                let c = &mut self.counters.cores[core];
                c.instructions -= ch.instructions;
                c.cycles -= ch.cycles;
                c.work_cycles -= ch.work_cycles;
                c.core_stall_cycles -= ch.core_stall_cycles;
                c.mem_stall_cycles -= ch.mem_stall_cycles;
                c.llc_misses -= ch.llc_misses;
                c.busy_s -= ch.busy_s;
                c.units_done -= ch.units_done;
                self.energy.core_work_j -= ch.core_work_j;
                self.energy.core_stall_j -= ch.core_stall_j;
                self.energy.mem_j -= ch.mem_j;
                self.counters.mem_busy_s -= ch.mem_busy_s;
            }
        }
        if self.nic_busy {
            // Refund the untransferred tail of the in-flight NIC transfer;
            // its bytes were never counted (that happens at NicDone).
            let elapsed = now - self.nic_start_s;
            let remaining = (self.nic_dur_s - elapsed).clamp(0.0, self.nic_dur_s);
            self.counters.io_busy_s -= remaining;
            self.energy.io_j -= self.arch.power.io_w * remaining;
            self.nic_busy = false;
        }
    }

    /// Restart every idle core (used after a work injection; parked cores
    /// are retried too and will re-park themselves if still blocked).
    fn kick_all_idle(&mut self) {
        self.parked.clear();
        for core in 0..self.spec.cores {
            if self.core_busy[core as usize].is_none() {
                self.try_start(core);
            }
        }
    }

    fn finalize(mut self) -> NodeMeasurement {
        // The plain path keeps its historical duration (queue drain time,
        // including a trailing governor tick); under faults stray events
        // must not inflate it, so work-end time is used instead.
        let duration = if self.fault_mode {
            self.last_activity
        } else {
            self.queue.now()
        };
        self.counters.duration_s = duration;
        // Close a trailing idle interval so its sleep credit lands.
        self.domain_wake();
        self.energy.idle_j = self.arch.power.idle_w * duration;
        if let Some(sleep) = self.spec.domain_sleep {
            // Deep-slept time is charged at sleep_w instead of idle_w.
            let credit = (self.arch.power.idle_w - sleep.sleep_w).max(0.0) * self.slept_s;
            self.energy.idle_j = (self.energy.idle_j - credit).max(0.0);
        }

        let mut meter = PowerMeter::new(
            Noise::new(self.spec.seed ^ 0x9E3779B97F4A7C15),
            self.arch.power.meter_sigma,
        );
        let measured_energy_j = meter.read_j(&self.energy);
        NodeMeasurement {
            counters: self.counters,
            energy: self.energy,
            measured_energy_j,
            duration_s: duration,
        }
    }

    fn run(mut self) -> NodeMeasurement {
        self.run_loop();
        self.finalize()
    }

    fn run_faulted(mut self) -> FaultedNodeMeasurement {
        self.run_loop();
        let work_end_s = self.last_activity;
        let crashed_at_s = self.crashed.then(|| self.queue.now());
        let leftover_units = self.pending_units + self.lost_in_flight;
        let lost_in_flight_units = self.lost_in_flight;
        FaultedNodeMeasurement {
            measurement: self.finalize(),
            work_end_s,
            crashed_at_s,
            leftover_units,
            lost_in_flight_units,
        }
    }
}

/// Run one node to completion.
///
/// # Panics
/// Panics when the spec is inconsistent with the archetype (bad core count
/// or frequency) or the trace demand is invalid.
#[must_use]
pub fn run_node(arch: &NodeArch, trace: &WorkloadTrace, spec: &NodeRunSpec) -> NodeMeasurement {
    NodeSim::new(arch, trace, *spec).run()
}

/// Run one node under a fault schedule, with extra work injected mid-run.
///
/// With empty `faults` and `injections` this delegates to the plain
/// [`run_node`] path, so the measurement is bit-identical to an unfaulted
/// run (only the fault-mode extras differ: `work_end_s` then equals the
/// plain duration only up to trailing governor-tick drain, so it is taken
/// from the measurement itself).
///
/// # Panics
/// Panics when the spec is inconsistent with the archetype, the trace
/// demand is invalid, or any fault/injection time is negative or
/// non-finite.
#[must_use]
pub fn run_node_faulted(
    arch: &NodeArch,
    trace: &WorkloadTrace,
    spec: &NodeRunSpec,
    faults: &[NodeFault],
    injections: &[WorkInjection],
) -> FaultedNodeMeasurement {
    if faults.is_empty() && injections.is_empty() {
        let measurement = run_node(arch, trace, spec);
        let work_end_s = measurement.duration_s;
        return FaultedNodeMeasurement {
            measurement,
            work_end_s,
            crashed_at_s: None,
            leftover_units: 0,
            lost_in_flight_units: 0,
        };
    }
    NodeSim::new_faulted(arch, trace, *spec, faults, injections).run_faulted()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::{reference_amd_arch, reference_arm_arch};
    use crate::trace::UnitDemand;

    fn ep_demand() -> UnitDemand {
        UnitDemand {
            int_ops: 10.0,
            fp_ops: 8.0,
            simd_ops: 0.0,
            wide_mul_ops: 0.0,
            mem_ops: 2.0,
            llc_miss_rate: 0.005,
            branch_ops: 2.0,
            branch_miss_rate: 0.02,
            io_bytes: 0.0,
        }
    }

    fn io_demand() -> UnitDemand {
        UnitDemand {
            int_ops: 300.0,
            fp_ops: 0.0,
            simd_ops: 0.0,
            wide_mul_ops: 0.0,
            mem_ops: 150.0,
            llc_miss_rate: 0.02,
            branch_ops: 50.0,
            branch_miss_rate: 0.03,
            io_bytes: 1024.0,
        }
    }

    #[test]
    fn cpu_bound_run_completes_all_units() {
        let arch = reference_arm_arch();
        let trace = WorkloadTrace::batch("ep", ep_demand());
        let spec = NodeRunSpec::new(4, arch.platform.fmax(), 100_000, 1);
        let m = run_node(&arch, &trace, &spec);
        assert!((m.counters.units_done() - 100_000.0).abs() < 1e-6);
        assert!(m.duration_s > 0.0);
        assert!(m.energy.total_j() > 0.0);
        // CPU-bound: cores essentially always busy.
        assert!(
            m.counters.cpu_utilization() > 0.95,
            "{}",
            m.counters.cpu_utilization()
        );
        // All cores contributed.
        assert!(m.counters.cores.iter().all(|c| c.units_done > 0.0));
        // Counter conservation on every core.
        assert!(m.counters.cores.iter().all(|c| c.is_conserved()));
    }

    #[test]
    fn deterministic_for_seed() {
        let arch = reference_amd_arch();
        let trace = WorkloadTrace::batch("ep", ep_demand());
        let spec = NodeRunSpec::new(6, arch.platform.fmax(), 50_000, 7);
        let a = run_node(&arch, &trace, &spec);
        let b = run_node(&arch, &trace, &spec);
        assert_eq!(a.duration_s, b.duration_s);
        assert_eq!(a.measured_energy_j, b.measured_energy_j);
        let mut c = spec;
        c.seed = 8;
        let d = run_node(&arch, &trace, &c);
        assert_ne!(a.duration_s, d.duration_s);
    }

    #[test]
    fn more_cores_run_faster_cpu_bound() {
        let arch = reference_amd_arch();
        let trace = WorkloadTrace::batch("ep", ep_demand());
        let one = run_node(
            &arch,
            &trace,
            &NodeRunSpec::new(1, arch.platform.fmax(), 60_000, 3),
        );
        let six = run_node(
            &arch,
            &trace,
            &NodeRunSpec::new(6, arch.platform.fmax(), 60_000, 3),
        );
        assert!(
            six.duration_s < one.duration_s / 4.0,
            "{} vs {}",
            six.duration_s,
            one.duration_s
        );
    }

    #[test]
    fn higher_frequency_runs_faster_but_draws_more_power() {
        let arch = reference_arm_arch();
        let trace = WorkloadTrace::batch("ep", ep_demand());
        let slow = run_node(
            &arch,
            &trace,
            &NodeRunSpec::new(4, hecmix_core::types::Frequency::from_ghz(0.5), 60_000, 3),
        );
        let fast = run_node(
            &arch,
            &trace,
            &NodeRunSpec::new(4, arch.platform.fmax(), 60_000, 3),
        );
        assert!(fast.duration_s < slow.duration_s);
        let p_fast = fast.energy.total_j() / fast.duration_s;
        let p_slow = slow.energy.total_j() / slow.duration_s;
        assert!(p_fast > p_slow);
    }

    #[test]
    fn io_bound_run_limited_by_line_rate() {
        let arch = reference_arm_arch();
        let trace = WorkloadTrace::batch("kv", io_demand());
        let units = 20_000u64;
        let spec = NodeRunSpec::new(4, arch.platform.fmax(), units, 5);
        let m = run_node(&arch, &trace, &spec);
        let wire_s = units as f64 * 1024.0 * 8.0 / 1e8;
        // Duration is essentially the wire time (within jitter/pipelining).
        assert!(
            m.duration_s >= wire_s * 0.98,
            "{} vs wire {}",
            m.duration_s,
            wire_s
        );
        assert!(
            m.duration_s <= wire_s * 1.2,
            "{} vs wire {}",
            m.duration_s,
            wire_s
        );
        // Cores are mostly idle: utilization well below 1.
        assert!(
            m.counters.cpu_utilization() < 0.7,
            "{}",
            m.counters.cpu_utilization()
        );
        // All bytes got transferred.
        assert!((m.counters.io_bytes - units as f64 * 1024.0).abs() < 1.0);
    }

    #[test]
    fn open_arrivals_pace_the_run() {
        let arch = reference_amd_arch();
        let mut trace = WorkloadTrace::batch("paced", ep_demand());
        let rate = 100_000.0; // units/s
        trace.arrivals = ArrivalProcess::Open {
            rate_per_node: rate,
        };
        let units = 50_000u64;
        let m = run_node(
            &arch,
            &trace,
            &NodeRunSpec::new(6, arch.platform.fmax(), units, 2),
        );
        let arrival_window = units as f64 / rate;
        assert!(m.duration_s >= arrival_window * 0.99);
        assert!(m.duration_s <= arrival_window * 1.1);
    }

    #[test]
    fn domain_sleep_credits_starved_intervals() {
        // Slow open arrivals starve the cores between chunks; with a
        // cluster-sleep spec those full-node idle gaps are charged at the
        // sleep floor instead of idle_w, so the idle energy must drop —
        // and by no more than the theoretical all-idle bound.
        let arch = reference_amd_arch();
        let mut trace = WorkloadTrace::batch("paced", ep_demand());
        trace.arrivals = ArrivalProcess::Open {
            rate_per_node: 20_000.0,
        };
        let units = 50_000u64;
        let base_spec = NodeRunSpec::new(2, arch.platform.fmax(), units, 11);
        let sleep = DomainSleepSpec {
            residency_s: 1e-4,
            sleep_w: 5.0,
        };
        let plain = run_node(&arch, &trace, &base_spec);
        let slept = run_node(&arch, &trace, &base_spec.with_domain_sleep(sleep));
        // Identical seeds and specs otherwise: same duration and busy
        // energy, smaller idle floor.
        assert_eq!(plain.duration_s, slept.duration_s);
        assert_eq!(plain.energy.core_work_j, slept.energy.core_work_j);
        assert!(
            slept.energy.idle_j < plain.energy.idle_j,
            "sleep credit missing: {} vs {}",
            slept.energy.idle_j,
            plain.energy.idle_j
        );
        let max_credit = (arch.power.idle_w - sleep.sleep_w) * plain.duration_s;
        assert!(plain.energy.idle_j - slept.energy.idle_j <= max_credit);
    }

    #[test]
    fn saturated_run_earns_no_sleep_credit() {
        // A batch (saturated) run never goes fully idle, so the sleep
        // spec must not change the energy account.
        let arch = reference_amd_arch();
        let trace = WorkloadTrace::batch("ep", ep_demand());
        let spec = NodeRunSpec::new(6, arch.platform.fmax(), 50_000, 9);
        let plain = run_node(&arch, &trace, &spec);
        let slept = run_node(
            &arch,
            &trace,
            &spec.with_domain_sleep(DomainSleepSpec {
                residency_s: 0.0,
                sleep_w: 0.0,
            }),
        );
        assert_eq!(plain.energy.idle_j, slept.energy.idle_j);
    }

    #[test]
    fn energy_components_positive_and_idle_floor_scales() {
        let arch = reference_amd_arch();
        let trace = WorkloadTrace::batch("ep", ep_demand());
        let m = run_node(
            &arch,
            &trace,
            &NodeRunSpec::new(6, arch.platform.fmax(), 50_000, 9),
        );
        assert!(m.energy.core_work_j > 0.0);
        assert!(m.energy.core_stall_j > 0.0);
        assert!(m.energy.mem_j > 0.0);
        assert!((m.energy.idle_j - 45.0 * m.duration_s).abs() < 1e-9);
        // Meter reading close to truth.
        assert!((m.measured_energy_j / m.energy.total_j() - 1.0).abs() < 0.07);
    }

    #[test]
    fn memory_contention_slows_multicore_runs() {
        // A very memory-heavy demand: per-unit time grows with core count.
        let arch = reference_arm_arch();
        let mut d = ep_demand();
        d.mem_ops = 200.0;
        d.llc_miss_rate = 0.2;
        let trace = WorkloadTrace::batch("memhog", d);
        let units = 20_000u64;
        let one = run_node(
            &arch,
            &trace,
            &NodeRunSpec::new(1, arch.platform.fmax(), units, 4),
        );
        let four = run_node(
            &arch,
            &trace,
            &NodeRunSpec::new(4, arch.platform.fmax(), units, 4),
        );
        let speedup = one.duration_s / four.duration_s;
        assert!(
            speedup < 3.2,
            "memory-bound speedup should be sublinear: {speedup}"
        );
        assert!(speedup > 1.2, "but still a speedup: {speedup}");
    }

    #[test]
    fn ondemand_races_to_fmax_for_cpu_bound() {
        // Start at fmin: a CPU-bound run saturates the cores, so the
        // governor climbs to fmax and the run finishes close to the
        // pinned-fmax time.
        let arch = reference_arm_arch();
        let trace = WorkloadTrace::batch("ep", ep_demand());
        // Long enough that the ~40 ms P-state ramp is amortized.
        let units = 5_000_000u64;
        let governed = run_node(
            &arch,
            &trace,
            &NodeRunSpec::new(4, hecmix_core::types::Frequency::from_ghz(0.2), units, 3)
                .with_governor(Governor::ondemand()),
        );
        let pinned_max = run_node(
            &arch,
            &trace,
            &NodeRunSpec::new(4, arch.platform.fmax(), units, 3),
        );
        let pinned_min = run_node(
            &arch,
            &trace,
            &NodeRunSpec::new(4, hecmix_core::types::Frequency::from_ghz(0.2), units, 3),
        );
        assert!(
            governed.duration_s < pinned_min.duration_s * 0.4,
            "governor should escape fmin: {} vs {}",
            governed.duration_s,
            pinned_min.duration_s
        );
        assert!(
            governed.duration_s < pinned_max.duration_s * 2.0,
            "and approach fmax (modulo the ramp): {} vs {}",
            governed.duration_s,
            pinned_max.duration_s
        );
    }

    #[test]
    fn ondemand_drops_to_fmin_when_io_bound() {
        // An I/O-bound run leaves cores nearly idle: the governor sinks to
        // the lowest P-state and saves energy vs a pinned-fmax run without
        // extending the (wire-limited) duration.
        let arch = reference_arm_arch();
        let trace = WorkloadTrace::batch("kv", io_demand());
        let units = 20_000u64;
        let governed = run_node(
            &arch,
            &trace,
            &NodeRunSpec::new(4, arch.platform.fmax(), units, 5)
                .with_governor(Governor::ondemand()),
        );
        let pinned = run_node(
            &arch,
            &trace,
            &NodeRunSpec::new(4, arch.platform.fmax(), units, 5),
        );
        assert!(
            (governed.duration_s / pinned.duration_s - 1.0).abs() < 0.05,
            "I/O-bound duration should not change: {} vs {}",
            governed.duration_s,
            pinned.duration_s
        );
        assert!(
            governed.energy.core_work_j + governed.energy.core_stall_j
                < 0.8 * (pinned.energy.core_work_j + pinned.energy.core_stall_j),
            "governor should cut core energy when cores idle"
        );
    }

    #[test]
    fn fixed_governor_is_the_default_and_identical() {
        let arch = reference_amd_arch();
        let trace = WorkloadTrace::batch("ep", ep_demand());
        let spec = NodeRunSpec::new(6, arch.platform.fmax(), 50_000, 7);
        let a = run_node(&arch, &trace, &spec);
        let b = run_node(&arch, &trace, &spec.with_governor(Governor::Fixed));
        assert_eq!(a.duration_s, b.duration_s);
        assert_eq!(a.measured_energy_j, b.measured_energy_j);
    }

    #[test]
    #[should_panic(expected = "P-state")]
    fn rejects_bad_frequency() {
        let arch = reference_arm_arch();
        let trace = WorkloadTrace::batch("ep", ep_demand());
        let spec = NodeRunSpec::new(4, hecmix_core::types::Frequency::from_ghz(3.0), 10, 1);
        let _ = run_node(&arch, &trace, &spec);
    }

    #[test]
    #[should_panic(expected = "core count")]
    fn rejects_bad_cores() {
        let arch = reference_arm_arch();
        let trace = WorkloadTrace::batch("ep", ep_demand());
        let spec = NodeRunSpec::new(9, arch.platform.fmax(), 10, 1);
        let _ = run_node(&arch, &trace, &spec);
    }
}
