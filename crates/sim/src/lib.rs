//! # hecmix-sim — the measured-hardware substrate
//!
//! The ICPP 2014 paper validates its analytical model against *direct
//! measurements* on a physical testbed: ARM Cortex-A9 and AMD Opteron K10
//! nodes instrumented with Linux `perf` hardware event counters and a
//! Yokogawa WT210 power meter. That hardware is not available to this
//! reproduction, so this crate provides the substitute: a discrete-event
//! micro-architectural cluster simulator that plays the role of the real
//! machines.
//!
//! Crucially, the simulator is **not** the analytical model re-run. It
//! works from different primitives:
//!
//! * workloads are abstract *operation mixes* (integer/floating-point/wide-
//!   multiply operations, memory references with locality, network bytes)
//!   — see [`trace::UnitDemand`];
//! * each node archetype expands the mix into ISA-specific instructions and
//!   issue cycles ([`arch::IsaModel`]), suffers cache misses against its own
//!   cache hierarchy, waits on a shared memory controller whose latency
//!   grows with the number of contending cores ([`arch::MemoryModel`]), and
//!   drains network bytes through a DMA-driven NIC at the platform's line
//!   rate;
//! * cores, the NIC and the request-arrival process interact through an
//!   event queue ([`engine`]) with per-chunk stochastic jitter
//!   ([`noise`]), so CPU utilization, I/O backpressure and memory
//!   contention are *emergent*, not prescribed;
//! * observables come out through perf-like counters ([`counters`]) and a
//!   sampling power meter with calibrated measurement noise ([`power`]).
//!
//! The analytical model in `hecmix-core` is then fed with parameters
//! *measured on this substrate* (by `hecmix-profile`) and validated against
//! *end-to-end runs of this substrate* — the same two-sided methodology the
//! paper applies to its physical cluster (§II-D, §III).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arch;
pub mod calibration;
pub mod cluster;
pub mod counters;
pub mod engine;
pub mod faults;
pub mod jobs;
pub mod node;
pub mod noise;
pub mod power;
pub mod trace;

pub use arch::{ArchPower, IsaModel, MemoryModel, NodeArch};
pub use calibration::{reference_a15_arch, reference_amd_arch, reference_arm_arch};
pub use cluster::{run_cluster, ClusterMeasurement, ClusterSpec, TypeAssignment};
pub use counters::{CoreCounters, NodeCounters};
pub use faults::{
    run_cluster_faulted, CrashRecord, FaultEvent, FaultKind, FaultSchedule,
    FaultedClusterMeasurement, NodeFault, RecoveryPolicy, WorkInjection,
};
pub use jobs::{run_job_stream, JobStreamMeasurement, JobStreamSpec};
pub use node::{
    run_node, run_node_faulted, DomainSleepSpec, FaultedNodeMeasurement, Governor, NodeMeasurement,
    NodeRunSpec,
};
pub use noise::Noise;
pub use trace::{ArrivalProcess, UnitDemand, WorkloadTrace};
