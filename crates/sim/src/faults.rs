//! Seeded fault injection and degraded-mode cluster recovery.
//!
//! A [`FaultSchedule`] names *what goes wrong, where and when*: a node
//! crashing outright, turning into a straggler, losing NIC bandwidth, or
//! being power-capped to a lower P-state. The schedule is data, not
//! randomness at run time — the same schedule and seed reproduce the run
//! bit for bit, which is what makes crash experiments diffable and lets
//! the analytical predictor in `hecmix-core::resilience` be validated
//! against them.
//!
//! [`run_cluster_faulted`] executes a cluster job under a schedule with a
//! work-conserving recovery protocol:
//!
//! 1. a crashed node's in-flight chunks are rolled back (the work was lost
//!    mid-execution and must be redone) and its queued units stay undone;
//! 2. the crash is *detected* after a heartbeat timeout
//!    ([`RecoveryPolicy::heartbeat_timeout_s`]);
//! 3. after a redistribution backoff the leftover units are re-delivered
//!    to the surviving nodes, apportioned by each survivor's observed
//!    processing rate (largest-remainder rounding so no unit is dropped);
//! 4. survivors that crash *later* carry their injected share into their
//!    own leftover, so cascading failures re-redistribute transitively.
//!
//! The implementation re-simulates the deterministic per-node runs as
//! redistribution targets accumulate injected work (each round is a full,
//! self-consistent event simulation), processing crashes in time order
//! until the schedule is exhausted. If a crash leaves no eligible
//! survivors, its units are reported as [`FaultedClusterMeasurement::abandoned_units`]
//! rather than silently lost.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

use crate::cluster::{ClusterSpec, TypeMeasurement};
use crate::counters::NodeCounters;
use crate::node::{run_node_faulted, FaultedNodeMeasurement, NodeRunSpec};
use crate::power::EnergyAccount;

/// What goes wrong with a node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The node dies: in-flight work is lost, queued work stays undone,
    /// and the node draws no power from the crash on.
    Crash,
    /// Every chunk executed after the fault stretches by this factor
    /// (≥ 1); the extra cycles are stall time at stall power.
    Straggler {
        /// Chunk-duration multiplier, `≥ 1`.
        slowdown: f64,
    },
    /// The NIC drains at this fraction of its line rate (in `(0, 1]`).
    NicDegrade {
        /// Remaining fraction of the nominal bandwidth.
        bandwidth_factor: f64,
    },
    /// The node is capped to the highest P-state at or below this clock
    /// (e.g. a thermal or power-budget throttle).
    PowerCap {
        /// Maximum allowed clock in GHz.
        max_freq_ghz: f64,
    },
}

/// One fault applied to one node at one time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeFault {
    /// When the fault strikes, seconds from job start.
    pub at_s: f64,
    /// What happens.
    pub kind: FaultKind,
}

/// Work units re-delivered to a surviving node by the recovery protocol.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkInjection {
    /// Delivery time, seconds from job start.
    pub at_s: f64,
    /// Units added to the node's queue.
    pub units: u64,
}

/// A fault bound to a specific node of a cluster run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Index into [`ClusterSpec::assignments`].
    pub type_idx: usize,
    /// Node index within the type (`0 ..< nodes`).
    pub node_idx: u32,
    /// The fault.
    pub fault: NodeFault,
}

/// A deterministic fault schedule for one cluster run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSchedule {
    /// The scheduled faults, in no particular order.
    pub events: Vec<FaultEvent>,
}

fn assert_time(at_s: f64) {
    assert!(
        at_s.is_finite() && at_s >= 0.0,
        "fault time must be finite and non-negative, got {at_s}"
    );
}

impl FaultSchedule {
    /// An empty schedule (a faulted run under it is the plain run).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a crash of node `(type_idx, node_idx)` at `at_s`.
    #[must_use]
    pub fn crash(mut self, type_idx: usize, node_idx: u32, at_s: f64) -> Self {
        assert_time(at_s);
        self.events.push(FaultEvent {
            type_idx,
            node_idx,
            fault: NodeFault {
                at_s,
                kind: FaultKind::Crash,
            },
        });
        self
    }

    /// Add a straggler slowdown (`slowdown ≥ 1`).
    #[must_use]
    pub fn straggler(mut self, type_idx: usize, node_idx: u32, at_s: f64, slowdown: f64) -> Self {
        assert_time(at_s);
        assert!(
            slowdown.is_finite() && slowdown >= 1.0,
            "straggler slowdown must be ≥ 1, got {slowdown}"
        );
        self.events.push(FaultEvent {
            type_idx,
            node_idx,
            fault: NodeFault {
                at_s,
                kind: FaultKind::Straggler { slowdown },
            },
        });
        self
    }

    /// Add a NIC degradation (`bandwidth_factor` in `(0, 1]`).
    #[must_use]
    pub fn nic_degrade(
        mut self,
        type_idx: usize,
        node_idx: u32,
        at_s: f64,
        bandwidth_factor: f64,
    ) -> Self {
        assert_time(at_s);
        assert!(
            bandwidth_factor > 0.0 && bandwidth_factor <= 1.0,
            "bandwidth factor must be in (0, 1], got {bandwidth_factor}"
        );
        self.events.push(FaultEvent {
            type_idx,
            node_idx,
            fault: NodeFault {
                at_s,
                kind: FaultKind::NicDegrade { bandwidth_factor },
            },
        });
        self
    }

    /// Add a power cap to `max_freq_ghz`.
    #[must_use]
    pub fn power_cap(
        mut self,
        type_idx: usize,
        node_idx: u32,
        at_s: f64,
        max_freq_ghz: f64,
    ) -> Self {
        assert_time(at_s);
        assert!(
            max_freq_ghz.is_finite() && max_freq_ghz > 0.0,
            "power cap must be a positive clock, got {max_freq_ghz}"
        );
        self.events.push(FaultEvent {
            type_idx,
            node_idx,
            fault: NodeFault {
                at_s,
                kind: FaultKind::PowerCap { max_freq_ghz },
            },
        });
        self
    }

    /// Seeded random crashes: `count` distinct nodes drawn uniformly from
    /// `nodes_per_type` (node counts per type index), each crashing at a
    /// uniform time in `(0, window_s)`. Equal seeds give equal schedules.
    ///
    /// # Panics
    /// Panics when `count` exceeds the total node count or `window_s` is
    /// not positive.
    #[must_use]
    pub fn random_crashes(seed: u64, nodes_per_type: &[u32], count: usize, window_s: f64) -> Self {
        assert!(
            window_s.is_finite() && window_s > 0.0,
            "crash window must be positive, got {window_s}"
        );
        let mut pool: Vec<(usize, u32)> = nodes_per_type
            .iter()
            .enumerate()
            .flat_map(|(t, &n)| (0..n).map(move |i| (t, i)))
            .collect();
        assert!(
            count <= pool.len(),
            "cannot crash {count} of {} nodes",
            pool.len()
        );
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut schedule = FaultSchedule::new();
        for _ in 0..count {
            let pick = rng.gen_range(0..pool.len());
            let (t, i) = pool.swap_remove(pick);
            let at_s = rng.gen_range(0.0..window_s).max(f64::MIN_POSITIVE);
            schedule = schedule.crash(t, i, at_s);
        }
        schedule
    }

    /// True when nothing is scheduled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Heartbeat/redistribution timing of the recovery protocol.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryPolicy {
    /// Missed-heartbeat window: a crash at `t` is detected at
    /// `t + heartbeat_timeout_s`.
    pub heartbeat_timeout_s: f64,
    /// Delay between detection and survivors receiving the re-delivered
    /// units (requeue + transfer).
    pub redistribute_backoff_s: f64,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        Self {
            heartbeat_timeout_s: 0.25,
            redistribute_backoff_s: 0.05,
        }
    }
}

/// What happened around one crash.
#[derive(Debug, Clone)]
pub struct CrashRecord {
    /// Crashed node's type index.
    pub type_idx: usize,
    /// Crashed node's index within the type.
    pub node_idx: u32,
    /// Crash time, seconds.
    pub crash_s: f64,
    /// Detection time (`crash + heartbeat timeout`), seconds.
    pub detected_s: f64,
    /// Redistribution time (`detection + backoff`), seconds.
    pub redistributed_s: f64,
    /// Units the node left undone (queued + rolled-back in-flight).
    pub leftover_units: u64,
    /// Of the leftover, units that were mid-execution when the node died.
    pub lost_in_flight_units: u64,
    /// Redistribution targets as `(type_idx, node_idx, units)`.
    pub receivers: Vec<(usize, u32, u64)>,
    /// Units no survivor could absorb (no eligible receivers).
    pub abandoned_units: u64,
}

/// Aggregated measurement of a cluster run under a fault schedule.
#[derive(Debug, Clone)]
pub struct FaultedClusterMeasurement {
    /// Completion time of the last work unit anywhere, seconds. A crash
    /// with nothing left to redo does not extend the job.
    pub duration_s: f64,
    /// Total metered energy including idle top-ups, joules.
    pub measured_energy_j: f64,
    /// Ground-truth total energy including idle top-ups, joules.
    pub true_energy_j: f64,
    /// Per-type aggregates (crashed nodes included up to their crash).
    pub per_type: Vec<TypeMeasurement>,
    /// One record per scheduled crash, in processing (time) order.
    pub crashes: Vec<CrashRecord>,
    /// Units lost for good because no survivor could take them.
    pub abandoned_units: u64,
    /// Work units completed across the cluster.
    pub completed_units: f64,
}

/// Internal per-node run description (mirrors `run_cluster`'s flattening,
/// including its seed derivation, so an empty schedule reproduces the
/// plain run bit for bit).
struct NodeJob {
    type_idx: usize,
    node_idx: u32,
    units: u64,
    cores: u32,
    freq: hecmix_core::types::Frequency,
    seed: u64,
    faults: Vec<NodeFault>,
    injections: Vec<WorkInjection>,
    /// Scheduled crash time (the earliest, if several were scheduled).
    crash_s: Option<f64>,
}

/// Emit the telemetry lifecycle of one finalized [`CrashRecord`]: the
/// crash itself, its heartbeat detection, the redistribution summary, and
/// one share event per receiver. A record with nothing left to move still
/// gets its redistribution event (`moved = abandoned = 0`), so a JSONL
/// trace replays to exactly the run's totals.
fn emit_crash_events(rec: &CrashRecord) {
    if !hecmix_obs::enabled() {
        return;
    }
    hecmix_obs::emit(|| hecmix_obs::Event::Crash {
        type_idx: rec.type_idx,
        node_idx: rec.node_idx as usize,
        crash_s: rec.crash_s,
        leftover_units: rec.leftover_units,
        lost_in_flight_units: rec.lost_in_flight_units,
    });
    hecmix_obs::emit(|| hecmix_obs::Event::HeartbeatTimeout {
        type_idx: rec.type_idx,
        node_idx: rec.node_idx as usize,
        detected_s: rec.detected_s,
    });
    hecmix_obs::emit(|| hecmix_obs::Event::Redistribution {
        type_idx: rec.type_idx,
        node_idx: rec.node_idx as usize,
        redistributed_s: rec.redistributed_s,
        moved_units: rec.receivers.iter().map(|r| r.2).sum(),
        abandoned_units: rec.abandoned_units,
    });
    for &(to_type, to_node, units) in &rec.receivers {
        hecmix_obs::emit(|| hecmix_obs::Event::RedistributionShare {
            to_type,
            to_node: to_node as usize,
            units,
        });
    }
}

/// Run a heterogeneous cluster job under a fault schedule.
///
/// Deterministic: the same spec, schedule and policy reproduce identical
/// counters and energy. With an empty schedule the result matches
/// [`crate::cluster::run_cluster`] exactly.
///
/// # Panics
/// Panics when a schedule event names a type or node outside the spec, or
/// when a node spec is invalid (same contract as `run_cluster`).
#[must_use]
pub fn run_cluster_faulted(
    spec: &ClusterSpec,
    schedule: &FaultSchedule,
    policy: &RecoveryPolicy,
) -> FaultedClusterMeasurement {
    assert!(
        policy.heartbeat_timeout_s >= 0.0 && policy.redistribute_backoff_s >= 0.0,
        "recovery delays must be non-negative"
    );
    let mut jobs: Vec<NodeJob> = Vec::new();
    for (type_idx, a) in spec.assignments.iter().enumerate() {
        if a.nodes == 0 {
            continue;
        }
        let per_node = a.units / u64::from(a.nodes);
        let remainder = a.units % u64::from(a.nodes);
        for i in 0..a.nodes {
            jobs.push(NodeJob {
                type_idx,
                node_idx: i,
                units: per_node + u64::from(i < remainder as u32),
                cores: a.cores,
                freq: a.freq,
                seed: spec
                    .seed
                    .wrapping_mul(0x100000001B3)
                    .wrapping_add((type_idx as u64) << 32 | u64::from(i)),
                faults: Vec::new(),
                injections: Vec::new(),
                crash_s: None,
            });
        }
    }
    for ev in &schedule.events {
        let job = jobs
            .iter_mut()
            .find(|j| j.type_idx == ev.type_idx && j.node_idx == ev.node_idx)
            .unwrap_or_else(|| {
                panic!(
                    "fault targets node ({}, {}) absent from the spec",
                    ev.type_idx, ev.node_idx
                )
            });
        job.faults.push(ev.fault);
        if ev.fault.kind == FaultKind::Crash {
            job.crash_s = Some(match job.crash_s {
                Some(c) => c.min(ev.fault.at_s),
                None => ev.fault.at_s,
            });
        }
    }
    // Per-node fault order must be deterministic regardless of schedule
    // event order (stable: equal times keep insertion order).
    for j in &mut jobs {
        j.faults.sort_by(|a, b| a.at_s.total_cmp(&b.at_s));
    }

    let run_all = |jobs: &[NodeJob]| -> Vec<FaultedNodeMeasurement> {
        jobs.par_iter()
            .map(|j| {
                if j.units == 0 && j.faults.is_empty() && j.injections.is_empty() {
                    // Mirror `run_cluster`: a workless, fault-free node is
                    // never simulated — it idles for free until top-up.
                    return FaultedNodeMeasurement {
                        measurement: crate::node::NodeMeasurement {
                            counters: NodeCounters::new(j.cores as usize),
                            energy: EnergyAccount::default(),
                            measured_energy_j: 0.0,
                            duration_s: 0.0,
                        },
                        work_end_s: 0.0,
                        crashed_at_s: None,
                        leftover_units: 0,
                        lost_in_flight_units: 0,
                    };
                }
                let arch = &spec.assignments[j.type_idx].arch;
                run_node_faulted(
                    arch,
                    &spec.trace,
                    &NodeRunSpec::new(j.cores, j.freq, j.units, j.seed),
                    &j.faults,
                    &j.injections,
                )
            })
            .collect()
    };

    // Crashes in processing order: (time, type, node) — total and stable.
    let mut crash_order: Vec<usize> = (0..jobs.len())
        .filter(|&i| jobs[i].crash_s.is_some())
        .collect();
    crash_order.sort_by(|&a, &b| {
        jobs[a]
            .crash_s
            .unwrap()
            .total_cmp(&jobs[b].crash_s.unwrap())
            .then(jobs[a].type_idx.cmp(&jobs[b].type_idx))
            .then(jobs[a].node_idx.cmp(&jobs[b].node_idx))
    });

    hecmix_obs::emit(|| hecmix_obs::Event::FaultedRunStart {
        total_units: spec.assignments.iter().map(|a| a.units).sum(),
        crashes: crash_order.len(),
    });
    let mut results = run_all(&jobs);
    let mut crashes: Vec<CrashRecord> = Vec::new();
    let mut abandoned_total: u64 = 0;
    let mut next_crash = 0;
    while next_crash < crash_order.len() {
        let ci = crash_order[next_crash];
        next_crash += 1;
        let crash_s = jobs[ci].crash_s.expect("ordered crash list");
        let leftover = results[ci].leftover_units;
        let lost = results[ci].lost_in_flight_units;
        let detected_s = crash_s + policy.heartbeat_timeout_s;
        let redistributed_s = detected_s + policy.redistribute_backoff_s;
        // Eligible survivors: never crash, or crash strictly after the
        // redistribution lands (so every injected unit either completes or
        // shows up in that node's own later leftover — nothing leaks).
        let receivers_idx: Vec<usize> = (0..jobs.len())
            .filter(|&i| i != ci && jobs[i].crash_s.is_none_or(|c| c > redistributed_s))
            .collect();
        let mut record = CrashRecord {
            type_idx: jobs[ci].type_idx,
            node_idx: jobs[ci].node_idx,
            crash_s,
            detected_s,
            redistributed_s,
            leftover_units: leftover,
            lost_in_flight_units: lost,
            receivers: Vec::new(),
            abandoned_units: 0,
        };
        if leftover == 0 {
            // Nothing to redistribute: the current round's results remain
            // valid for every other node — keep processing.
            emit_crash_events(&record);
            crashes.push(record);
            continue;
        }
        if receivers_idx.is_empty() {
            record.abandoned_units = leftover;
            abandoned_total += leftover;
            emit_crash_events(&record);
            crashes.push(record);
            continue;
        }
        // Apportion by observed processing rate (units done per second of
        // useful work), falling back to equal shares when nothing has run
        // yet; largest-remainder rounding conserves every unit.
        let weights: Vec<f64> = receivers_idx
            .iter()
            .map(|&i| {
                let r = &results[i];
                if r.work_end_s > 0.0 {
                    r.measurement.counters.units_done() / r.work_end_s
                } else {
                    0.0
                }
            })
            .collect();
        let total_w: f64 = weights.iter().sum();
        let weights: Vec<f64> = if total_w > 0.0 {
            weights.iter().map(|w| w / total_w).collect()
        } else {
            vec![1.0 / receivers_idx.len() as f64; receivers_idx.len()]
        };
        let mut shares: Vec<u64> = weights
            .iter()
            .map(|w| (w * leftover as f64).floor() as u64)
            .collect();
        let mut assigned: u64 = shares.iter().sum();
        // Largest remainder first; ties by receiver order (deterministic).
        let mut by_rem: Vec<usize> = (0..shares.len()).collect();
        by_rem.sort_by(|&a, &b| {
            let ra = weights[a] * leftover as f64 - shares[a] as f64;
            let rb = weights[b] * leftover as f64 - shares[b] as f64;
            rb.total_cmp(&ra).then(a.cmp(&b))
        });
        let mut k = 0;
        while assigned < leftover {
            let idx = by_rem[k % by_rem.len()];
            shares[idx] += 1;
            assigned += 1;
            k += 1;
        }
        for (&i, &share) in receivers_idx.iter().zip(&shares) {
            if share == 0 {
                continue;
            }
            jobs[i].injections.push(WorkInjection {
                at_s: redistributed_s,
                units: share,
            });
            record
                .receivers
                .push((jobs[i].type_idx, jobs[i].node_idx, share));
        }
        emit_crash_events(&record);
        crashes.push(record);
        // Injections changed the downstream runs: re-simulate.
        results = run_all(&jobs);
    }

    // ---- Aggregate (run_cluster's layout, with per-node alive windows).
    let duration_s = results.iter().map(|r| r.work_end_s).fold(0.0, f64::max);
    let mut per_type: Vec<TypeMeasurement> = spec
        .assignments
        .iter()
        .map(|a| TypeMeasurement {
            duration_s: 0.0,
            measured_energy_j: 0.0,
            counters: NodeCounters::new((a.cores as usize).max(1)),
            energy: EnergyAccount::default(),
            node_durations_s: Vec::new(),
        })
        .collect();
    // Per-type idle top-ups accumulated in node order, so the final sums
    // reproduce `run_cluster`'s float ordering bit for bit when the
    // schedule is empty.
    let mut type_topup = vec![0.0f64; spec.assignments.len()];
    for (j, r) in jobs.iter().zip(&results) {
        let t = &mut per_type[j.type_idx];
        let arch = &spec.assignments[j.type_idx].arch;
        let m = &r.measurement;
        // A survivor idles until the job ends; a crashed node is powered
        // only until it dies (never past the job's end).
        let alive_s = match r.crashed_at_s {
            Some(c) => c.min(duration_s),
            None => duration_s,
        };
        let idle_topup = arch.power.idle_w * (alive_s - m.duration_s).max(0.0);
        t.duration_s = t.duration_s.max(m.duration_s);
        t.measured_energy_j += m.measured_energy_j + idle_topup;
        t.energy.merge(&m.energy);
        t.node_durations_s.push(m.duration_s);
        for (dst, src) in t.counters.cores.iter_mut().zip(&m.counters.cores) {
            dst.merge(src);
        }
        t.counters.io_bytes += m.counters.io_bytes;
        t.counters.io_busy_s += m.counters.io_busy_s;
        t.counters.mem_busy_s += m.counters.mem_busy_s;
        t.counters.duration_s = t.counters.duration_s.max(m.counters.duration_s);
        type_topup[j.type_idx] += idle_topup;
    }
    let measured_energy_j = per_type.iter().map(|t| t.measured_energy_j).sum();
    let true_energy_j = per_type
        .iter()
        .zip(&type_topup)
        .map(|(t, topup)| t.energy.total_j() + topup)
        .sum();
    let completed_units: f64 = per_type.iter().map(|t| t.counters.units_done()).sum();
    hecmix_obs::emit(|| hecmix_obs::Event::FaultedRunEnd {
        duration_s,
        completed_units: completed_units as u64,
        abandoned_units: abandoned_total,
    });

    FaultedClusterMeasurement {
        duration_s,
        measured_energy_j,
        true_energy_j,
        per_type,
        crashes,
        abandoned_units: abandoned_total,
        completed_units,
    }
}
