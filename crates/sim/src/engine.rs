//! Minimal discrete-event engine: a time-ordered event queue with stable
//! FIFO tie-breaking.
//!
//! The node simulator schedules core-completion, NIC-completion and
//! arrival events; the engine delivers them in non-decreasing time order.
//! Same-time events are delivered in insertion order, which makes runs
//! deterministic for a fixed seed.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event queue over event payloads `E`, keyed by `f64` simulation time.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: f64,
}

#[derive(Debug)]
struct Entry<E> {
    time: f64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first, then lowest
        // sequence number first for stability.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time 0.
    #[must_use]
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0.0,
        }
    }

    /// Current simulation time: the timestamp of the last popped event.
    #[must_use]
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Schedule `event` at absolute time `time`.
    ///
    /// # Panics
    /// Panics if `time` is NaN or earlier than the current time (causality).
    pub fn schedule(&mut self, time: f64, event: E) {
        assert!(!time.is_nan(), "event time must not be NaN");
        assert!(
            time >= self.now,
            "causality violation: scheduling at {time} before now {}",
            self.now
        );
        self.heap.push(Entry {
            time,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Schedule `event` `delay` seconds from now.
    pub fn schedule_in(&mut self, delay: f64, event: E) {
        let now = self.now;
        self.schedule(now + delay.max(0.0), event);
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        self.heap.pop().map(|e| {
            self.now = e.time;
            (e.time, e.event)
        })
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, "c");
        q.schedule(1.0, "a");
        q.schedule(2.0, "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_broken_fifo() {
        let mut q = EventQueue::new();
        q.schedule(1.0, 1);
        q.schedule(1.0, 2);
        q.schedule(1.0, 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(5.0, ());
        q.schedule(7.5, ());
        assert_eq!(q.now(), 0.0);
        let (t1, ()) = q.pop().unwrap();
        assert_eq!(t1, 5.0);
        assert_eq!(q.now(), 5.0);
        q.schedule_in(1.0, ());
        let (t2, ()) = q.pop().unwrap();
        assert_eq!(t2, 6.0);
        let (t3, ()) = q.pop().unwrap();
        assert_eq!(t3, 7.5);
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "causality")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.schedule(5.0, ());
        q.pop();
        q.schedule(1.0, ());
    }

    #[test]
    fn negative_delay_clamps_to_now() {
        let mut q = EventQueue::new();
        q.schedule(2.0, "first");
        q.pop();
        q.schedule_in(-1.0, "second");
        let (t, e) = q.pop().unwrap();
        assert_eq!(t, 2.0);
        assert_eq!(e, "second");
    }
}
