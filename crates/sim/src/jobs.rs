//! Job-stream simulation: the full §IV-E scenario, end to end.
//!
//! The paper's queueing analysis (Fig. 10) is *analytic*: M/D/1 waiting
//! times plus a window-energy formula. This module provides the matching
//! *measurement*: Poisson job arrivals feed a FIFO dispatcher; each job is
//! serviced by an actual cluster simulation (so service times carry the
//! real run-to-run variance, making the system M/G/1-with-small-CV rather
//! than exactly M/D/1); powered nodes burn their idle floor between jobs.
//! The integration tests cross-validate the analytic window energies and
//! response times against this simulation.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::cluster::{run_cluster, ClusterSpec, TypeAssignment};
use crate::trace::WorkloadTrace;

/// A stream of jobs offered to one cluster configuration.
#[derive(Debug, Clone)]
pub struct JobStreamSpec {
    /// The workload (one job = `Σ assignments.units` work units).
    pub trace: WorkloadTrace,
    /// The cluster configuration servicing each job, including the
    /// per-type unit shares of one job (the mix-and-match split).
    pub assignments: Vec<TypeAssignment>,
    /// Poisson arrival rate, jobs/second.
    pub lambda: f64,
    /// Observation window, seconds (arrivals stop at its end; service
    /// drains the queue past it, with energy prorated to the window).
    pub window_s: f64,
    /// Base noise seed.
    pub seed: u64,
}

/// Measured outcome of a job stream.
#[derive(Debug, Clone)]
pub struct JobStreamMeasurement {
    /// Jobs that arrived inside the window.
    pub jobs_arrived: u64,
    /// Mean response time (wait + service) over those jobs, seconds.
    pub mean_response_s: f64,
    /// Mean service time over those jobs, seconds.
    pub mean_service_s: f64,
    /// Energy spent servicing jobs *within the window*, joules (a job
    /// straddling the window edge contributes pro rata).
    pub busy_energy_j: f64,
    /// Idle-floor energy of the powered nodes while no job was running,
    /// within the window, joules.
    pub idle_energy_j: f64,
    /// Fraction of the window the cluster was servicing a job.
    pub utilization: f64,
}

impl JobStreamMeasurement {
    /// Total window energy.
    #[must_use]
    pub fn total_j(&self) -> f64 {
        self.busy_energy_j + self.idle_energy_j
    }
}

/// Simulate the stream.
///
/// # Panics
/// Panics on non-positive `lambda` or `window_s`, or an empty cluster.
#[must_use]
pub fn run_job_stream(spec: &JobStreamSpec) -> JobStreamMeasurement {
    assert!(
        spec.lambda > 0.0 && spec.window_s > 0.0,
        "bad stream parameters"
    );
    assert!(
        spec.assignments.iter().any(|a| a.nodes > 0),
        "cluster has no nodes"
    );
    let idle_power_w: f64 = spec
        .assignments
        .iter()
        .map(|a| f64::from(a.nodes) * a.arch.power.idle_w)
        .sum();

    let mut rng = SmallRng::seed_from_u64(spec.seed);
    // Arrival epochs within the window.
    let mut arrivals = Vec::new();
    let mut t = 0.0f64;
    loop {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        t += -u.ln() / spec.lambda;
        if t >= spec.window_s {
            break;
        }
        arrivals.push(t);
    }

    let mut server_free_at = 0.0f64;
    let mut total_response = 0.0f64;
    let mut total_service = 0.0f64;
    let mut busy_energy_j = 0.0f64;
    let mut busy_in_window = 0.0f64;
    for (i, &arrival) in arrivals.iter().enumerate() {
        // Service this job on the simulated cluster with its own seed —
        // real per-job variance.
        let m = run_cluster(&ClusterSpec {
            trace: spec.trace.clone(),
            assignments: spec.assignments.clone(),
            seed: spec.seed.wrapping_add(0x9E37 * (i as u64 + 1)),
        });
        let start = arrival.max(server_free_at);
        let end = start + m.duration_s;
        server_free_at = end;
        total_response += end - arrival;
        total_service += m.duration_s;
        // Pro-rate the job's energy to the part inside the window.
        let inside = (spec.window_s.min(end) - start.min(spec.window_s)).max(0.0);
        busy_energy_j += m.measured_energy_j * inside / m.duration_s;
        busy_in_window += inside;
    }
    let busy_in_window = busy_in_window.min(spec.window_s);
    let idle_in_window = spec.window_s - busy_in_window;
    let jobs = arrivals.len() as u64;
    JobStreamMeasurement {
        jobs_arrived: jobs,
        mean_response_s: if jobs > 0 {
            total_response / jobs as f64
        } else {
            0.0
        },
        mean_service_s: if jobs > 0 {
            total_service / jobs as f64
        } else {
            0.0
        },
        busy_energy_j,
        idle_energy_j: idle_power_w * idle_in_window,
        utilization: busy_in_window / spec.window_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::{reference_amd_arch, reference_arm_arch};
    use crate::trace::UnitDemand;

    fn kv_demand() -> UnitDemand {
        UnitDemand {
            int_ops: 1200.0,
            fp_ops: 0.0,
            simd_ops: 0.0,
            wide_mul_ops: 0.0,
            mem_ops: 600.0,
            llc_miss_rate: 0.02,
            branch_ops: 200.0,
            branch_miss_rate: 0.03,
            io_bytes: 1000.0,
        }
    }

    fn small_cluster(units_arm: u64, units_amd: u64) -> Vec<TypeAssignment> {
        let arm = reference_arm_arch();
        let amd = reference_amd_arch();
        vec![
            TypeAssignment {
                arch: arm.clone(),
                nodes: 4,
                cores: 4,
                freq: arm.platform.fmax(),
                units: units_arm,
            },
            TypeAssignment {
                arch: amd.clone(),
                nodes: 1,
                cores: 6,
                freq: amd.platform.fmax(),
                units: units_amd,
            },
        ]
    }

    #[test]
    fn stream_accounting_is_consistent() {
        let spec = JobStreamSpec {
            trace: WorkloadTrace::batch("kv", kv_demand()),
            assignments: small_cluster(2_000, 3_000),
            lambda: 2.0,
            window_s: 10.0,
            seed: 42,
        };
        let m = run_job_stream(&spec);
        assert!(
            m.jobs_arrived > 5 && m.jobs_arrived < 60,
            "{}",
            m.jobs_arrived
        );
        assert!(m.mean_response_s >= m.mean_service_s);
        assert!((0.0..=1.0).contains(&m.utilization));
        assert!(m.busy_energy_j > 0.0 && m.idle_energy_j > 0.0);
        // Utilization ≈ λ · E[S] for a stable queue (within Poisson noise).
        let expect_rho = spec.lambda * m.mean_service_s;
        assert!(
            (m.utilization - expect_rho).abs() < 0.35 * expect_rho.max(0.05),
            "ρ {} vs λE[S] {expect_rho}",
            m.utilization
        );
    }

    #[test]
    fn higher_arrival_rate_raises_utilization_and_energy() {
        let mk = |lambda| JobStreamSpec {
            trace: WorkloadTrace::batch("kv", kv_demand()),
            assignments: small_cluster(2_000, 3_000),
            lambda,
            window_s: 20.0,
            seed: 7,
        };
        let slow = run_job_stream(&mk(1.0));
        let fast = run_job_stream(&mk(6.0));
        assert!(fast.utilization > 2.0 * slow.utilization);
        assert!(fast.busy_energy_j > 2.0 * slow.busy_energy_j);
        // Idle energy shrinks as the cluster fills up.
        assert!(fast.idle_energy_j < slow.idle_energy_j);
        // Waiting appears: responses exceed service times more at high λ.
        let slack_slow = slow.mean_response_s / slow.mean_service_s;
        let slack_fast = fast.mean_response_s / fast.mean_service_s;
        assert!(slack_fast > slack_slow);
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = JobStreamSpec {
            trace: WorkloadTrace::batch("kv", kv_demand()),
            assignments: small_cluster(1_000, 1_500),
            lambda: 2.0,
            window_s: 5.0,
            seed: 9,
        };
        let a = run_job_stream(&spec);
        let b = run_job_stream(&spec);
        assert_eq!(a.jobs_arrived, b.jobs_arrived);
        assert_eq!(a.total_j(), b.total_j());
    }

    #[test]
    #[should_panic(expected = "bad stream parameters")]
    fn rejects_bad_lambda() {
        let spec = JobStreamSpec {
            trace: WorkloadTrace::batch("kv", kv_demand()),
            assignments: small_cluster(100, 100),
            lambda: 0.0,
            window_s: 5.0,
            seed: 1,
        };
        let _ = run_job_stream(&spec);
    }
}
