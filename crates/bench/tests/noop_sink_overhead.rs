//! CI smoke gate for the observability layer: with the no-op sink
//! installed, the PR 1 streaming sweep must run at its usual speed, and
//! with a recording sink it must narrate itself consistently.
//!
//! The sink registry is process-global, so this binary holds a single
//! `#[test]`: parallel installing tests in one process would race.

use std::sync::Arc;
use std::time::{Duration, Instant};

use hecmix_bench::bundles;
use hecmix_core::config::ConfigSpace;
use hecmix_core::rate_table::stream_frontier_pruned;
use hecmix_workloads::ep::Ep;
use hecmix_workloads::Workload;

/// Best-of-N wall time of one pruned streaming sweep. Min (not mean) so a
/// noisy CI neighbour cannot fail the gate on its own.
fn best_of(
    n: usize,
    space: &ConfigSpace,
    models: &[hecmix_core::profile::WorkloadModel],
    w_units: f64,
) -> Duration {
    (0..n)
        .map(|_| {
            let t0 = Instant::now();
            let (frontier, _) = stream_frontier_pruned(space, models, w_units).unwrap();
            assert!(frontier.len() > 1);
            t0.elapsed()
        })
        .min()
        .unwrap()
}

#[test]
fn noop_sink_keeps_sweep_smoke_within_threshold() {
    let w = Ep::class_c();
    let models = bundles(&w);
    let space = ConfigSpace::two_type(
        models[0].platform.clone(),
        10,
        models[1].platform.clone(),
        10,
    );
    assert_eq!(space.count(), 36_380);
    let w_units = w.analysis_units() as f64;

    // Warm up caches/allocator, then time the tracing-disabled path.
    let _ = best_of(2, &space, &models, w_units);
    let bare = best_of(5, &space, &models, w_units);

    // No-op sink installed: tracing enabled, every record discarded. The
    // sweep only pays one atomic load plus per-chunk counter bumps, so
    // anything past 2x the bare time means the cheap-path contract broke.
    // (The 2x slack absorbs shared-runner noise; the real overhead is
    // within measurement jitter.)
    hecmix_obs::install(Arc::new(hecmix_obs::NoopSink));
    let noop = best_of(5, &space, &models, w_units);
    hecmix_obs::uninstall();
    assert!(
        noop <= bare * 2 + Duration::from_millis(50),
        "no-op sink slowed the sweep smoke: bare {bare:?} vs no-op {noop:?}"
    );

    // Recording sink: the same sweep must narrate itself consistently.
    let ring = Arc::new(hecmix_obs::RingSink::new(4096));
    hecmix_obs::install(ring.clone());
    let (frontier, stats) = stream_frontier_pruned(&space, &models, w_units).unwrap();
    hecmix_obs::uninstall();
    let events = ring.events();
    let pruned = events
        .iter()
        .find_map(|e| match e {
            hecmix_obs::Event::SweepPruned {
                total_points,
                kept_points,
            } => Some((*total_points, *kept_points)),
            _ => None,
        })
        .expect("sweep_pruned event missing");
    assert_eq!(pruned.0, space.count());
    assert_eq!(pruned.1, stats.evaluated_configs);
    let (scanned, kept) = events
        .iter()
        .filter_map(|e| match e {
            hecmix_obs::Event::SweepWorker { scanned, kept, .. } => Some((*scanned, *kept)),
            _ => None,
        })
        .fold((0u64, 0usize), |(s, k), (ds, dk)| (s + ds, k + dk));
    assert_eq!(
        scanned, stats.evaluated_configs,
        "workers must scan every kept point"
    );
    assert!(kept >= frontier.len());
    match events.last() {
        Some(hecmix_obs::Event::SweepEnd {
            points,
            frontier: f,
            ..
        }) => {
            assert_eq!(*points, stats.evaluated_configs);
            assert_eq!(*f, frontier.len());
        }
        other => panic!("trace must close with sweep_end, got {other:?}"),
    }
}
