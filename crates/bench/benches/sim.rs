//! Simulator benchmarks — the measurement substrate behind Tables 3–4.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use hecmix_bench::arches;
use hecmix_sim::{run_cluster, run_node, ClusterSpec, NodeRunSpec, TypeAssignment};
use hecmix_workloads::ep::Ep;
use hecmix_workloads::memcached::Memcached;
use hecmix_workloads::Workload;

fn bench_node_runs(c: &mut Criterion) {
    let [arm, amd] = arches();
    let mut group = c.benchmark_group("sim/node");
    for (w, units) in [
        (&Ep::class_c() as &dyn Workload, 1_000_000u64),
        (&Memcached::default() as &dyn Workload, 50_000),
    ] {
        let trace = w.trace();
        group.bench_function(BenchmarkId::new("arm", w.name()), |b| {
            b.iter(|| {
                black_box(run_node(
                    &arm,
                    &trace,
                    &NodeRunSpec::new(4, arm.platform.fmax(), black_box(units), 7),
                ))
            })
        });
        group.bench_function(BenchmarkId::new("amd", w.name()), |b| {
            b.iter(|| {
                black_box(run_node(
                    &amd,
                    &trace,
                    &NodeRunSpec::new(6, amd.platform.fmax(), black_box(units), 7),
                ))
            })
        });
    }
    group.finish();
}

fn bench_cluster_run(c: &mut Criterion) {
    // The Table 4 configuration: 8 ARM + 1 AMD, matched shares.
    let [arm, amd] = arches();
    let w = Ep::class_c();
    let spec = ClusterSpec {
        trace: w.trace(),
        assignments: vec![
            TypeAssignment {
                arch: arm.clone(),
                nodes: 8,
                cores: 4,
                freq: arm.platform.fmax(),
                units: 3_400_000,
            },
            TypeAssignment {
                arch: amd.clone(),
                nodes: 1,
                cores: 6,
                freq: amd.platform.fmax(),
                units: 1_600_000,
            },
        ],
        seed: 9,
    };
    let mut group = c.benchmark_group("sim");
    group.sample_size(20);
    group.bench_function("table4_cluster_8arm_1amd", |b| {
        b.iter(|| black_box(run_cluster(black_box(&spec))))
    });
    group.finish();
}

criterion_group!(benches, bench_node_runs, bench_cluster_run);
criterion_main!(benches);
