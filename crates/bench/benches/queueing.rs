//! Queueing benchmarks — the Fig. 10 machinery.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use hecmix_queueing::{simulate_md1, window_energy, MD1};

fn bench_closed_forms(c: &mut Criterion) {
    c.bench_function("queueing/md1_response", |b| {
        b.iter(|| {
            let q = MD1::new(black_box(9.75), black_box(0.026)).unwrap();
            black_box(q.mean_response_s().unwrap())
        })
    });
    c.bench_function("queueing/fig10_window_energy", |b| {
        b.iter(|| {
            black_box(
                window_energy(
                    black_box(9.75),
                    20.0,
                    black_box(0.026),
                    black_box(14.5),
                    black_box(651.0),
                )
                .unwrap(),
            )
        })
    });
}

fn bench_des_crosscheck(c: &mut Criterion) {
    let mut g = c.benchmark_group("queueing");
    g.sample_size(20);
    g.throughput(criterion::Throughput::Elements(100_000));
    g.bench_function("md1_des_100k_jobs", |b| {
        b.iter(|| black_box(simulate_md1(black_box(50.0), 0.01, 100_000, 7).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench_closed_forms, bench_des_crosscheck);
criterion_main!(benches);
