//! Characterization-pipeline benchmarks — §II-D / Figs. 2–3: turning
//! simulator runs into model inputs.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use hecmix_bench::arches;
use hecmix_profile::characterize::{characterize_workload, spi_mem_grid, CharacterizeOptions};
use hecmix_profile::characterize_power;
use hecmix_workloads::ep::Ep;
use hecmix_workloads::Workload;

fn bench_characterize(c: &mut Criterion) {
    let [arm, _amd] = arches();
    let trace = Ep::class_a().trace();
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);
    g.bench_function("characterize_workload_arm", |b| {
        b.iter(|| {
            black_box(characterize_workload(
                black_box(&arm),
                &trace,
                &CharacterizeOptions {
                    baseline_units: 100_000,
                    grid_units: 25_000,
                    seed: 1,
                },
            ))
        })
    });
    g.bench_function("fig3_spi_mem_grid_arm", |b| {
        b.iter(|| {
            black_box(spi_mem_grid(
                black_box(&arm),
                &trace,
                &CharacterizeOptions {
                    baseline_units: 50_000,
                    grid_units: 25_000,
                    seed: 2,
                },
            ))
        })
    });
    g.bench_function("power_characterization_arm", |b| {
        b.iter(|| black_box(characterize_power(black_box(&arm), 3)))
    });
    g.finish();
}

criterion_group!(benches, bench_characterize);
criterion_main!(benches);
