//! Real-kernel benchmarks: the six workload computations themselves.
//! These are the ground-truth programs whose service demands drive the
//! traces (module docs of each workload derive the demand constants from
//! these kernels' structure).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use hecmix_workloads::bitcodec::{encode_block, BitWriter};
use hecmix_workloads::blackscholes::{greeks, price_portfolio, synthetic_portfolio};
use hecmix_workloads::dsp::{fft, Complex};
use hecmix_workloads::ep::run_ep;
use hecmix_workloads::julius::frontend::{mfcc, synth_tones, FrontendConfig};
use hecmix_workloads::julius::synthetic_task;
use hecmix_workloads::memcached::Command;
use hecmix_workloads::memcached::{KvStore, Memslap};
use hecmix_workloads::micro::{run_cpumax, run_pointer_chase};
use hecmix_workloads::protocol::{decode_command, encode_command, Decoded};
use hecmix_workloads::rsa::KeyPair;
use hecmix_workloads::x264::{encode_frame, Frame};

fn bench_ep(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernels/ep");
    g.throughput(Throughput::Elements(100_000 * 2));
    g.bench_function("pairs_100k", |b| {
        b.iter(|| black_box(run_ep(black_box(100_000), 0)))
    });
    g.finish();
}

fn bench_memcached(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernels/memcached");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("ops_10k", |b| {
        b.iter_batched(
            || {
                let mut store = KvStore::new(1 << 22);
                let mut gen = Memslap::new(3, 2_000, 16, 64);
                gen.warm(&mut store);
                (store, gen)
            },
            |(mut store, mut gen)| {
                for _ in 0..10_000 {
                    black_box(store.execute(gen.next_command()));
                }
                store
            },
            criterion::BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn bench_x264(c: &mut Criterion) {
    let reference = Frame::synthetic(176, 144, 0); // QCIF for bench brevity
    let cur = Frame::synthetic(176, 144, 2);
    let mut g = c.benchmark_group("kernels/x264");
    g.sample_size(10);
    g.bench_function("encode_qcif_frame", |b| {
        b.iter(|| black_box(encode_frame(black_box(&cur), black_box(&reference), 4.0)))
    });
    g.finish();
}

fn bench_blackscholes(c: &mut Criterion) {
    let portfolio = synthetic_portfolio(10_000);
    let mut g = c.benchmark_group("kernels/blackscholes");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("options_10k", |b| {
        b.iter(|| black_box(price_portfolio(black_box(&portfolio))))
    });
    g.finish();
}

fn bench_julius(c: &mut Criterion) {
    let (hmm, obs, _) = synthetic_task(8, 12, 500, 42);
    let mut g = c.benchmark_group("kernels/julius");
    g.throughput(Throughput::Elements(500));
    g.bench_function("viterbi_500_frames", |b| {
        b.iter(|| black_box(hmm.viterbi(black_box(&obs))))
    });
    g.finish();
}

fn bench_rsa(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(11);
    let kp = KeyPair::generate(512, &mut rng);
    let msg = b"bench message";
    let sig = kp.sign(msg);
    let mut g = c.benchmark_group("kernels/rsa");
    g.bench_function("verify_512", |b| {
        b.iter(|| black_box(kp.verify(black_box(msg), &sig)))
    });
    g.bench_function("sign_512", |b| {
        b.iter(|| black_box(kp.sign(black_box(msg))))
    });
    g.finish();
}

fn bench_dsp(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernels/dsp");
    let data: Vec<Complex> = (0..1024)
        .map(|i| Complex::new((i as f64 * 0.1).sin(), 0.0))
        .collect();
    g.bench_function("fft_1024", |b| {
        b.iter_batched(
            || data.clone(),
            |mut d| {
                fft(&mut d);
                d
            },
            criterion::BatchSize::SmallInput,
        )
    });
    let cfg = FrontendConfig::default();
    let audio = synth_tones(&[(440.0, 16_000)], cfg.sample_rate);
    g.throughput(Throughput::Elements(16_000));
    g.bench_function("mfcc_1s_audio", |b| {
        b.iter(|| black_box(mfcc(black_box(&audio), &cfg)))
    });
    g.finish();
}

fn bench_codecs(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernels/codecs");
    // Entropy coding: one mixed 8x8 block.
    let mut block = [[0i32; 8]; 8];
    for (r, row) in block.iter_mut().enumerate() {
        for (cc, v) in row.iter_mut().enumerate() {
            *v = if (r + cc) % 3 == 0 {
                (r as i32 - 3) * (cc as i32 + 1)
            } else {
                0
            };
        }
    }
    g.bench_function("entropy_encode_block", |b| {
        b.iter(|| {
            let mut w = BitWriter::new();
            encode_block(black_box(&block), &mut w);
            black_box(w.bit_len())
        })
    });
    // memcached text protocol round-trip.
    let cmd = Command::Set("some_key_0001".into(), bytes::Bytes::from(vec![7u8; 512]));
    let wire = encode_command(&cmd);
    g.throughput(Throughput::Bytes(wire.len() as u64));
    g.bench_function("protocol_decode_set_512B", |b| {
        b.iter(|| match decode_command(black_box(&wire)) {
            Decoded::Done(c, used) => black_box((c, used)),
            _ => unreachable!(),
        })
    });
    g.finish();
}

fn bench_greeks(c: &mut Criterion) {
    let portfolio = synthetic_portfolio(1_000);
    let mut g = c.benchmark_group("kernels/blackscholes");
    g.throughput(Throughput::Elements(1_000));
    g.bench_function("greeks_1k", |b| {
        b.iter(|| {
            portfolio
                .iter()
                .map(|o| black_box(greeks(o)).delta)
                .sum::<f64>()
        })
    });
    g.finish();
}

fn bench_micro(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernels/micro");
    g.bench_function("cpumax_100k", |b| {
        b.iter(|| black_box(run_cpumax(black_box(100_000))))
    });
    g.bench_function("pointer_chase_64k_steps", |b| {
        b.iter(|| black_box(run_pointer_chase(black_box(1 << 16), 65_536)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_ep,
    bench_memcached,
    bench_x264,
    bench_blackscholes,
    bench_julius,
    bench_rsa,
    bench_dsp,
    bench_codecs,
    bench_greeks,
    bench_micro
);
criterion_main!(benches);
