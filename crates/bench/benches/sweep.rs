//! Configuration-space sweep benchmarks — the compute behind Figs. 4–9.
//!
//! `fig4_pareto_ep` / `fig5_pareto_memcached` regenerate the paper's
//! 36,380-point sweeps end to end; `frontier_only` isolates the Pareto
//! derivation; `fig6_budget_rung` times one rung of the 1 kW ladder.
//! The `streaming` group runs the same frontiers through the rate-table
//! engine (old path vs new path), plus a 128-node space (~740k points)
//! that the materializing path would need hundreds of MB to hold.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use hecmix_bench::bundles;
use hecmix_core::budget::BudgetMix;
use hecmix_core::config::ConfigSpace;
use hecmix_core::pareto::ParetoFrontier;
use hecmix_core::rate_table::{stream_frontier, stream_frontier_pruned};
use hecmix_core::sweep::{sweep_space, EvaluatedConfig};
use hecmix_workloads::ep::Ep;
use hecmix_workloads::memcached::Memcached;
use hecmix_workloads::Workload;

fn bench_full_sweeps(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep");
    group.sample_size(10);
    for w in [
        &Ep::class_c() as &dyn Workload,
        &Memcached::default() as &dyn Workload,
    ] {
        let models = bundles(w);
        let space = ConfigSpace::two_type(
            models[0].platform.clone(),
            10,
            models[1].platform.clone(),
            10,
        );
        assert_eq!(space.count(), 36_380);
        let fig = if w.name() == "ep" { "fig4" } else { "fig5" };
        group.bench_function(BenchmarkId::new(format!("{fig}_pareto"), w.name()), |b| {
            b.iter(|| {
                let evaluated =
                    sweep_space(black_box(&space), &models, w.analysis_units() as f64).unwrap();
                black_box(ParetoFrontier::from_points(
                    evaluated
                        .iter()
                        .map(EvaluatedConfig::to_pareto_point)
                        .collect(),
                ))
            })
        });
    }
    group.finish();
}

fn bench_frontier_only(c: &mut Criterion) {
    let w = Ep::class_c();
    let models = bundles(&w);
    let space = ConfigSpace::two_type(
        models[0].platform.clone(),
        10,
        models[1].platform.clone(),
        10,
    );
    let evaluated = sweep_space(&space, &models, w.analysis_units() as f64).unwrap();
    let points: Vec<_> = evaluated
        .iter()
        .map(EvaluatedConfig::to_pareto_point)
        .collect();
    c.bench_function("sweep/frontier_only_36380", |b| {
        b.iter(|| black_box(ParetoFrontier::from_points(black_box(points.clone()))))
    });
}

fn bench_budget_rung(c: &mut Criterion) {
    let w = Memcached::default();
    let models = bundles(&w);
    let mix = BudgetMix {
        low_nodes: 16,
        high_nodes: 14,
    };
    let space = mix.config_space(&models[0].platform, &models[1].platform);
    let mut group = c.benchmark_group("sweep");
    group.sample_size(10);
    group.bench_function("fig6_budget_rung_16_14", |b| {
        b.iter(|| {
            black_box(sweep_space(black_box(&space), &models, w.analysis_units() as f64).unwrap())
        })
    });
    group.finish();
}

fn bench_pruned_vs_exhaustive(c: &mut Criterion) {
    // The configuration-space reduction the paper leaves open: dominance
    // pruning typically evaluates ~1-3 % of the space for the same
    // frontier.
    let w = Ep::class_c();
    let models = bundles(&w);
    let space = ConfigSpace::two_type(
        models[0].platform.clone(),
        10,
        models[1].platform.clone(),
        10,
    );
    let mut group = c.benchmark_group("sweep");
    group.sample_size(10);
    group.bench_function("fig4_pruned_frontier", |b| {
        b.iter(|| {
            black_box(
                hecmix_core::sweep::sweep_frontier_pruned(
                    black_box(&space),
                    &models,
                    w.analysis_units() as f64,
                )
                .unwrap(),
            )
        })
    });
    group.finish();
}

fn bench_streaming_engine(c: &mut Criterion) {
    // New rate-table path on the exact workloads the old-path benches
    // above time, so the groups read as before/after pairs.
    let w = Ep::class_c();
    let models = bundles(&w);
    let units = w.analysis_units() as f64;
    let space = ConfigSpace::two_type(
        models[0].platform.clone(),
        10,
        models[1].platform.clone(),
        10,
    );
    let mut group = c.benchmark_group("streaming");
    group.sample_size(10);
    group.bench_function("fig4_frontier_36380", |b| {
        b.iter(|| black_box(stream_frontier(black_box(&space), &models, units).unwrap()))
    });
    group.bench_function("fig4_frontier_36380_pruned", |b| {
        b.iter(|| black_box(stream_frontier_pruned(black_box(&space), &models, units).unwrap()))
    });

    // Beyond-paper scale: 128 low-power + 16 high-performance nodes,
    // ~740k configurations. The old path would materialize every point
    // and outcome; the fold keeps only per-chunk partial frontiers.
    let mc = Memcached::default();
    let mc_models = bundles(&mc);
    let mc_units = mc.analysis_units() as f64;
    let mix = BudgetMix {
        low_nodes: 128,
        high_nodes: 16,
    };
    let big = mix.config_space(&mc_models[0].platform, &mc_models[1].platform);
    group.bench_function(
        BenchmarkId::new("budget_128_16", format!("{}_pts", big.count())),
        |b| b.iter(|| black_box(stream_frontier(black_box(&big), &mc_models, mc_units).unwrap())),
    );
    group.bench_function(
        BenchmarkId::new("budget_128_16_pruned", format!("{}_pts", big.count())),
        |b| {
            b.iter(|| {
                black_box(stream_frontier_pruned(black_box(&big), &mc_models, mc_units).unwrap())
            })
        },
    );
    group.finish();
}

criterion_group!(
    benches,
    bench_full_sweeps,
    bench_frontier_only,
    bench_budget_rung,
    bench_pruned_vs_exhaustive,
    bench_streaming_engine
);
criterion_main!(benches);
