//! Model-kernel benchmarks: the analytical equations the whole evaluation
//! is built from. One configuration evaluation (`predict` + `energy` +
//! `mix_and_match`) is the inner loop of every figure's sweep.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use hecmix_bench::bundles;
use hecmix_core::config::{ClusterPoint, NodeConfig};
use hecmix_core::energy::EnergyModel;
use hecmix_core::exec_time::ExecTimeModel;
use hecmix_core::mix_match::{evaluate, mix_and_match, TypeDeployment};
use hecmix_workloads::ep::Ep;
use hecmix_workloads::memcached::Memcached;
use hecmix_workloads::Workload;

fn bench_exec_time(c: &mut Criterion) {
    let models = bundles(&Ep::class_c());
    let em = ExecTimeModel::new(&models[0]);
    let cfg = NodeConfig::maxed(&models[0].platform, 8);
    c.bench_function("model/exec_time_predict", |b| {
        b.iter(|| black_box(em.predict(black_box(&cfg), black_box(5e7))))
    });
}

fn bench_energy(c: &mut Criterion) {
    let models = bundles(&Ep::class_c());
    let em = ExecTimeModel::new(&models[0]);
    let en = EnergyModel::new(&models[0]);
    let cfg = NodeConfig::maxed(&models[0].platform, 8);
    let tb = em.predict(&cfg, 5e7);
    c.bench_function("model/energy_price", |b| {
        b.iter(|| black_box(en.energy(black_box(&cfg), black_box(&tb), tb.total)))
    });
}

fn bench_mix_match(c: &mut Criterion) {
    for w in [
        &Ep::class_c() as &dyn Workload,
        &Memcached::default() as &dyn Workload,
    ] {
        let models = bundles(w);
        let point = ClusterPoint::new(vec![
            TypeDeployment::maxed(&models[0].platform, 8),
            TypeDeployment::maxed(&models[1].platform, 2),
        ]);
        c.bench_function(format!("model/mix_and_match/{}", w.name()), |b| {
            b.iter(|| {
                black_box(
                    mix_and_match(black_box(&point), &models, w.analysis_units() as f64).unwrap(),
                )
            })
        });
        c.bench_function(format!("model/evaluate_full/{}", w.name()), |b| {
            b.iter(|| {
                black_box(evaluate(black_box(&point), &models, w.analysis_units() as f64).unwrap())
            })
        });
    }
}

criterion_group!(benches, bench_exec_time, bench_energy, bench_mix_match);
criterion_main!(benches);
