//! Shared fixtures for the hecmix Criterion benchmarks.
//!
//! The benches map onto the paper artifacts they power:
//!
//! | bench target | exercises | paper artifact |
//! |---|---|---|
//! | `model` | Eq. 1–19 evaluation, mix-and-match solve | every figure's inner loop |
//! | `sweep` | full configuration-space sweeps + Pareto frontiers | Figs. 4–9 |
//! | `sim` | discrete-event node/cluster simulation | Tables 3–4 measurements |
//! | `workload_kernels` | the real workload computations | workload ground truth |
//! | `queueing` | M/D/1 closed forms and DES | Fig. 10 |
//! | `pipeline` | characterization → model inputs | §II-D, Figs. 2–3 |

#![warn(missing_docs)]

use hecmix_core::profile::WorkloadModel;
use hecmix_profile::characterize_pair;
use hecmix_sim::{reference_amd_arch, reference_arm_arch, NodeArch};
use hecmix_workloads::Workload;

/// The two reference archetypes, `[ARM, AMD]`.
#[must_use]
pub fn arches() -> [NodeArch; 2] {
    [reference_arm_arch(), reference_amd_arch()]
}

/// Characterized model bundles for a workload, `[ARM, AMD]` order.
#[must_use]
pub fn bundles(w: &dyn Workload) -> Vec<WorkloadModel> {
    let [arm, amd] = arches();
    characterize_pair(&arm, &amd, &w.trace(), 0xBE7C)
}
