//! `hecmix` — command-line front door to the heterogeneous-cluster
//! energy model.
//!
//! ```text
//! hecmix recommend    --workload memcached --deadline-ms 40 [--arm 10] [--amd 10]
//! hecmix frontier     --workload ep [--arm 10] [--amd 10] [--pruned]
//! hecmix evaluate     --workload ep --arm-nodes 8 --amd-nodes 1 [--units N]
//! hecmix characterize --out DIR [--workload NAME]
//! hecmix queueing     --workload memcached --lambda 2.0 --slo-ms 450 [--p99-ms 900]
//! hecmix selfcheck    [--seed 42] [--fuzz-iters 200]
//! hecmix serve        [--addr 127.0.0.1:7077] [--models DIR] [--workloads a,b]
//! hecmix loadgen      [--addr 127.0.0.1:7077] [--requests 500] [--concurrency 8]
//! ```
//!
//! Everything runs against the simulated reference testbed (see DESIGN.md);
//! `characterize` exports reusable `.model` bundles. `serve` keeps the
//! planner resident as an HTTP daemon (see `crates/serve`); `loadgen` is
//! its closed-loop benchmark client.

use std::collections::HashMap;
use std::process::ExitCode;

use hecmix_core::config::{ClusterPoint, ConfigSpace};
use hecmix_core::mix_match::{evaluate, mix_and_match, TypeDeployment};
use hecmix_core::pareto::ParetoFrontier;
use hecmix_core::sweep::{sweep_frontier_pruned, sweep_space, EvaluatedConfig};
use hecmix_experiments::lab::Lab;
use hecmix_queueing::dispatch::{
    best_choice, best_choice_tail, ConfigChoice, TailDesConfig, TailTarget,
};
use hecmix_workloads::{workload_by_name, Workload};

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        usage();
        return ExitCode::FAILURE;
    };
    let mut flags: HashMap<String, String> = HashMap::new();
    let mut key: Option<String> = None;
    for a in args {
        if let Some(stripped) = a.strip_prefix("--") {
            if let Some(k) = key.take() {
                flags.insert(k, "true".into()); // boolean flag
            }
            key = Some(stripped.to_owned());
        } else if let Some(k) = key.take() {
            flags.insert(k, a);
        } else {
            eprintln!("unexpected argument: {a}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(k) = key.take() {
        flags.insert(k, "true".into());
    }

    match cmd.as_str() {
        "recommend" => cmd_recommend(&flags),
        "frontier" => cmd_frontier(&flags),
        "evaluate" => cmd_evaluate(&flags),
        "characterize" => cmd_characterize(&flags),
        "queueing" => cmd_queueing(&flags),
        "selfcheck" => cmd_selfcheck(&flags),
        "sched" => cmd_sched(&flags),
        "serve" => cmd_serve(&flags),
        "gateway" => cmd_gateway(&flags),
        "loadgen" => cmd_loadgen(&flags),
        "fleetbench" => cmd_fleetbench(&flags),
        "help" | "--help" | "-h" => {
            usage();
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown command: {other}");
            usage();
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!(
        "hecmix — energy-efficient heterogeneous cluster modeling (ICPP 2014 reproduction)

commands:
  recommend    --workload NAME --deadline-ms D [--arm N] [--amd N] [--models DIR]
  frontier     --workload NAME [--arm N] [--amd N] [--pruned]
  evaluate     --workload NAME --arm-nodes N --amd-nodes M [--units W]
  characterize --out DIR [--workload NAME]
  queueing     --workload NAME --lambda JOBS_PER_S --slo-ms R [--window-s S]
               [--p99-ms R]  (plan for a p99 deadline via DES instead of the mean SLO)
  selfcheck    [--seed N] [--fuzz-iters N]
  sched        [--workloads NAME,NAME,...] [--workload NAME (dominant)]
               [--alpha A] [--arm N] [--amd N] [--days N] [--seed N]
               [--crashes N] [--trace FILE] [--dump-trace FILE]
  serve        [--addr HOST:PORT] [--io-threads N] [--workers N] [--queue N]
               [--cache N] [--max-conns N] [--models DIR]
               [--workloads NAME,NAME,...] [--sched-alpha A]
               [--sched-arm N] [--sched-amd N] [--sched-queue N]
  gateway      --replicas HOST:PORT,HOST:PORT,... [--addr HOST:PORT]
               [--io-threads N] [--workers N] [--queue N] [--max-conns N]
               [--seed N] [--models DIR] [--workloads NAME,NAME,...]
  loadgen      [--addr HOST:PORT] [--requests N | --duration SECS]
               [--warmup SECS] [--open-loop RPS] [--concurrency N]
               [--mix P:F:W] [--workload NAME] [--arm N] [--arm-sweep N]
               [--amd N] [--budget W] [--deadline-ms D] [--bench-out FILE]
               [--gate-tail-ratio X] [--gate-min-ok N]
  fleetbench   [--replicas N] [--kill-replica I] [--kill-at SECS] [--seed N]
               [--duration SECS] [--warmup SECS] [--concurrency N]
               [--arm-sweep N] [--gate-tail-ratio X] [--gate-min-ok N]
               [--bench-out FILE]

workloads: ep memcached x264 blackscholes julius rsa-2048"
    );
}

fn get_workload(
    flags: &HashMap<String, String>,
) -> Result<Box<dyn Workload + Send + Sync>, ExitCode> {
    let name = flags.get("workload").map_or("memcached", String::as_str);
    workload_by_name(name).ok_or_else(|| {
        eprintln!(
            "unknown workload {name:?}; one of: ep memcached x264 blackscholes julius rsa-2048"
        );
        ExitCode::FAILURE
    })
}

/// Load `[ARM, AMD]` bundles for a workload from a `--models` directory
/// written by `hecmix characterize` (falls back to `None` when the flag is
/// absent, in which case callers characterize on the simulated testbed).
fn load_models(
    flags: &HashMap<String, String>,
    workload: &str,
) -> Result<Option<Vec<hecmix_core::profile::WorkloadModel>>, ExitCode> {
    let Some(dir) = flags.get("models") else {
        return Ok(None);
    };
    let dir = std::path::Path::new(dir);
    let mut out = Vec::new();
    for platform in ["cortex-a9", "k10"] {
        let path = dir.join(format!("{workload}-{platform}.model"));
        match hecmix_core::persist::load(&path) {
            Ok(m) => out.push(m),
            Err(e) => {
                eprintln!("cannot load {}: {e}", path.display());
                eprintln!(
                    "(generate bundles with: hecmix characterize --out {})",
                    dir.display()
                );
                return Err(ExitCode::FAILURE);
            }
        }
    }
    Ok(Some(out))
}

fn get_num<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, ExitCode> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| {
            eprintln!("--{key} needs a number, got {v:?}");
            ExitCode::FAILURE
        }),
    }
}

fn cmd_recommend(flags: &HashMap<String, String>) -> ExitCode {
    let w = match get_workload(flags) {
        Ok(w) => w,
        Err(c) => return c,
    };
    let (Ok(deadline_ms), Ok(arm), Ok(amd)) = (
        get_num::<f64>(flags, "deadline-ms", 100.0),
        get_num::<u32>(flags, "arm", 10),
        get_num::<u32>(flags, "amd", 10),
    ) else {
        return ExitCode::FAILURE;
    };
    let lab = Lab::new();
    let models = match load_models(flags, w.name()) {
        Ok(Some(m)) => std::sync::Arc::new(m),
        Ok(None) => lab.models(w.as_ref()),
        Err(c) => return c,
    };
    let units = w.analysis_units() as f64;
    let space = ConfigSpace::two_type(lab.arm.platform.clone(), arm, lab.amd.platform.clone(), amd);
    let (frontier, stats) = match sweep_frontier_pruned(&space, &models, units) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("sweep failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "{}: searched {} of {} configurations (pruned), frontier has {} points",
        w.name(),
        stats.evaluated_configs,
        stats.full_space,
        frontier.len()
    );
    match frontier.min_energy_for_deadline(deadline_ms / 1e3) {
        None => {
            println!(
                "no configuration meets {deadline_ms} ms; fastest achievable is {:.1} ms",
                frontier.min_time_s().unwrap_or(f64::NAN) * 1e3
            );
            ExitCode::FAILURE
        }
        Some(best) => {
            println!("recommended: {}", best.config.label(&lab.platforms()));
            println!(
                "  service time {:.1} ms, energy {:.2} J/job",
                best.time_s * 1e3,
                best.energy_j
            );
            if let Ok(split) = mix_and_match(&best.config, &models, units) {
                for (share, m) in split.shares.iter().zip(models.iter()) {
                    if *share > 0.0 {
                        println!(
                            "  dispatch {:.1} % of the job to {}",
                            100.0 * share / units,
                            m.platform.name
                        );
                    }
                }
            }
            ExitCode::SUCCESS
        }
    }
}

fn cmd_frontier(flags: &HashMap<String, String>) -> ExitCode {
    let w = match get_workload(flags) {
        Ok(w) => w,
        Err(c) => return c,
    };
    let (Ok(arm), Ok(amd)) = (
        get_num::<u32>(flags, "arm", 10),
        get_num::<u32>(flags, "amd", 10),
    ) else {
        return ExitCode::FAILURE;
    };
    let pruned = flags.contains_key("pruned");
    let lab = Lab::new();
    let models = lab.models(w.as_ref());
    let units = w.analysis_units() as f64;
    let space = ConfigSpace::two_type(lab.arm.platform.clone(), arm, lab.amd.platform.clone(), amd);
    let frontier = if pruned {
        match sweep_frontier_pruned(&space, &models, units) {
            Ok((f, stats)) => {
                eprintln!(
                    "pruned sweep: {} of {} configurations evaluated",
                    stats.evaluated_configs, stats.full_space
                );
                f
            }
            Err(e) => {
                eprintln!("sweep failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        match sweep_space(&space, &models, units) {
            Ok(evaluated) => ParetoFrontier::from_points(
                evaluated
                    .iter()
                    .map(EvaluatedConfig::to_pareto_point)
                    .collect(),
            ),
            Err(e) => {
                eprintln!("sweep failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    println!("deadline_ms,energy_j,config");
    for p in &frontier.points {
        println!(
            "{:.3},{:.4},{}",
            p.time_s * 1e3,
            p.energy_j,
            p.config.label(&lab.platforms()).replace(',', ";")
        );
    }
    ExitCode::SUCCESS
}

fn cmd_evaluate(flags: &HashMap<String, String>) -> ExitCode {
    let w = match get_workload(flags) {
        Ok(w) => w,
        Err(c) => return c,
    };
    let (Ok(arm_nodes), Ok(amd_nodes)) = (
        get_num::<u32>(flags, "arm-nodes", 8),
        get_num::<u32>(flags, "amd-nodes", 1),
    ) else {
        return ExitCode::FAILURE;
    };
    let Ok(units) = get_num::<f64>(flags, "units", w.analysis_units() as f64) else {
        return ExitCode::FAILURE;
    };
    let lab = Lab::new();
    let models = lab.models(w.as_ref());
    let point = ClusterPoint::new(vec![
        TypeDeployment::maxed(&lab.arm.platform, arm_nodes),
        TypeDeployment::maxed(&lab.amd.platform, amd_nodes),
    ]);
    match evaluate(&point, &models, units) {
        Ok(out) => {
            println!(
                "{}: {} units on {}",
                w.name(),
                units,
                point.label(&lab.platforms())
            );
            println!("  time   {:.2} ms", out.time_s * 1e3);
            println!(
                "  energy {:.3} J  (core {:.3}, mem {:.3}, io {:.3}, idle {:.3})",
                out.energy_j,
                out.energy.e_core,
                out.energy.e_mem,
                out.energy.e_io,
                out.energy.e_idle
            );
            for (share, m) in out.shares.iter().zip(models.iter()) {
                if *share > 0.0 {
                    println!("  split  {:>12.0} units -> {}", share, m.platform.name);
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("evaluation failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_characterize(flags: &HashMap<String, String>) -> ExitCode {
    let Some(out_dir) = flags.get("out") else {
        eprintln!("characterize needs --out DIR");
        return ExitCode::FAILURE;
    };
    let dir = std::path::Path::new(out_dir);
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("cannot create {}: {e}", dir.display());
        return ExitCode::FAILURE;
    }
    let lab = Lab::new();
    let workloads: Vec<Box<dyn Workload + Send + Sync>> = match flags.get("workload") {
        Some(name) => match workload_by_name(name) {
            Some(w) => vec![w],
            None => {
                eprintln!("unknown workload {name:?}");
                return ExitCode::FAILURE;
            }
        },
        None => hecmix_workloads::all_workloads(),
    };
    for w in workloads {
        let models = lab.models(w.as_ref());
        for m in models.iter() {
            let short = m.platform.name.split_whitespace().last().unwrap_or("node");
            let path = dir.join(format!("{}-{}.model", w.name(), short.to_lowercase()));
            match hecmix_core::persist::save(m, &path) {
                Ok(()) => println!("wrote {}", path.display()),
                Err(e) => {
                    eprintln!("failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    ExitCode::SUCCESS
}

fn cmd_selfcheck(flags: &HashMap<String, String>) -> ExitCode {
    let (Ok(seed), Ok(fuzz_iters)) = (
        get_num::<u64>(flags, "seed", 42),
        get_num::<u32>(flags, "fuzz-iters", 200),
    ) else {
        return ExitCode::FAILURE;
    };
    println!("self-check (seed {seed})");
    let report = hecmix_check::run_all(seed);
    for r in &report.results {
        if r.passed() {
            println!("  PASS {}", r.name);
        } else {
            println!("  FAIL {} ({} violations)", r.name, r.violations.len());
            for v in &r.violations {
                println!("       {v}");
            }
        }
    }
    let (space, models, _) = hecmix_check::reference_scenario();
    let fuzz_cfg = hecmix_check::fuzz::FuzzConfig {
        seed,
        iters: fuzz_iters,
        ..hecmix_check::fuzz::FuzzConfig::default()
    };
    let fuzz_failure = hecmix_check::fuzz::fuzz(&space, &models, &fuzz_cfg);
    match &fuzz_failure {
        None => println!("  PASS fuzz ({fuzz_iters} random configurations)"),
        Some(d) => {
            println!("  FAIL fuzz: {} — {}", d.check, d.detail);
            println!("       minimal reproducer: {}", d.to_json(seed));
        }
    }
    println!(
        "{} checks, {} violations in {:.2} s",
        report.checks() + 1,
        report.violation_count() + u64::from(fuzz_failure.is_some()),
        report.wall_s
    );
    if report.is_clean() && fuzz_failure.is_none() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Build the daemon's model inventory plus the matching `/reload` closure.
/// `--models DIR` loads persisted bundles; otherwise the named workloads
/// (default: all) are characterized on the simulated testbed.
fn build_serve_store(
    flags: &HashMap<String, String>,
) -> Result<
    (
        hecmix_serve::ModelStore,
        std::sync::Arc<hecmix_serve::api::ReloadFn>,
    ),
    ExitCode,
> {
    let only: Vec<String> = flags
        .get("workloads")
        .map(|s| {
            s.split(',')
                .map(|w| w.trim().to_owned())
                .filter(|w| !w.is_empty())
                .collect()
        })
        .unwrap_or_default();

    if let Some(dir) = flags.get("models") {
        let dir = std::path::PathBuf::from(dir);
        let store = hecmix_serve::ModelStore::from_dir(&dir, &only).map_err(|e| {
            eprintln!("cannot load models from {}: {e}", dir.display());
            ExitCode::FAILURE
        })?;
        let reload: std::sync::Arc<hecmix_serve::api::ReloadFn> =
            std::sync::Arc::new(move || hecmix_serve::ModelStore::from_dir(&dir, &only));
        return Ok((store, reload));
    }

    let build = move |only: &[String]| -> Result<hecmix_serve::ModelStore, String> {
        let lab = Lab::new();
        let workloads: Vec<Box<dyn Workload + Send + Sync>> = if only.is_empty() {
            hecmix_workloads::all_workloads()
        } else {
            only.iter()
                .map(|name| {
                    workload_by_name(name).ok_or_else(|| format!("unknown workload {name:?}"))
                })
                .collect::<Result<_, _>>()?
        };
        let mut store = hecmix_serve::ModelStore::new();
        for w in workloads {
            store.insert(w.name(), lab.models(w.as_ref()).to_vec());
        }
        Ok(store)
    };
    let store = build(&only).map_err(|e| {
        eprintln!("{e}");
        ExitCode::FAILURE
    })?;
    let reload: std::sync::Arc<hecmix_serve::api::ReloadFn> =
        std::sync::Arc::new(move || build(&only));
    Ok((store, reload))
}

fn cmd_sched(flags: &HashMap<String, String>) -> ExitCode {
    use hecmix_experiments::scheduler::{scheduler_pool, scheduler_trace};
    use hecmix_sched::{run_static_mix_and_match, SchedConfig, Scheduler};

    let (Ok(alpha), Ok(arm), Ok(amd), Ok(days), Ok(seed), Ok(crashes)) = (
        get_num::<f64>(flags, "alpha", 0.5),
        get_num::<u32>(flags, "arm", 6),
        get_num::<u32>(flags, "amd", 5),
        get_num::<u32>(flags, "days", 1),
        get_num::<u64>(flags, "seed", 7),
        get_num::<usize>(flags, "crashes", 0),
    ) else {
        return ExitCode::FAILURE;
    };
    let class_list = flags
        .get("workloads")
        .map_or("memcached,julius", String::as_str);
    let mut workloads: Vec<Box<dyn Workload + Send + Sync>> = Vec::new();
    for name in class_list.split(',').filter(|s| !s.is_empty()) {
        let Some(w) = workload_by_name(name) else {
            eprintln!(
                "unknown workload {name:?}; one of: ep memcached x264 blackscholes julius rsa-2048"
            );
            return ExitCode::FAILURE;
        };
        workloads.push(w);
    }
    if workloads.is_empty() {
        eprintln!("--workloads needs at least one class");
        return ExitCode::FAILURE;
    }

    let lab = Lab::new();
    let refs: Vec<&dyn Workload> = workloads
        .iter()
        .map(|w| w.as_ref() as &dyn Workload)
        .collect();
    let pool = scheduler_pool(&lab, &refs, vec![arm, amd]);
    let dominant_name = flags
        .get("workload")
        .cloned()
        .unwrap_or_else(|| pool.classes[0].name.clone());
    let dominant = match pool.class_index(&dominant_name) {
        Ok(i) => i,
        Err(e) => {
            eprintln!("--workload must name one of the pool classes: {e}");
            return ExitCode::FAILURE;
        }
    };

    let jobs = if let Some(path) = flags.get("trace") {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let names = pool.class_names();
        match hecmix_sched::parse_trace(&text, &names) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("malformed trace {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        scheduler_trace(&pool, dominant, days, seed)
    };
    if jobs.is_empty() {
        eprintln!("trace has no jobs");
        return ExitCode::FAILURE;
    }
    if let Some(path) = flags.get("dump-trace") {
        let text = hecmix_sched::format_trace(&jobs, &pool.class_names());
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("trace ({} jobs) written to {path}", jobs.len());
    }

    let sched = match Scheduler::new(
        pool.clone(),
        SchedConfig {
            alpha,
            max_outstanding: jobs.len().max(1),
            ..SchedConfig::default()
        },
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bad scheduler config: {e}");
            return ExitCode::FAILURE;
        }
    };
    let run = if crashes > 0 {
        let horizon = jobs
            .iter()
            .map(|j| j.arrival_s)
            .fold(f64::from(days) * 24.0 * 60.0, f64::max);
        let faults = hecmix_sim::FaultSchedule::random_crashes(
            seed ^ 0xFA17,
            &pool.counts,
            crashes,
            horizon,
        );
        sched.run_faulted(&jobs, &faults)
    } else {
        sched.run(&jobs)
    };
    let out = match run {
        Ok(o) => o,
        Err(e) => {
            eprintln!("scheduler run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let baseline = match run_static_mix_and_match(&pool, &jobs) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("baseline run failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    let nodes: Vec<String> = pool
        .platforms
        .iter()
        .zip(&pool.counts)
        .map(|(p, c)| format!("{c}x {}", p.name))
        .collect();
    println!(
        "online scheduler: {} jobs ({} dominant) on {} — alpha {alpha:.2}, seed {seed}{}",
        jobs.len(),
        pool.classes[dominant].name,
        nodes.join(" + "),
        if crashes > 0 {
            format!(", {crashes} seeded crashes")
        } else {
            String::new()
        }
    );
    println!(
        "  admitted {}/{} (rejected {}), completed {}, failed {}, migrations {}",
        out.admitted, out.submitted, out.rejected, out.completed, out.failed, out.migrations
    );
    println!(
        "  energy {:.0} J (active {:.0} + idle {:.0}), misses {} (rate {:.4}), makespan {:.0} s",
        out.energy_j(),
        out.active_energy_j,
        out.idle_energy_j,
        out.misses,
        out.miss_rate(),
        out.makespan_s
    );
    println!(
        "static mix-and-match baseline: energy {:.0} J, misses {} (rate {:.4}), makespan {:.0} s",
        baseline.energy_j(),
        baseline.misses,
        baseline.miss_rate(),
        baseline.makespan_s
    );
    let delta = (out.energy_j() - baseline.energy_j()) / baseline.energy_j() * 100.0;
    println!(
        "  scheduler vs baseline: {delta:+.1}% energy at {} vs {} misses",
        out.misses, baseline.misses
    );
    ExitCode::SUCCESS
}

fn cmd_serve(flags: &HashMap<String, String>) -> ExitCode {
    let defaults = hecmix_serve::ServeConfig::default();
    let addr = flags
        .get("addr")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7077".to_owned());
    let (Ok(io_threads), Ok(workers), Ok(queue), Ok(cache), Ok(max_conns)) = (
        get_num::<usize>(flags, "io-threads", defaults.io_threads),
        get_num::<usize>(flags, "workers", defaults.workers),
        get_num::<usize>(flags, "queue", defaults.queue_capacity),
        get_num::<usize>(flags, "cache", 256),
        get_num::<usize>(flags, "max-conns", defaults.max_connections),
    ) else {
        return ExitCode::FAILURE;
    };
    if io_threads == 0 || workers == 0 || queue == 0 || max_conns == 0 {
        eprintln!("--io-threads, --workers, --queue, and --max-conns must be >= 1");
        return ExitCode::FAILURE;
    }

    let sched_defaults = hecmix_serve::SchedParams::default();
    let (Ok(sched_alpha), Ok(sched_arm), Ok(sched_amd), Ok(sched_queue)) = (
        get_num::<f64>(flags, "sched-alpha", sched_defaults.alpha),
        get_num::<u32>(flags, "sched-arm", sched_defaults.counts[0]),
        get_num::<u32>(flags, "sched-amd", sched_defaults.counts[1]),
        get_num::<usize>(flags, "sched-queue", sched_defaults.max_outstanding),
    ) else {
        return ExitCode::FAILURE;
    };

    let (store, reload) = match build_serve_store(flags) {
        Ok(x) => x,
        Err(c) => return c,
    };
    let names = store.names().join(" ");
    let sched_params = hecmix_serve::SchedParams {
        alpha: sched_alpha,
        max_outstanding: sched_queue,
        counts: vec![sched_arm, sched_amd],
    };
    let sched = match hecmix_serve::OnlineSched::from_store(&store, &sched_params) {
        Ok(s) => Some(std::sync::Arc::new(s)),
        Err(e) => {
            eprintln!("live scheduler disabled ({e}); /submit and /jobz will answer 503");
            None
        }
    };
    let state = std::sync::Arc::new(hecmix_serve::AppState::new(store, io_threads, cache));
    state.set_reload(reload);
    if let Some(s) = sched {
        state.set_sched(s);
    }
    let config = hecmix_serve::ServeConfig {
        addr,
        io_threads,
        workers,
        queue_capacity: queue,
        max_connections: max_conns,
        ..defaults
    };
    let handle = match hecmix_serve::start(config, std::sync::Arc::clone(&state)) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("cannot start daemon: {e}");
            return ExitCode::FAILURE;
        }
    };

    hecmix_serve::signal::install();
    println!(
        "hecmix-serve listening on http://{} ({io_threads} io threads, {workers} workers, \
         queue {queue}, cache {cache}, max {max_conns} conns)",
        handle.addr()
    );
    println!("workloads: {names}");
    println!("endpoints: POST /plan /frontier /whatif /reload /submit — GET /healthz /statz /jobz");
    while !hecmix_serve::signal::interrupted() {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    eprintln!("signal received; draining in-flight requests");
    handle.shutdown();
    handle.join();
    eprintln!("drained; bye");
    ExitCode::SUCCESS
}

fn cmd_gateway(flags: &HashMap<String, String>) -> ExitCode {
    use hecmix_serve::fleet::{Fleet, FleetConfig};

    let Some(replica_list) = flags.get("replicas") else {
        eprintln!("gateway needs --replicas HOST:PORT,HOST:PORT,...");
        return ExitCode::FAILURE;
    };
    let replicas: Vec<String> = replica_list
        .split(',')
        .map(|a| a.trim().to_owned())
        .filter(|a| !a.is_empty())
        .collect();
    if replicas.is_empty() {
        eprintln!("--replicas needs at least one address");
        return ExitCode::FAILURE;
    }

    let defaults = hecmix_serve::ServeConfig::default();
    let fleet_defaults = FleetConfig::default();
    let addr = flags
        .get("addr")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7078".to_owned());
    let (Ok(io_threads), Ok(workers), Ok(queue), Ok(max_conns), Ok(seed)) = (
        get_num::<usize>(flags, "io-threads", defaults.io_threads),
        get_num::<usize>(flags, "workers", defaults.workers),
        get_num::<usize>(flags, "queue", defaults.queue_capacity),
        get_num::<usize>(flags, "max-conns", defaults.max_connections),
        get_num::<u64>(flags, "seed", fleet_defaults.seed),
    ) else {
        return ExitCode::FAILURE;
    };
    if io_threads == 0 || workers == 0 || queue == 0 || max_conns == 0 {
        eprintln!("--io-threads, --workers, --queue, and --max-conns must be >= 1");
        return ExitCode::FAILURE;
    }

    // The gateway's store must come from the same model bundles the
    // replicas serve, so its routing keys equal their cache keys.
    let (store, reload) = match build_serve_store(flags) {
        Ok(x) => x,
        Err(c) => return c,
    };
    let replica_count = replicas.len();
    let fleet = match Fleet::new(FleetConfig {
        replicas,
        seed,
        ..fleet_defaults
    }) {
        Ok(f) => std::sync::Arc::new(f),
        Err(e) => {
            eprintln!("cannot build fleet: {e}");
            return ExitCode::FAILURE;
        }
    };
    fleet.start_probing();
    let state = std::sync::Arc::new(hecmix_serve::AppState::new_gateway(
        store,
        io_threads,
        std::sync::Arc::clone(&fleet),
    ));
    state.set_reload(reload);
    let config = hecmix_serve::ServeConfig {
        addr,
        io_threads,
        workers,
        queue_capacity: queue,
        max_connections: max_conns,
        ..defaults
    };
    let handle = match hecmix_serve::start(config, std::sync::Arc::clone(&state)) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("cannot start gateway: {e}");
            return ExitCode::FAILURE;
        }
    };

    hecmix_serve::signal::install();
    println!(
        "hecmix gateway listening on http://{} routing {replica_count} replicas \
         ({io_threads} io threads, {workers} forward workers, seed {seed})",
        handle.addr()
    );
    println!("endpoints: POST /plan /frontier /whatif /reload — GET /healthz /statz");
    while !hecmix_serve::signal::interrupted() {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    eprintln!("signal received; draining in-flight requests");
    handle.shutdown();
    handle.join();
    fleet.stop();
    eprintln!("drained; bye");
    ExitCode::SUCCESS
}

fn cmd_fleetbench(flags: &HashMap<String, String>) -> ExitCode {
    use hecmix_serve::fleetbench::{self, FleetBenchConfig};

    let d = FleetBenchConfig::default();
    let (Ok(replicas), Ok(kill_replica), Ok(concurrency), Ok(arm_sweep), Ok(seed)) = (
        get_num::<usize>(flags, "replicas", d.replicas),
        get_num::<usize>(flags, "kill-replica", d.kill_replica),
        get_num::<usize>(flags, "concurrency", d.concurrency),
        get_num::<u32>(flags, "arm-sweep", d.arm_sweep),
        get_num::<u64>(flags, "seed", d.seed),
    ) else {
        return ExitCode::FAILURE;
    };
    let (Ok(kill_at_s), Ok(duration_s), Ok(warmup_s), Ok(max_tail_ratio), Ok(min_ok)) = (
        get_num::<f64>(flags, "kill-at", d.kill_at_s),
        get_num::<f64>(flags, "duration", d.duration_s),
        get_num::<f64>(flags, "warmup", d.warmup_s),
        get_num::<f64>(flags, "gate-tail-ratio", d.max_tail_ratio),
        get_num::<u64>(flags, "gate-min-ok", d.min_ok),
    ) else {
        return ExitCode::FAILURE;
    };
    if replicas == 0 || concurrency == 0 || duration_s <= 0.0 {
        eprintln!("--replicas, --concurrency must be >= 1 and --duration positive");
        return ExitCode::FAILURE;
    }

    let (_store, build) = match build_serve_store(flags) {
        Ok(x) => x,
        Err(c) => return c,
    };
    let cfg = FleetBenchConfig {
        replicas,
        kill_replica,
        kill_at_s,
        seed,
        duration_s,
        warmup_s,
        concurrency,
        arm_sweep,
        max_tail_ratio,
        min_ok,
    };
    let outcome = match fleetbench::run(&cfg, build.as_ref()) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("fleetbench setup failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{}", outcome.summary);
    if let Some(path) = flags.get("bench-out") {
        if let Err(e) = std::fs::write(path, &outcome.json) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("bench artifact written to {path}");
    }
    if let Err(why) = outcome.gate {
        eprintln!("fleetbench gate FAILED: {why}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn cmd_loadgen(flags: &HashMap<String, String>) -> ExitCode {
    use hecmix_serve::loadgen::{self, LoadgenConfig, MixRatio};

    let d = LoadgenConfig::default();
    let mix = match flags.get("mix") {
        None => d.mix,
        Some(s) => match MixRatio::parse(s) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("bad --mix: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    let (Ok(concurrency), Ok(requests), Ok(arm), Ok(amd)) = (
        get_num::<usize>(flags, "concurrency", d.concurrency),
        get_num::<u64>(flags, "requests", d.requests),
        get_num::<u32>(flags, "arm", d.arm),
        get_num::<u32>(flags, "amd", d.amd),
    ) else {
        return ExitCode::FAILURE;
    };
    let arm_sweep = match flags.get("arm-sweep").map(|v| v.parse::<u32>()) {
        None => None,
        Some(Ok(n)) if n >= 1 => Some(n),
        Some(_) => {
            eprintln!("--arm-sweep needs a count >= 1");
            return ExitCode::FAILURE;
        }
    };
    let (Ok(budget_w), Ok(deadline_ms), Ok(warmup_s)) = (
        get_num::<f64>(flags, "budget", d.budget_w),
        get_num::<f64>(flags, "deadline-ms", d.deadline_ms),
        get_num::<f64>(flags, "warmup", d.warmup_s),
    ) else {
        return ExitCode::FAILURE;
    };
    let duration_s = match flags.get("duration").map(|v| v.parse::<f64>()) {
        None => None,
        Some(Ok(v)) if v > 0.0 => Some(v),
        Some(_) => {
            eprintln!("--duration needs a positive number of seconds");
            return ExitCode::FAILURE;
        }
    };
    let open_loop_rps = match flags.get("open-loop").map(|v| v.parse::<f64>()) {
        None => None,
        Some(Ok(v)) if v > 0.0 => Some(v),
        Some(_) => {
            eprintln!("--open-loop needs a positive rate in requests/second");
            return ExitCode::FAILURE;
        }
    };
    let (Ok(gate_tail_ratio), Ok(gate_min_ok)) = (
        get_num::<f64>(flags, "gate-tail-ratio", 0.0),
        get_num::<u64>(flags, "gate-min-ok", 0),
    ) else {
        return ExitCode::FAILURE;
    };
    if concurrency == 0 || requests == 0 {
        eprintln!("--concurrency and --requests must be >= 1");
        return ExitCode::FAILURE;
    }
    if let Some(dur) = duration_s {
        if warmup_s >= dur {
            eprintln!("--warmup must be shorter than --duration");
            return ExitCode::FAILURE;
        }
    }
    let cfg = LoadgenConfig {
        addr: flags.get("addr").cloned().unwrap_or(d.addr),
        concurrency,
        requests,
        duration_s,
        warmup_s,
        open_loop_rps,
        mix,
        workload: flags.get("workload").cloned().unwrap_or(d.workload),
        arm,
        arm_sweep,
        amd,
        budget_w,
        deadline_ms,
    };

    let report = loadgen::run(&cfg);
    print!("{}", report.render());
    if let Some(path) = flags.get("bench-out") {
        if let Err(e) = std::fs::write(path, report.to_json(&cfg)) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("bench artifact written to {path}");
    }
    if let Err(why) = report.gate(gate_tail_ratio, gate_min_ok) {
        eprintln!("loadgen gate FAILED: {why}");
        return ExitCode::FAILURE;
    }
    if gate_tail_ratio > 0.0 || gate_min_ok > 0 {
        println!(
            "loadgen gate passed (tail ratio {:.1} <= {gate_tail_ratio:.1}, ok {} >= {gate_min_ok})",
            report.tail_ratio, report.ok
        );
    }
    ExitCode::SUCCESS
}

fn cmd_queueing(flags: &HashMap<String, String>) -> ExitCode {
    let w = match get_workload(flags) {
        Ok(w) => w,
        Err(c) => return c,
    };
    let (Ok(lambda), Ok(slo_ms), Ok(window_s), Ok(p99_ms)) = (
        get_num::<f64>(flags, "lambda", 2.0),
        get_num::<f64>(flags, "slo-ms", 450.0),
        get_num::<f64>(flags, "window-s", 20.0),
        get_num::<f64>(flags, "p99-ms", 0.0),
    ) else {
        return ExitCode::FAILURE;
    };
    let lab = Lab::new();
    let models = lab.models(w.as_ref());
    let units = w.analysis_units() as f64;
    let space = ConfigSpace::two_type(lab.arm.platform.clone(), 16, lab.amd.platform.clone(), 14);
    let (frontier, _) = match sweep_frontier_pruned(&space, &models, units) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("sweep failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let menu: Vec<ConfigChoice> = frontier
        .points
        .iter()
        .map(|p| {
            let idle_power_w = p
                .config
                .per_type
                .iter()
                .zip(models.iter())
                .filter_map(|(cfg, m)| cfg.map(|c| f64::from(c.nodes) * m.power.idle_w))
                .sum();
            ConfigChoice {
                label: p.config.label(&lab.platforms()),
                service_s: p.time_s,
                job_energy_j: p.energy_j,
                idle_power_w,
            }
        })
        .collect();
    // A p99 deadline switches to the DES-scored tail planner: the menu is
    // screened analytically, then the survivors are simulated until one
    // meets the percentile deadline.
    if flags.contains_key("p99-ms") && !(p99_ms.is_finite() && p99_ms > 0.0) {
        eprintln!("invalid p99 deadline: --p99-ms must be a positive number of milliseconds");
        return ExitCode::FAILURE;
    }
    if p99_ms > 0.0 {
        let target = match TailTarget::new(0.99, p99_ms / 1e3) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("invalid p99 deadline: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match best_choice_tail(&menu, lambda, window_s, target, &TailDesConfig::default()) {
            Err(e) => {
                eprintln!("invalid dispatch input: {e}");
                ExitCode::FAILURE
            }
            Ok(None) => {
                eprintln!("every configuration saturates at λ = {lambda} jobs/s");
                ExitCode::FAILURE
            }
            Ok(Some(out)) => {
                println!(
                    "{}: λ = {lambda} jobs/s over a {window_s} s window, p99 deadline {p99_ms} ms",
                    w.name()
                );
                println!("  best configuration : {}", menu[out.index].label);
                println!(
                    "  p99 response (DES) : {:.1} ms{}",
                    out.tail_response_s * 1e3,
                    if out.violated {
                        "  (DEADLINE MISSED)"
                    } else {
                        ""
                    }
                );
                println!("  mean response      : {:.1} ms", out.mean_response_s * 1e3);
                println!("  window energy      : {:.1} J", out.energy_j);
                println!(
                    "  planner effort     : {} screened analytically, {} DES runs",
                    out.screened_out, out.des_runs
                );
                if out.violated {
                    ExitCode::FAILURE
                } else {
                    ExitCode::SUCCESS
                }
            }
        };
    }
    match best_choice(&menu, lambda, window_s, slo_ms / 1e3) {
        Err(e) => {
            eprintln!("invalid dispatch input: {e}");
            ExitCode::FAILURE
        }
        Ok(None) => {
            eprintln!("every configuration saturates at λ = {lambda} jobs/s");
            ExitCode::FAILURE
        }
        Ok(Some((idx, energy, response, violated))) => {
            println!(
                "{}: λ = {lambda} jobs/s over a {window_s} s window, SLO {slo_ms} ms",
                w.name()
            );
            println!("  best configuration : {}", menu[idx].label);
            println!(
                "  mean response      : {:.1} ms{}",
                response * 1e3,
                if violated { "  (SLO MISSED)" } else { "" }
            );
            println!("  window energy      : {energy:.1} J");
            if violated {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
    }
}
