//! # hecmix — facade crate
//!
//! Re-exports the whole hecmix workspace behind one dependency:
//!
//! * [`core`] — the ICPP 2014 analytical model: execution
//!   time, energy, mix-and-match splitting, configuration sweeps, Pareto
//!   frontiers, power budgets.
//! * [`sim`] — the discrete-event cluster simulator standing in
//!   for the paper's ARM/AMD testbed.
//! * [`workloads`] — the six datacenter workloads and the
//!   characterization micro-benchmarks.
//! * [`profile`] — the perf-and-power-meter style
//!   characterization pipeline that turns simulator runs into model inputs.
//! * [`queueing`] — the M/D/1 job-arrival extension.
//!
//! See the workspace README for a guided tour and `examples/` for runnable
//! entry points.

pub use hecmix_core as core;
pub use hecmix_profile as profile;
pub use hecmix_queueing as queueing;
pub use hecmix_sim as sim;
pub use hecmix_workloads as workloads;

pub use hecmix_core::prelude;
