//! Queueing what-if analysis (§IV-E): how does the job arrival rate change
//! the energy story?
//!
//! Takes the 16 ARM + 14 AMD memcached cluster of the paper's Fig. 10 and
//! shows, for a range of arrival rates, the cheapest feasible frontier
//! configuration for a response-time SLO over a 20-second observation
//! window — including the sharp drop when the cheapest configuration stops
//! needing any high-idle-power AMD nodes.
//!
//! ```text
//! cargo run --release --example queueing_whatif
//! ```

use hecmix_experiments::figures::fig10;
use hecmix_experiments::lab::Lab;
use hecmix_queueing::{simulate_md1, MD1};
use hecmix_workloads::memcached::Memcached;

fn main() {
    let lab = Lab::new();
    let curves = fig10(&lab, &Memcached::default());

    for curve in &curves {
        println!(
            "== nominal utilization {:.0} % (λ = {:.2} jobs/s) ==",
            curve.nominal_utilization * 100.0,
            curve.lambda
        );
        println!(
            "{:>12}  {:>12}  {:>10}  node types",
            "response ms", "energy 20s J", "ρ"
        );
        for p in &curve.points {
            println!(
                "{:>12.1}  {:>12.1}  {:>10.3}  {}",
                p.response_s * 1e3,
                p.energy_j,
                p.utilization,
                if p.uses_amd { "ARM + AMD" } else { "ARM only" }
            );
        }
        // Flag the paper's sharp drop: the first ARM-only point.
        if let Some(first_arm_only) = p_first_arm_only(&curve.points) {
            println!(
                "--> AMD nodes leave the configuration at response ≈ {:.0} ms; idle power falls from tens of watts to a few",
                first_arm_only * 1e3
            );
        }
        println!();
    }

    // Cross-check the analytical M/D/1 wait against a discrete-event
    // simulation at the middle utilization.
    let service = 0.05;
    let lambda = curves[1].lambda;
    let analytic = MD1::new(lambda, service)
        .and_then(|q| q.mean_wait_s())
        .expect("stable queue");
    let sim = simulate_md1(lambda, service, 200_000, 7).expect("valid simulation inputs");
    println!(
        "M/D/1 cross-check at λ={lambda:.2}, T={service}s: analytic wait {:.2} ms vs simulated {:.2} ms",
        analytic * 1e3,
        sim.mean_wait_s * 1e3
    );
}

fn p_first_arm_only(points: &[hecmix_experiments::figures::Fig10Point]) -> Option<f64> {
    points.iter().find(|p| !p.uses_amd).map(|p| p.response_s)
}
