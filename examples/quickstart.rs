//! Quickstart: model one job on a small heterogeneous cluster.
//!
//! Characterizes the EP benchmark on the two reference node types the way
//! the paper does (§II-D: counters + power meter on one node of each
//! type), then uses the analytical model to answer the basic question:
//! *how long and how many joules does a 50-million-number job take on
//! 8 ARM + 1 AMD nodes, and how should the work be split?*
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hecmix_core::prelude::*;
use hecmix_profile::characterize_pair;
use hecmix_sim::{reference_amd_arch, reference_arm_arch};
use hecmix_workloads::ep::Ep;
use hecmix_workloads::Workload;

fn main() {
    // 1. The testbed (paper Table 1).
    let arm = reference_arm_arch();
    let amd = reference_amd_arch();
    println!("platforms: {} and {}", arm.platform.name, amd.platform.name);

    // 2. Characterize the workload on one node of each type — this runs
    //    the representative phase on the simulated hardware and reads the
    //    perf-style counters and the power meter (paper §II-D).
    let ep = Ep::class_c();
    let models = characterize_pair(&arm, &amd, &ep.trace(), 42);
    for m in &models {
        println!(
            "{:<14} IPs = {:>6.1} instr/number, WPI = {:.2}, SPIcore = {:.2}, idle = {:.1} W",
            m.platform.name, m.profile.i_ps, m.profile.wpi, m.profile.spi_core, m.power.idle_w
        );
    }

    // 3. Deploy 8 ARM + 1 AMD nodes, everything at max cores / max
    //    frequency, and evaluate one 50-million-number job with the
    //    mix-and-match split (all nodes finish together).
    let cluster = ClusterConfig::new(vec![
        TypeDeployment::maxed(&arm.platform, 8),
        TypeDeployment::maxed(&amd.platform, 1),
    ]);
    let w = 50_000_000.0;
    let outcome = evaluate(&cluster, &models, w).expect("valid cluster");

    println!("\njob: {:.0} random numbers on 8 ARM + 1 AMD", w);
    println!("service time : {:>8.1} ms", outcome.time_s * 1e3);
    println!("energy       : {:>8.2} J", outcome.energy_j);
    println!(
        "work split   : ARM {:>4.1} %  /  AMD {:>4.1} %",
        100.0 * outcome.shares[0] / w,
        100.0 * outcome.shares[1] / w
    );
    let t = &outcome.per_type_times;
    println!(
        "finish times : ARM {:.1} ms, AMD {:.1} ms (matched — idle waste minimized)",
        t[0].unwrap().total * 1e3,
        t[1].unwrap().total * 1e3
    );

    // 4. Compare against giving everything to one side.
    for (label, shares) in [
        ("all work on the 8 ARM nodes", vec![w, 0.0]),
        ("all work on the 1 AMD node", vec![0.0, w]),
    ] {
        let alt = hecmix_core::mix_match::evaluate_split(&cluster, &models, &shares)
            .expect("valid split");
        println!(
            "{label:<28}: {:>8.1} ms, {:>7.2} J ({:+.0} % energy vs matched)",
            alt.time_s * 1e3,
            alt.energy_j,
            100.0 * (alt.energy_j / outcome.energy_j - 1.0)
        );
    }
}
