//! A deadline broker: the operational face of the paper's Pareto
//! frontier. Given a workload and a service-time deadline, it answers with
//! the minimum-energy cluster configuration — how many nodes of each type,
//! how many cores, what frequency, and how to split the work — exactly the
//! output the paper's methodology (Fig. 1) promises.
//!
//! ```text
//! cargo run --release --example deadline_broker [-- workload deadline_ms]
//! cargo run --release --example deadline_broker -- memcached 40
//! ```

use hecmix_core::config::ConfigSpace;
use hecmix_core::mix_match::mix_and_match;
use hecmix_core::pareto::ParetoFrontier;
use hecmix_core::sweep::{sweep_space, EvaluatedConfig};
use hecmix_experiments::lab::Lab;
use hecmix_workloads::workload_by_name;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).filter(|a| a != "--").collect();
    let workload_name = args.first().map_or("memcached", String::as_str);
    let deadline_ms: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(40.0);

    let workload = workload_by_name(workload_name).unwrap_or_else(|| {
        eprintln!("unknown workload `{workload_name}`; one of: ep, memcached, x264, blackscholes, julius, rsa-2048");
        std::process::exit(1);
    });

    let lab = Lab::new();
    let models = lab.models(workload.as_ref());
    let units = workload.analysis_units() as f64;

    println!(
        "workload: {} — one job = {} {}s, deadline {} ms",
        workload.name(),
        workload.analysis_units(),
        workload.unit_name(),
        deadline_ms
    );

    // Sweep the paper's 10 ARM + 10 AMD space and build the frontier.
    let space = ConfigSpace::two_type(lab.arm.platform.clone(), 10, lab.amd.platform.clone(), 10);
    let evaluated = sweep_space(&space, &models, units).expect("valid space");
    let frontier = ParetoFrontier::from_points(
        evaluated
            .iter()
            .map(EvaluatedConfig::to_pareto_point)
            .collect(),
    );
    println!(
        "searched {} configurations → {} Pareto-optimal",
        evaluated.len(),
        frontier.len()
    );

    let Some(best) = frontier.min_energy_for_deadline(deadline_ms / 1e3) else {
        let fastest = frontier.min_time_s().unwrap_or(f64::NAN);
        println!(
            "no configuration meets {deadline_ms} ms — fastest achievable is {:.1} ms",
            fastest * 1e3
        );
        return;
    };

    println!("\nrecommended configuration:");
    println!("  {}", best.config.label(&lab.platforms()));
    println!("  service time : {:>8.1} ms", best.time_s * 1e3);
    println!("  energy       : {:>8.2} J per job", best.energy_j);

    // The dispatch plan: the matched split per node type.
    let split = mix_and_match(&best.config, &models, units).expect("frontier point is valid");
    for ((cfg, share), model) in best
        .config
        .per_type
        .iter()
        .zip(&split.shares)
        .zip(models.iter())
    {
        if let Some(cfg) = cfg {
            println!(
                "  dispatch     : {:>10.0} {}s to {} × {} ({} cores @ {})",
                share,
                workload.unit_name(),
                cfg.nodes,
                model.platform.name,
                cfg.cores,
                cfg.freq
            );
        }
    }

    // What relaxing the deadline would buy.
    println!("\nenergy vs deadline along the frontier:");
    for p in &frontier.points {
        let marker = if std::ptr::eq(p, best) {
            "  <-- chosen"
        } else {
            ""
        };
        println!(
            "  {:>8.1} ms  {:>8.2} J{}",
            p.time_s * 1e3,
            p.energy_j,
            marker
        );
    }
}
