//! Datacenter sizing under a peak-power budget (the paper's §IV-C
//! question): given 1 kW of rack power, how many high-performance nodes
//! should be replaced by low-power ones, per workload?
//!
//! Walks the substitution ladder (8 ARM per AMD, switch amortized), sweeps
//! every configuration of each mix, and prints which mix services the job
//! with minimum energy at several deadlines — the decision a capacity
//! planner would actually make.
//!
//! ```text
//! cargo run --release --example datacenter_sizing
//! ```

use hecmix_core::budget::PowerBudget;
use hecmix_experiments::figures::mix_frontiers;
use hecmix_experiments::lab::Lab;
use hecmix_workloads::ep::Ep;
use hecmix_workloads::memcached::Memcached;
use hecmix_workloads::Workload;

fn main() {
    let lab = Lab::new();
    let budget = PowerBudget::new(1000.0);
    let ladder = budget
        .substitution_ladder(&lab.arm.platform, &lab.amd.platform, 2)
        .expect("reference platforms fit 1 kW");
    println!(
        "budget: {} W  →  up to {} AMD nodes or {} ARM nodes (substitution 8:1)\n",
        budget.watts,
        budget.max_nodes(&lab.amd.platform),
        budget.max_nodes(&lab.arm.platform),
    );

    for workload in [
        &Ep::class_c() as &dyn Workload,
        &Memcached::default() as &dyn Workload,
    ] {
        println!(
            "== {} ({} {}s per job) ==",
            workload.name(),
            workload.analysis_units(),
            workload.unit_name()
        );
        let series = mix_frontiers(&lab, workload, &ladder);

        // For a few deadlines, find the cheapest mix that meets it.
        for deadline_ms in [25.0, 50.0, 100.0, 400.0] {
            let deadline = deadline_ms / 1e3;
            let best = series
                .iter()
                .filter_map(|s| {
                    s.frontier
                        .min_energy_for_deadline(deadline)
                        .map(|p| (s.label.clone(), p.energy_j))
                })
                .min_by(|a, b| a.1.total_cmp(&b.1));
            match best {
                Some((label, energy)) => {
                    println!("  deadline {deadline_ms:>5.0} ms → {label:<16} at {energy:>7.2} J")
                }
                None => println!("  deadline {deadline_ms:>5.0} ms → infeasible within the budget"),
            }
        }

        // And the overall energy-optimal mix when the deadline is relaxed.
        let cheapest = series
            .iter()
            .filter_map(|s| s.frontier.min_energy_j().map(|e| (s.label.clone(), e)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("non-empty ladder");
        println!(
            "  relaxed deadline → {} at {:.2} J\n",
            cheapest.0, cheapest.1
        );
    }
}
