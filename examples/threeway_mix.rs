//! Three node types at once: the paper's model is "a generic mix of
//! heterogeneous nodes" (§II-A) — this example runs it with three ISAs in
//! the cluster (Cortex-A9, Cortex-A15, AMD K10) and shows where genuinely
//! three-way mixes land on the energy–deadline frontier.
//!
//! ```text
//! cargo run --release --example threeway_mix [-- workload]
//! ```

use hecmix_core::config::NodeConfig;
use hecmix_core::mix_match::{evaluate, ClusterConfig, TypeDeployment};
use hecmix_experiments::extensions::threeway;
use hecmix_experiments::lab::Lab;
use hecmix_workloads::workload_by_name;

fn main() {
    let name = std::env::args()
        .skip(1)
        .find(|a| a != "--")
        .unwrap_or_else(|| "memcached".to_owned());
    let Some(workload) = workload_by_name(&name) else {
        eprintln!("unknown workload {name:?}");
        std::process::exit(1);
    };
    let lab = Lab::new();

    // One explicit three-type evaluation first: 4 A9 + 2 A15 + 1 K10.
    let models = lab.models3(workload.as_ref());
    let platforms: Vec<_> = models.iter().map(|m| m.platform.clone()).collect();
    let cluster = ClusterConfig::new(vec![
        TypeDeployment::new(NodeConfig::maxed(&platforms[0], 4)),
        TypeDeployment::new(NodeConfig::maxed(&platforms[1], 2)),
        TypeDeployment::new(NodeConfig::maxed(&platforms[2], 1)),
    ]);
    let units = workload.analysis_units() as f64;
    let out = evaluate(&cluster, &models, units).expect("valid cluster");
    println!(
        "{}: one job ({} {}s) on 4 A9 + 2 A15 + 1 K10:",
        workload.name(),
        workload.analysis_units(),
        workload.unit_name()
    );
    println!(
        "  time {:.1} ms, energy {:.2} J",
        out.time_s * 1e3,
        out.energy_j
    );
    for (share, m) in out.shares.iter().zip(&models) {
        println!(
            "  {:>6.1} % of the work -> {}",
            100.0 * share / units,
            m.platform.name
        );
    }

    // Then the full three-type frontier study (pruned sweep over ~715k
    // configurations).
    println!("\nsweeping the 6 A9 + 4 A15 + 4 K10 configuration space...");
    let r = threeway(&lab, workload.as_ref());
    println!(
        "  {} configurations, {} evaluated after pruning ({:.2} %)",
        r.stats.full_space,
        r.stats.evaluated_configs,
        100.0 * r.stats.evaluated_configs as f64 / r.stats.full_space as f64
    );
    println!(
        "  frontier: {} points, {} of them genuinely three-type",
        r.frontier.len(),
        r.three_type_points
    );
    println!("  energy-deadline frontier:");
    for p in &r.frontier.points {
        println!(
            "    {:>8.1} ms  {:>8.2} J  ({} types)  {}",
            p.time_s * 1e3,
            p.energy_j,
            p.config.types_used(),
            p.config.label(&platforms)
        );
    }
}
