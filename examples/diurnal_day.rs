//! A day in the datacenter: dispatch policies under cyclic load.
//!
//! The paper's introduction motivates heterogeneous clusters with the
//! "cyclic variation in arrival rates" real services see. This example
//! plays one sinusoidal day of memcached jobs against four dispatch
//! policies on the same 16 ARM + 14 AMD hardware and prints the
//! hour-by-hour choices — watch the mix-and-match policy shed AMD nodes
//! at night and pull them back for the morning peak.
//!
//! ```text
//! cargo run --release --example diurnal_day
//! ```

use hecmix_experiments::extensions::diurnal_study;
use hecmix_experiments::lab::Lab;
use hecmix_queueing::dispatch::DiurnalProfile;
use hecmix_workloads::memcached::Memcached;

fn main() {
    let lab = Lab::new();
    let profile = DiurnalProfile::new(2.0, 0.8, 24, 3600.0).expect("valid profile");
    let slo = 0.45;
    println!(
        "one day of memcached jobs: λ(h) = 2·(1 + 0.8·sin(2πh/24)) jobs/s, SLO {} ms\n",
        slo * 1e3
    );

    let days = diurnal_study(&lab, &Memcached::default(), &profile, slo);

    println!(
        "{:<14} {:>14} {:>12} {:>10}",
        "policy", "energy J/day", "violations", "vs mixing"
    );
    let mix_energy = days
        .iter()
        .find(|d| d.policy == "mix-and-match")
        .map(|d| d.outcome.energy_j)
        .expect("mixing policy present");
    for d in &days {
        println!(
            "{:<14} {:>14.0} {:>9}/24 {:>+9.1} %",
            d.policy,
            d.outcome.energy_j,
            d.outcome.violations,
            100.0 * (d.outcome.energy_j / mix_energy - 1.0)
        );
    }

    // Hour-by-hour view of the mixing policy.
    let mix = days.iter().find(|d| d.policy == "mix-and-match").unwrap();
    println!("\nmix-and-match, hour by hour:");
    println!(
        "{:>4} {:>8} {:>12} {:>12}  config",
        "hour", "λ", "energy J", "resp ms"
    );
    for s in &mix.outcome.slots {
        println!(
            "{:>4} {:>8.2} {:>12.0} {:>12.1}  #{}",
            s.slot,
            s.lambda,
            s.energy_j,
            s.response_s * 1e3,
            s.choice
        );
    }
    println!("\n(config indices refer to the policy's internal menu; lower-energy");
    println!("choices at night use fewer or no AMD nodes)");
}
